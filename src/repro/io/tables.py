"""ASCII table rendering and CSV export.

The benchmark harness regenerates the paper's tables and figure series as
text so the reproduction can be inspected without any plotting dependency
(matplotlib is not available in the offline environment).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: "Sequence[str] | None" = None,
    float_format: str = "{:.4g}",
    title: "str | None" = None,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table.

    Parameters
    ----------
    rows:
        The table rows; each a mapping column -> value.
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        Format applied to float values.
    title:
        Optional title emitted above the table.
    """
    if not rows:
        return title or ""
    if columns is None:
        columns = list(rows[0].keys())

    def render_cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).rjust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: "str | Path",
    columns: "Sequence[str] | None" = None,
) -> Path:
    """Write row dictionaries to a CSV file and return the path."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    if columns is None:
        columns = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in columns})
    return path
