"""Small I/O helpers: ASCII tables and CSV export used by reports and benches."""

from repro.io.tables import format_table, write_csv

__all__ = ["format_table", "write_csv"]
