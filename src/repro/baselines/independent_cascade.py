"""Independent Cascade (IC) diffusion model.

Kempe, Kleinberg and Tardos' Independent Cascade model (cited as [23] in the
paper) is the standard graph-level diffusion baseline: when a user becomes
active (votes), they get a single chance to activate each follower with an
edge-specific probability.  The process runs in discrete rounds until no new
activations occur.

The reproduction uses it in two ways:

* as a graph-level baseline whose activation rounds can be converted into a
  density surface (round index standing in for time) and scored against the
  observed cascades;
* in tests, as an independent mechanism to generate cascades whose densities
  the DL model is then fitted to, demonstrating that the model is not tied to
  the specific simulator in :mod:`repro.cascade.simulator`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.network.graph import SocialGraph


def independent_cascade(
    graph: SocialGraph,
    seeds: "set[int] | list[int]",
    activation_probability: "float | Mapping[tuple[int, int], float]" = 0.1,
    rng: "np.random.Generator | None" = None,
    max_rounds: "int | None" = None,
) -> dict[int, int]:
    """Run the Independent Cascade process.

    Parameters
    ----------
    graph:
        Follower graph; information flows along out-edges.
    seeds:
        Initially active users (the story's initiator, typically).
    activation_probability:
        Either a global probability or a per-edge mapping
        ``(source, target) -> probability``.
    rng:
        Random generator; defaults to a fresh seeded generator.
    max_rounds:
        Optional cap on the number of rounds.

    Returns
    -------
    dict
        Mapping of activated user -> activation round (seeds are round 0).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    seeds = set(int(s) for s in seeds)
    for seed in seeds:
        if not graph.has_user(seed):
            raise KeyError(f"seed user {seed} is not in the graph")

    def probability(source: int, target: int) -> float:
        if isinstance(activation_probability, Mapping):
            return float(activation_probability.get((source, target), 0.0))
        return float(activation_probability)

    activation_round: dict[int, int] = {seed: 0 for seed in seeds}
    frontier = set(seeds)
    round_index = 0
    while frontier:
        if max_rounds is not None and round_index >= max_rounds:
            break
        round_index += 1
        next_frontier: set[int] = set()
        for user in frontier:
            for follower in graph.followers(user):
                if follower in activation_round:
                    continue
                if rng.random() < probability(user, follower):
                    activation_round[follower] = round_index
                    next_frontier.add(follower)
        frontier = next_frontier
    return activation_round


def expected_spread(
    graph: SocialGraph,
    seeds: "set[int] | list[int]",
    activation_probability: float = 0.1,
    num_samples: int = 20,
    rng: "np.random.Generator | None" = None,
) -> float:
    """Monte-Carlo estimate of the expected final cascade size.

    This is the objective of the influence-maximisation literature the paper
    cites; exposed mainly for the model-comparison example.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    total = 0
    for _ in range(num_samples):
        activated = independent_cascade(graph, seeds, activation_probability, rng)
        total += len(activated)
    return total / num_samples
