"""Baseline models the DL model is compared against.

The paper positions the DL model against two families of prior work:

* **temporal-only models** that ignore the spatial dimension -- represented
  here by the per-distance independent logistic model
  (:mod:`repro.baselines.logistic`), the SIS epidemic model
  (:mod:`repro.baselines.sis`) and a Linear-Influence-style counting model
  (:mod:`repro.baselines.linear_influence`);
* **network diffusion models** operating directly on the graph -- the
  Independent Cascade and Linear Threshold models from Kempe et al.
  (:mod:`repro.baselines.independent_cascade`,
  :mod:`repro.baselines.linear_threshold`), which the related-work section
  cites as the standard alternatives.

The density-surface baselines implement the same ``fit(observed) /
predict(times)`` shape as the DL predictor so the ablation benchmark can
score them with the identical accuracy machinery.
"""

from repro.baselines.logistic import PerDistanceLogisticBaseline
from repro.baselines.sis import SISBaseline, SISParameters
from repro.baselines.linear_influence import LinearInfluenceBaseline
from repro.baselines.independent_cascade import independent_cascade
from repro.baselines.linear_threshold import linear_threshold

__all__ = [
    "PerDistanceLogisticBaseline",
    "SISBaseline",
    "SISParameters",
    "LinearInfluenceBaseline",
    "independent_cascade",
    "linear_threshold",
]
