"""Linear Threshold (LT) diffusion model.

The second classic diffusion model from Kempe, Kleinberg and Tardos (cited as
[23] in the paper): every user draws a random threshold in [0, 1]; a user
becomes active once the total incoming influence weight from their active
followees exceeds their threshold.  Influence weights into a user sum to at
most 1; by default each followee contributes ``1 / in_degree``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.network.graph import SocialGraph


def linear_threshold(
    graph: SocialGraph,
    seeds: "set[int] | list[int]",
    influence_weights: "Mapping[tuple[int, int], float] | None" = None,
    thresholds: "Mapping[int, float] | None" = None,
    rng: "np.random.Generator | None" = None,
    max_rounds: "int | None" = None,
) -> dict[int, int]:
    """Run the Linear Threshold process.

    Parameters
    ----------
    graph:
        Follower graph; influence flows along out-edges (followee -> follower).
    seeds:
        Initially active users.
    influence_weights:
        Optional mapping ``(source, target) -> weight``.  Defaults to
        ``1 / in_degree(target)`` for every edge, the canonical uniform choice.
    thresholds:
        Optional per-user thresholds in [0, 1]; users not listed draw a
        uniform random threshold.
    rng:
        Random generator used for missing thresholds.
    max_rounds:
        Optional cap on the number of rounds.

    Returns
    -------
    dict
        Mapping of activated user -> activation round (seeds are round 0).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    seeds = set(int(s) for s in seeds)
    for seed in seeds:
        if not graph.has_user(seed):
            raise KeyError(f"seed user {seed} is not in the graph")

    def weight(source: int, target: int) -> float:
        if influence_weights is not None:
            return float(influence_weights.get((source, target), 0.0))
        in_degree = graph.in_degree(target)
        return 1.0 / in_degree if in_degree > 0 else 0.0

    def threshold(user: int) -> float:
        if thresholds is not None and user in thresholds:
            value = float(thresholds[user])
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"threshold for user {user} must be in [0, 1], got {value}")
            return value
        return float(rng.random())

    drawn_thresholds: dict[int, float] = {}
    activation_round: dict[int, int] = {seed: 0 for seed in seeds}
    frontier = set(seeds)
    round_index = 0
    while frontier:
        if max_rounds is not None and round_index >= max_rounds:
            break
        round_index += 1
        # Users that might newly activate: followers of the current frontier.
        candidates: set[int] = set()
        for user in frontier:
            candidates.update(graph.followers(user))
        candidates -= set(activation_round)

        next_frontier: set[int] = set()
        for candidate in candidates:
            incoming = sum(
                weight(followee, candidate)
                for followee in graph.followees(candidate)
                if followee in activation_round
            )
            if candidate not in drawn_thresholds:
                drawn_thresholds[candidate] = threshold(candidate)
            if incoming >= drawn_thresholds[candidate]:
                activation_round[candidate] = round_index
                next_frontier.add(candidate)
        frontier = next_frontier
    return activation_round
