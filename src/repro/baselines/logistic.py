"""Per-distance independent logistic baseline (temporal-only, no diffusion).

This is the natural ablation of the DL model: keep the growth process (the
logistic term) but drop the diffusion term, i.e. fit an independent logistic
curve to every distance group's time series.  Prior temporal-only models the
paper cites reduce to exactly this when applied per distance group.

Because each distance evolves independently the baseline cannot transfer
information across distances -- which is the capability the DL model's Fick
term adds -- so it needs more training data per distance and degrades when
the early snapshot at a distance is unrepresentative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.numerics.ode import LogisticCurve, fit_logistic_curve


@dataclass
class _FittedDistance:
    distance: float
    curve: "LogisticCurve | None"
    constant_value: float


class PerDistanceLogisticBaseline:
    """Fits one logistic curve per distance group, ignoring spatial coupling.

    Parameters
    ----------
    carrying_capacity_cap:
        Upper bound applied to each fitted K (prevents the optimiser from
        extrapolating unbounded growth from a short training window).
    """

    def __init__(self, carrying_capacity_cap: float = 200.0) -> None:
        if carrying_capacity_cap <= 0:
            raise ValueError("carrying_capacity_cap must be positive")
        self._carrying_capacity_cap = carrying_capacity_cap
        self._fits: list[_FittedDistance] = []
        self._unit = "percent"

    def fit(
        self,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "PerDistanceLogisticBaseline":
        """Fit one curve per distance from the training window.

        Distances whose training series is all zero (or has fewer than three
        positive observations) fall back to a constant extrapolation of the
        last training value.
        """
        if training_times is None:
            training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
        training = observed.restrict_times(sorted(float(t) for t in training_times))
        self._unit = observed.unit
        self._fits = []
        for distance in training.distances:
            series = training.time_series(distance)
            constant = float(series[-1])
            curve: "LogisticCurve | None" = None
            if series[0] > 0 and series.size >= 3:
                try:
                    curve = fit_logistic_curve(
                        training.times,
                        series,
                        carrying_capacity_bounds=(1e-6, self._carrying_capacity_cap),
                    )
                except (ValueError, RuntimeError):
                    curve = None
            self._fits.append(
                _FittedDistance(distance=float(distance), curve=curve, constant_value=constant)
            )
        return self

    @property
    def fitted_distances(self) -> list[float]:
        """Distances the baseline has been fitted for."""
        return [fit.distance for fit in self._fits]

    def predict(self, times: Sequence[float]) -> DensitySurface:
        """Predict the density surface at the requested times."""
        if not self._fits:
            raise RuntimeError("the baseline has not been fitted yet; call fit() first")
        times = sorted(float(t) for t in times)
        distances = np.asarray([fit.distance for fit in self._fits])
        values = np.zeros((len(times), distances.size))
        for j, fit in enumerate(self._fits):
            if fit.curve is not None:
                values[:, j] = np.asarray(fit.curve(np.asarray(times)), dtype=float)
            else:
                values[:, j] = fit.constant_value
        return DensitySurface(
            distances=distances,
            times=np.asarray(times),
            values=np.maximum(values, 0.0),
            group_sizes=np.ones(distances.size),
            unit=self._unit,
            metadata={"source": "per_distance_logistic_baseline"},
        )
