"""Per-distance independent logistic baseline (temporal-only, no diffusion).

This is the natural ablation of the DL model: keep the growth process (the
logistic term) but drop the diffusion term, i.e. fit an independent logistic
curve to every distance group's time series.  Prior temporal-only models the
paper cites reduce to exactly this when applied per distance group.

Because each distance evolves independently the baseline cannot transfer
information across distances -- which is the capability the DL model's Fick
term adds -- so it needs more training data per distance and degrades when
the early snapshot at a distance is unrepresentative.

Although the distances are modelled independently, they are *fitted and
evaluated together*: every eligible distance joins one vectorised
least-squares solve (:func:`repro.numerics.ode.fit_logistic_curves`) and
prediction evaluates all fitted curves in one broadcast expression, so no
Python-level per-distance loop remains on either path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.errors import NotFittedError
from repro.numerics.ode import (
    LogisticCurve,
    fit_logistic_curve,
    fit_logistic_curves,
    logistic_value,
)


@dataclass
class _FittedDistance:
    distance: float
    curve: "LogisticCurve | None"
    constant_value: float


class PerDistanceLogisticBaseline:
    """Fits one logistic curve per distance group, ignoring spatial coupling.

    Parameters
    ----------
    carrying_capacity_cap:
        Upper bound applied to each fitted K (prevents the optimiser from
        extrapolating unbounded growth from a short training window).
    """

    def __init__(self, carrying_capacity_cap: float = 200.0) -> None:
        if carrying_capacity_cap <= 0:
            raise ValueError("carrying_capacity_cap must be positive")
        self._carrying_capacity_cap = carrying_capacity_cap
        self._fits: list[_FittedDistance] = []
        self._unit = "percent"

    def fit(
        self,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "PerDistanceLogisticBaseline":
        """Fit one curve per distance from the training window.

        Distances whose training series is all zero (or has fewer than three
        positive observations) fall back to a constant extrapolation of the
        last training value.
        """
        if training_times is None:
            training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
        training = observed.restrict_times(sorted(float(t) for t in training_times))
        self._unit = observed.unit

        eligible = [
            j
            for j, distance in enumerate(training.distances)
            if training.values[0, j] > 0 and training.times.size >= 3
        ]
        curves: "dict[int, LogisticCurve]" = {}
        if eligible:
            try:
                fitted = fit_logistic_curves(
                    training.times,
                    training.values[:, eligible],
                    carrying_capacity_bounds=(1e-6, self._carrying_capacity_cap),
                )
                curves = dict(zip(eligible, fitted))
            except (ValueError, RuntimeError):
                # Joint fit failed (e.g. a pathological column); fall back to
                # independent per-distance fits so one bad column cannot take
                # down the rest.
                for j in eligible:
                    try:
                        curves[j] = fit_logistic_curve(
                            training.times,
                            training.values[:, j],
                            carrying_capacity_bounds=(1e-6, self._carrying_capacity_cap),
                        )
                    except (ValueError, RuntimeError):
                        pass

        self._fits = [
            _FittedDistance(
                distance=float(distance),
                curve=curves.get(j),
                constant_value=float(training.values[-1, j]),
            )
            for j, distance in enumerate(training.distances)
        ]
        return self

    @property
    def fitted_distances(self) -> list[float]:
        """Distances the baseline has been fitted for."""
        return [fit.distance for fit in self._fits]

    def curve_parameters(self) -> "dict[float, dict]":
        """Per-distance fitted curve parameters (after :meth:`fit`).

        Distances that fell back to the constant extrapolation report
        ``{"constant": value}`` instead of curve parameters.
        """
        if not self._fits:
            raise NotFittedError.for_model("the baseline")
        out: "dict[float, dict]" = {}
        for fit in self._fits:
            if fit.curve is None:
                out[fit.distance] = {"constant": fit.constant_value}
            else:
                out[fit.distance] = {
                    "growth_rate": float(fit.curve.growth_rate),
                    "carrying_capacity": float(fit.curve.carrying_capacity),
                    "initial_value": float(fit.curve.initial_value),
                    "initial_time": float(fit.curve.initial_time),
                }
        return out

    def predict(self, times: Sequence[float]) -> DensitySurface:
        """Predict the density surface at the requested times."""
        if not self._fits:
            raise NotFittedError.for_model("the baseline")
        times = sorted(float(t) for t in times)
        time_array = np.asarray(times, dtype=float)
        distances = np.asarray([fit.distance for fit in self._fits])
        # Constant extrapolation everywhere, then one broadcast evaluation of
        # the analytic logistic formula over every fitted column at once.
        values = np.tile(
            np.asarray([fit.constant_value for fit in self._fits]), (len(times), 1)
        )
        fitted = [j for j, fit in enumerate(self._fits) if fit.curve is not None]
        if fitted:
            rates = np.asarray([self._fits[j].curve.growth_rate for j in fitted])
            capacities = np.asarray([self._fits[j].curve.carrying_capacity for j in fitted])
            initial_values = np.asarray([self._fits[j].curve.initial_value for j in fitted])
            initial_times = np.asarray([self._fits[j].curve.initial_time for j in fitted])
            values[:, fitted] = logistic_value(
                time_array[:, None] - initial_times[None, :],
                rates[None, :],
                capacities,
                initial_values,
            )
        return DensitySurface(
            distances=distances,
            times=np.asarray(times),
            values=np.maximum(values, 0.0),
            group_sizes=np.ones(distances.size),
            unit=self._unit,
            metadata={"source": "per_distance_logistic_baseline"},
        )
