"""SIS epidemic baseline.

The related-work section cites Saito et al., who characterise information
diffusion with the SIS (Susceptible-Infected-Susceptible) epidemic model.
Applied to a single distance group's density ``I`` (as a fraction of the
group), SIS reads::

    dI/dt = beta * I * (1 - I) - gamma * I

The recovery term ``gamma * I`` lets the "infection" (interest in the story)
die out, which is qualitatively wrong for vote densities -- votes are never
retracted, so the observed density is monotone non-decreasing.  The baseline
is included to show that the DL model's logistic growth (gamma = 0 plus a
carrying capacity and spatial diffusion) is the better structural choice, and
it is scored in the ablation benchmark with the same accuracy machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.errors import NotFittedError
from repro.numerics.optimization import least_squares_fit


@dataclass(frozen=True)
class SISParameters:
    """Infection and recovery rates of the SIS model."""

    infection_rate: float
    recovery_rate: float

    def __post_init__(self) -> None:
        if self.infection_rate < 0:
            raise ValueError("infection_rate must be non-negative")
        if self.recovery_rate < 0:
            raise ValueError("recovery_rate must be non-negative")

    @property
    def basic_reproduction_number(self) -> float:
        """R0 = beta / gamma (infinite when gamma = 0)."""
        if self.recovery_rate == 0:
            return float("inf")
        return self.infection_rate / self.recovery_rate

    @property
    def endemic_level(self) -> float:
        """The stable fixed point 1 - gamma/beta (0 when R0 <= 1)."""
        if self.infection_rate == 0:
            return 0.0
        return max(0.0, 1.0 - self.recovery_rate / self.infection_rate)


def simulate_sis(
    initial_fraction: float,
    times: Sequence[float],
    parameters: SISParameters,
    steps_per_unit: int = 200,
) -> np.ndarray:
    """Integrate the scalar SIS ODE with RK4 and sample it at ``times``."""
    if not 0.0 <= initial_fraction <= 1.0:
        raise ValueError("initial_fraction must lie in [0, 1]")
    times = np.asarray(sorted(float(t) for t in times), dtype=float)

    def rhs(i: float) -> float:
        return parameters.infection_rate * i * (1.0 - i) - parameters.recovery_rate * i

    values = np.empty(times.size)
    values[0] = initial_fraction
    i = float(initial_fraction)
    for index in range(1, times.size):
        span = times[index] - times[index - 1]
        steps = max(1, int(np.ceil(span * steps_per_unit)))
        dt = span / steps
        for _ in range(steps):
            k1 = rhs(i)
            k2 = rhs(i + 0.5 * dt * k1)
            k3 = rhs(i + 0.5 * dt * k2)
            k4 = rhs(i + dt * k3)
            i += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            i = min(max(i, 0.0), 1.0)
        values[index] = i
    return values


class SISBaseline:
    """Fits an SIS trajectory per distance group and predicts forward.

    The per-group density (percent) is rescaled to a fraction of an assumed
    susceptible pool (``pool_percent``), fitted, then rescaled back.
    """

    def __init__(self, pool_percent: float = 100.0) -> None:
        if pool_percent <= 0:
            raise ValueError("pool_percent must be positive")
        self._pool_percent = pool_percent
        self._fits: list[tuple[float, SISParameters, float]] = []
        self._unit = "percent"
        self._initial_time = 1.0

    def fit(
        self,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "SISBaseline":
        """Fit (beta, gamma) per distance from the training window."""
        if training_times is None:
            training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
        training = observed.restrict_times(sorted(float(t) for t in training_times))
        self._unit = observed.unit
        self._initial_time = float(training.times[0])
        self._fits = []
        scale = self._pool_percent if observed.unit == "percent" else self._pool_percent / 100.0

        for distance in training.distances:
            series = training.time_series(distance) / scale
            initial = float(np.clip(series[0], 0.0, 1.0))

            def residual(theta: np.ndarray, _series=series, _initial=initial) -> np.ndarray:
                params = SISParameters(max(theta[0], 0.0), max(theta[1], 0.0))
                predicted = simulate_sis(_initial, training.times, params)
                return predicted - _series

            if initial > 0:
                fit = least_squares_fit(
                    residual,
                    initial_guess=[0.5, 0.05],
                    bounds=([0.0, 0.0], [20.0, 10.0]),
                    names=("infection_rate", "recovery_rate"),
                )
                params = SISParameters(float(fit.parameters[0]), float(fit.parameters[1]))
            else:
                params = SISParameters(0.0, 0.0)
            self._fits.append((float(distance), params, initial))
        return self

    def fitted_parameters(self) -> "dict[float, dict]":
        """Per-distance fitted (beta, gamma, initial fraction), after :meth:`fit`."""
        if not self._fits:
            raise NotFittedError.for_model("the baseline")
        return {
            distance: {
                "infection_rate": params.infection_rate,
                "recovery_rate": params.recovery_rate,
                "initial_fraction": initial,
            }
            for distance, params, initial in self._fits
        }

    def predict(self, times: Sequence[float]) -> DensitySurface:
        """Predict the density surface at the requested times."""
        if not self._fits:
            raise NotFittedError.for_model("the baseline")
        times = sorted(float(t) for t in times)
        all_times = sorted(set([self._initial_time] + times))
        scale = self._pool_percent if self._unit == "percent" else self._pool_percent / 100.0
        distances = np.asarray([distance for distance, _, _ in self._fits])
        values = np.zeros((len(times), distances.size))
        for j, (_, params, initial) in enumerate(self._fits):
            trajectory = simulate_sis(initial, all_times, params) * scale
            lookup = {t: v for t, v in zip(all_times, trajectory)}
            values[:, j] = [lookup[t] for t in times]
        return DensitySurface(
            distances=distances,
            times=np.asarray(times),
            values=np.maximum(values, 0.0),
            group_sizes=np.ones(distances.size),
            unit=self._unit,
            metadata={"source": "sis_baseline"},
        )
