"""Linear-Influence-style counting baseline.

Yang & Leskovec's Linear Influence Model (cited as [12] in the paper)
predicts the number of *newly* infected nodes at time ``t`` as a weighted sum
of influence functions of the nodes infected earlier.  The full LIM estimates
one influence function per node; on a density surface (which has already
aggregated users into distance groups) the natural analogue is a linear
autoregressive model over the groups:

    delta_I(x, t+1) = sum_y  W[x, y] * delta_I(y, t)

where ``delta_I`` is the per-hour density increment and ``W`` is a
non-negative influence matrix estimated from the training window by
least squares.  Prediction accumulates the increments on top of the last
observed snapshot.

The baseline captures cross-distance influence (like the DL diffusion term)
but has no saturation mechanism (no carrying capacity), so its predictions
keep growing where the DL model correctly flattens out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.errors import NotFittedError


class LinearInfluenceBaseline:
    """Linear autoregressive model on per-hour density increments.

    Parameters
    ----------
    ridge:
        Tikhonov regularisation strength for the least-squares estimate of
        the influence matrix (keeps the fit stable when the training window
        is short, which it always is in the paper's protocol).
    """

    def __init__(self, ridge: float = 1e-3) -> None:
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self._ridge = ridge
        self._influence: "np.ndarray | None" = None
        self._last_profile: "np.ndarray | None" = None
        self._last_increment: "np.ndarray | None" = None
        self._last_time: float = 1.0
        self._distances: "np.ndarray | None" = None
        self._unit = "percent"

    def fit(
        self,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "LinearInfluenceBaseline":
        """Estimate the influence matrix from the training window's increments."""
        if training_times is None:
            training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
        training = observed.restrict_times(sorted(float(t) for t in training_times))
        if training.times.size < 3:
            raise ValueError("the Linear Influence baseline needs at least three training times")

        increments = np.diff(training.values, axis=0)  # (T-1, D)
        past = increments[:-1]  # predictors
        future = increments[1:]  # targets
        num_distances = training.distances.size

        # Ridge-regularised least squares: future = past @ W  (W is D x D).
        gram = past.T @ past + self._ridge * np.eye(num_distances)
        cross = past.T @ future
        influence = np.linalg.solve(gram, cross)
        # Influence between groups cannot be negative (votes never remove density).
        self._influence = np.maximum(influence, 0.0)

        self._distances = training.distances.copy()
        self._last_profile = training.values[-1].copy()
        self._last_increment = increments[-1].copy()
        self._last_time = float(training.times[-1])
        self._unit = observed.unit
        return self

    @property
    def ridge(self) -> float:
        """The Tikhonov regularisation strength of the influence estimate."""
        return self._ridge

    @property
    def influence_matrix(self) -> np.ndarray:
        """The estimated non-negative influence matrix (distances x distances)."""
        if self._influence is None:
            raise NotFittedError.for_model("the baseline")
        return self._influence.copy()

    def predict(self, times: Sequence[float]) -> DensitySurface:
        """Roll the increment recursion forward and accumulate densities."""
        if (
            self._influence is None
            or self._last_profile is None
            or self._last_increment is None
            or self._distances is None
        ):
            raise NotFittedError.for_model("the baseline")
        times = sorted(float(t) for t in times)
        values = np.zeros((len(times), self._distances.size))

        profile = self._last_profile.copy()
        increment = self._last_increment.copy()
        current_time = self._last_time
        # Simulate forward hour by hour; sample whenever a requested time is passed.
        schedule = {t: None for t in times}
        horizon = max(times)
        results: dict[float, np.ndarray] = {}
        for t in times:
            if t <= current_time:
                results[t] = profile.copy()
        while current_time < horizon - 1e-9:
            increment = self._influence.T @ increment
            profile = profile + increment
            current_time += 1.0
            for t in schedule:
                if t not in results and t <= current_time + 1e-9:
                    results[t] = profile.copy()
        for i, t in enumerate(times):
            values[i] = results[t]
        return DensitySurface(
            distances=self._distances.copy(),
            times=np.asarray(times),
            values=np.maximum(values, 0.0),
            group_sizes=np.ones(self._distances.size),
            unit=self._unit,
            metadata={"source": "linear_influence_baseline"},
        )
