"""Pluggable solver backends for the reaction-diffusion engine.

:class:`~repro.numerics.pde_solver.ReactionDiffusionSolver` delegates the
actual time stepping to a :class:`SolverBackend` resolved by name from the
registry in this module.  Two backends ship with the package:

* ``"internal"`` -- the integrators from :mod:`repro.numerics.integrators`,
  plus a vectorised Crank-Nicolson engine that advances every column of a
  :class:`~repro.numerics.pde_solver.BatchReactionDiffusionProblem` in
  lockstep.  The Neumann Laplacian is tridiagonal, so each step applies the
  diffusion term matrix-free and performs one multi-right-hand-side *banded*
  solve per distinct diffusion rate -- O(n) memory and O(n) work per step --
  with the factorizations shared through
  :mod:`repro.numerics.operator_cache` across steps, solves and calibration
  candidates.  The ``operator_mode`` knob (``"banded"`` by default, via
  ``"auto"``) can force the pure-numpy ``"thomas"`` solver or the legacy
  ``"dense"`` LU for cross-checking.
* ``"thomas"`` -- the internal engine pinned to the pure-numpy Thomas
  tridiagonal solver; a scipy-free fallback for the Crank-Nicolson hot path.
* ``"scipy"`` -- :func:`scipy.integrate.solve_ivp` (LSODA), used for
  cross-validation in tests and the solver ablation benchmark.  It has no
  native batched mode and falls back to solving batch members one by one.

Third-party backends register themselves with :func:`register_backend`;
:func:`get_backend` resolves names and rejects unknown ones with an error
message listing everything registered.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.numerics import operator_cache
from repro.numerics.finite_difference import second_derivative
from repro.numerics.integrators import CrankNicolsonIntegrator, TimeIntegrator
from repro.numerics.pde_solver import (
    BatchPDESolution,
    BatchReactionDiffusionProblem,
    PDESolution,
    ReactionDiffusionProblem,
)

_TIME_EPS = 1e-12
"""Tolerance used when comparing the running time against output times."""


class SolverBackend(ABC):
    """Interface every reaction-diffusion backend implements.

    A backend turns a (possibly batched) problem plus output times into a
    solution.  ``integrator`` and ``max_step`` are passed down from the
    :class:`~repro.numerics.pde_solver.ReactionDiffusionSolver` facade;
    backends that do their own stepping (like ``"scipy"``) may ignore the
    integrator.
    """

    name: str = "abstract"

    @abstractmethod
    def solve(
        self,
        problem: ReactionDiffusionProblem,
        times: np.ndarray,
        *,
        integrator: TimeIntegrator,
        max_step: float,
    ) -> PDESolution:
        """Solve one problem at the (validated, sorted) output ``times``."""

    def solve_batch(
        self,
        problem: BatchReactionDiffusionProblem,
        times: np.ndarray,
        *,
        integrator: TimeIntegrator,
        max_step: float,
    ) -> BatchPDESolution:
        """Solve a batched problem; the default solves members one by one.

        Backends with a genuinely vectorised path override this; the fallback
        keeps every backend usable through the batch API at sequential cost.
        """
        columns = [
            self.solve(
                problem.column_problem(j), times, integrator=integrator, max_step=max_step
            )
            for j in range(problem.batch_size)
        ]
        states = np.stack([column.states for column in columns], axis=2)
        return BatchPDESolution(
            grid=problem.grid,
            times=columns[0].times.copy(),
            states=states,
            metadata={
                "backend": self.name,
                "batch_size": problem.batch_size,
                "engine": "sequential_fallback",
            },
        )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: "dict[str, Callable[[], SolverBackend]]" = {}


def register_backend(
    name: str, factory: "Callable[[], SolverBackend]", overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Parameters
    ----------
    name:
        The name users pass as ``backend=...`` throughout the library.
    factory:
        Zero-argument callable returning a :class:`SolverBackend`.
    overwrite:
        Allow replacing an existing registration (off by default so typos do
        not silently shadow the built-ins).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; pass overwrite=True to replace it"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (used by tests registering temporary ones)."""
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(backend: "str | SolverBackend") -> SolverBackend:
    """Resolve a backend name (or pass an instance through).

    Raises
    ------
    ValueError
        If the name is not registered; the message lists the registered
        backends so the fix is obvious.
    """
    if isinstance(backend, SolverBackend):
        return backend
    if isinstance(backend, str):
        if backend not in _REGISTRY:
            known = ", ".join(repr(name) for name in available_backends())
            raise ValueError(
                f"unknown solver backend {backend!r}; registered backends: {known}. "
                "Use repro.numerics.backends.register_backend() to add one."
            )
        return _REGISTRY[backend]()
    raise TypeError(
        f"backend must be a registered name or a SolverBackend instance, got {backend!r}"
    )


# ---------------------------------------------------------------------- #
# Internal backend
# ---------------------------------------------------------------------- #
class InternalBackend(SolverBackend):
    """Method-of-lines stepping with the package's own integrators.

    Constant-diffusion Crank-Nicolson solves (the DL model's standard
    configuration) are routed through the batched engine with a batch of one,
    so sequential and batched paths share both the code and the cached
    operator factorizations.  Other integrators and time-varying diffusion
    use the generic stepping loop.

    Parameters
    ----------
    operator_mode:
        Factorization used for the Crank-Nicolson operator: ``"auto"``
        (resolves to ``"banded"``), ``"banded"``, ``"thomas"`` or ``"dense"``.
        See :func:`repro.numerics.operator_cache.crank_nicolson_operator`.
    """

    name = "internal"
    _DEFAULT_OPERATOR_MODE = "banded"

    def __init__(self, operator_mode: str = "auto") -> None:
        self.operator_mode = operator_mode

    @property
    def operator_mode(self) -> str:
        """Requested operator mode (``"auto"`` resolves lazily to banded)."""
        return self._operator_mode

    @operator_mode.setter
    def operator_mode(self, mode: str) -> None:
        if mode != "auto" and mode not in operator_cache.OPERATOR_MODES:
            raise ValueError(
                f"unknown operator mode {mode!r}; expected 'auto' or one of "
                f"{operator_cache.OPERATOR_MODES}"
            )
        self._operator_mode = mode

    @property
    def resolved_operator_mode(self) -> str:
        """The concrete factorization mode the Crank-Nicolson engine will use."""
        if self._operator_mode == "auto":
            return self._DEFAULT_OPERATOR_MODE
        return self._operator_mode

    def solve(
        self,
        problem: ReactionDiffusionProblem,
        times: np.ndarray,
        *,
        integrator: TimeIntegrator,
        max_step: float,
    ) -> PDESolution:
        if problem.diffusion_is_constant and isinstance(integrator, CrankNicolsonIntegrator):
            batch_problem = _as_batch_of_one(problem)
            batch_solution = self._solve_batch_crank_nicolson(
                batch_problem,
                times,
                max_step=max_step,
                tolerance=integrator.tolerance,
                max_iterations=integrator.max_picard_iterations,
            )
            return PDESolution(
                grid=problem.grid,
                times=batch_solution.times,
                states=batch_solution.states[:, :, 0].copy(),
                metadata={
                    "backend": self.name,
                    "integrator": integrator.name,
                    "steps": batch_solution.metadata["steps"],
                    "max_step": max_step,
                    "operator": batch_solution.metadata["operator"],
                    "operator_cache": True,
                },
            )
        return self._solve_stepping(problem, times, integrator, max_step)

    def solve_batch(
        self,
        problem: BatchReactionDiffusionProblem,
        times: np.ndarray,
        *,
        integrator: TimeIntegrator,
        max_step: float,
    ) -> BatchPDESolution:
        if isinstance(integrator, CrankNicolsonIntegrator):
            return self._solve_batch_crank_nicolson(
                problem,
                times,
                max_step=max_step,
                tolerance=integrator.tolerance,
                max_iterations=integrator.max_picard_iterations,
            )
        return super().solve_batch(
            problem, times, integrator=integrator, max_step=max_step
        )

    # ------------------------------------------------------------------ #
    # Generic stepping loop (any integrator, any diffusion coefficient)
    # ------------------------------------------------------------------ #
    def _solve_stepping(
        self,
        problem: ReactionDiffusionProblem,
        times: np.ndarray,
        integrator: TimeIntegrator,
        max_step: float,
    ) -> PDESolution:
        grid = problem.grid
        laplacian = operator_cache.neumann_laplacian_matrix(grid.num_points, grid.spacing)
        nodes = grid.nodes
        state = problem.initial_state()
        current_time = problem.start_time

        outputs = np.empty((times.size, grid.num_points))
        output_index = 0
        # Emit any output times that coincide with the start time.
        while output_index < times.size and abs(times[output_index] - current_time) < _TIME_EPS:
            outputs[output_index] = state
            output_index += 1

        steps_taken = 0
        constant_diffusion = problem.diffusion_is_constant
        diffusion_matrix = None
        if constant_diffusion:
            diffusion_matrix = float(problem.diffusion) * laplacian
            integrator.prepare(diffusion_matrix, max_step)

        def reaction(u: np.ndarray, t: float) -> np.ndarray:
            return problem.reaction(u, nodes, t)

        while output_index < times.size:
            target = times[output_index]
            while current_time < target - _TIME_EPS:
                if not constant_diffusion:
                    d_values = problem.diffusion_at(current_time)
                    diffusion_matrix = d_values[:, None] * laplacian
                assert diffusion_matrix is not None
                dt = min(max_step, target - current_time)
                dt = integrator.suggested_dt(diffusion_matrix, dt)
                state = integrator.step(state, current_time, dt, diffusion_matrix, reaction)
                current_time += dt
                steps_taken += 1
            outputs[output_index] = state
            output_index += 1

        return PDESolution(
            grid=grid,
            times=times,
            states=outputs,
            metadata={
                "backend": self.name,
                "integrator": integrator.name,
                "steps": steps_taken,
                "max_step": max_step,
            },
        )

    # ------------------------------------------------------------------ #
    # Vectorised Crank-Nicolson engine
    # ------------------------------------------------------------------ #
    def _solve_batch_crank_nicolson(
        self,
        problem: BatchReactionDiffusionProblem,
        times: np.ndarray,
        *,
        max_step: float,
        tolerance: float,
        max_iterations: int,
    ) -> BatchPDESolution:
        grid = problem.grid
        num_points = grid.num_points
        spacing = grid.spacing
        nodes = grid.nodes
        operator_mode = self.resolved_operator_mode
        # The dense matrix is only materialised for the dense reference mode;
        # banded/thomas apply the diffusion term matrix-free, keeping the whole
        # step O(n) in time and memory.
        laplacian = (
            operator_cache.neumann_laplacian_matrix(num_points, spacing)
            if operator_mode == "dense"
            else None
        )
        rates = problem.diffusion_rates
        # Columns sharing a diffusion rate share one LU factorization per dt.
        unique_rates, group_of_column = np.unique(rates, return_inverse=True)
        group_columns = [np.nonzero(group_of_column == g)[0] for g in range(unique_rates.size)]

        states = problem.initial_states.copy()
        current_time = problem.start_time
        batch = problem.batch_size

        outputs = np.empty((times.size, num_points, batch))
        output_index = 0
        while output_index < times.size and abs(times[output_index] - current_time) < _TIME_EPS:
            outputs[output_index] = states
            output_index += 1

        steps_taken = 0
        while output_index < times.size:
            target = times[output_index]
            while current_time < target - _TIME_EPS:
                dt = min(max_step, target - current_time)
                states = self._crank_nicolson_step_batch(
                    states,
                    current_time,
                    dt,
                    laplacian,
                    rates,
                    unique_rates,
                    group_columns,
                    problem.reaction,
                    nodes,
                    num_points,
                    spacing,
                    tolerance,
                    max_iterations,
                    operator_mode,
                )
                current_time += dt
                steps_taken += 1
            outputs[output_index] = states
            output_index += 1

        return BatchPDESolution(
            grid=grid,
            times=times,
            states=outputs,
            metadata={
                "backend": self.name,
                "integrator": "crank_nicolson",
                "engine": "batched_crank_nicolson",
                "operator": operator_mode,
                "steps": steps_taken,
                "max_step": max_step,
                "batch_size": batch,
                "diffusion_groups": int(unique_rates.size),
            },
        )

    @staticmethod
    def _crank_nicolson_step_batch(
        states: np.ndarray,
        time: float,
        dt: float,
        laplacian: "np.ndarray | None",
        rates: np.ndarray,
        unique_rates: np.ndarray,
        group_columns: "list[np.ndarray]",
        reaction: "Callable[[np.ndarray, np.ndarray, float], np.ndarray]",
        nodes: np.ndarray,
        num_points: int,
        spacing: float,
        tolerance: float,
        max_iterations: int,
        operator_mode: str,
    ) -> np.ndarray:
        """One IMEX Crank-Nicolson step for every column at once.

        Matches the sequential integrator's Picard iteration per column: a
        column keeps updating until its own change drops below ``tolerance``,
        then freezes, so batched trajectories are identical to sequential
        ones regardless of how the rest of the batch converges.
        """
        factors = [
            operator_cache.crank_nicolson_operator(
                num_points, spacing, dt, float(rate), operator_mode
            )
            for rate in unique_rates
        ]
        if laplacian is None:
            diffusion_term = second_derivative(states, spacing) * rates[None, :]
        else:
            diffusion_term = (laplacian @ states) * rates[None, :]
        explicit_part = states + 0.5 * dt * diffusion_term
        reaction_old = reaction(states, nodes, time)

        new_states = states.copy()
        candidate = np.empty_like(states)
        active = np.ones(states.shape[1], dtype=bool)
        for _ in range(max_iterations):
            reaction_new = reaction(new_states, nodes, time + dt)
            rhs = explicit_part + 0.5 * dt * (reaction_old + reaction_new)
            for factor, columns in zip(factors, group_columns):
                candidate[:, columns] = factor.solve(rhs[:, columns])
            change = np.max(np.abs(candidate - new_states), axis=0)
            new_states[:, active] = candidate[:, active]
            active &= change >= tolerance
            if not active.any():
                break
        return new_states


def _as_batch_of_one(problem: ReactionDiffusionProblem) -> BatchReactionDiffusionProblem:
    """Wrap a sequential constant-diffusion problem as a single-column batch."""
    scalar_reaction = problem.reaction

    def batch_reaction(states: np.ndarray, x: np.ndarray, t: float) -> np.ndarray:
        return np.asarray(scalar_reaction(states[:, 0], x, t), dtype=float)[:, None]

    return BatchReactionDiffusionProblem(
        grid=problem.grid,
        initial_states=problem.initial_state()[:, None],
        diffusion_rates=np.asarray([float(problem.diffusion)]),
        reaction=batch_reaction,
        start_time=problem.start_time,
    )


# ---------------------------------------------------------------------- #
# scipy backend
# ---------------------------------------------------------------------- #
class ScipyBackend(SolverBackend):
    """Delegates to :func:`scipy.integrate.solve_ivp` (LSODA).

    Used for cross-validation and the solver-ablation benchmark.  Batched
    problems fall back to the base class's one-column-at-a-time loop.
    """

    name = "scipy"

    def solve(
        self,
        problem: ReactionDiffusionProblem,
        times: np.ndarray,
        *,
        integrator: TimeIntegrator,
        max_step: float,
    ) -> PDESolution:
        from scipy.integrate import solve_ivp

        grid = problem.grid
        nodes = grid.nodes
        spacing = grid.spacing
        state0 = problem.initial_state()

        def rhs(t: float, u: np.ndarray) -> np.ndarray:
            d_values = problem.diffusion_at(t)
            return d_values * second_derivative(u, spacing) + problem.reaction(u, nodes, t)

        t_span = (problem.start_time, float(times[-1]))
        if t_span[1] <= t_span[0]:
            # Degenerate case: only the initial time was requested.
            states = np.tile(state0, (times.size, 1))
            return PDESolution(
                grid=grid, times=times, states=states, metadata={"backend": self.name}
            )

        result = solve_ivp(
            rhs,
            t_span,
            state0,
            t_eval=times,
            method="LSODA",
            max_step=max_step,
            rtol=1e-7,
            atol=1e-9,
        )
        if not result.success:
            raise RuntimeError(f"scipy solve_ivp failed: {result.message}")
        return PDESolution(
            grid=grid,
            times=np.asarray(result.t, dtype=float),
            states=np.asarray(result.y.T, dtype=float),
            metadata={"backend": self.name, "nfev": int(result.nfev)},
        )


class ThomasBackend(InternalBackend):
    """The internal engine pinned to the pure-numpy Thomas tridiagonal solver.

    Functionally identical to ``"internal"`` but its Crank-Nicolson hot path
    never touches scipy: the operator is factorized and solved by the
    :class:`~repro.numerics.operator_cache.ThomasFactorization` fallback.
    """

    name = "thomas"

    def __init__(self) -> None:
        super().__init__(operator_mode="thomas")


register_backend(InternalBackend.name, InternalBackend)
register_backend(ScipyBackend.name, ScipyBackend)
register_backend(ThomasBackend.name, ThomasBackend)
