"""Numerical substrate for the Diffusive Logistic reproduction.

This package implements, from scratch, every numerical tool the paper relies
on:

* :mod:`repro.numerics.grid` -- uniform spatial grids over the distance axis.
* :mod:`repro.numerics.spline` -- natural/clamped cubic-spline interpolation
  (the paper uses Matlab's cubic spline package to build the initial density
  function phi).
* :mod:`repro.numerics.finite_difference` -- second-order spatial operators
  with Neumann (no-flux) boundary conditions.
* :mod:`repro.numerics.integrators` -- explicit Euler, RK4 and Crank-Nicolson
  time steppers.
* :mod:`repro.numerics.operator_cache` -- process-wide cache of prefactorized
  diffusion operators, keyed by (grid, dt, d, mode) and shared across solves;
  the tridiagonal Neumann operator is stored banded (LAPACK ``gttrf``) or as
  a pure-numpy Thomas factorization, with dense LU as the reference mode.
* :mod:`repro.numerics.backends` -- the pluggable solver-backend registry
  (``"internal"``, ``"thomas"``, ``"scipy"``, and anything registered at
  runtime) plus the vectorised Crank-Nicolson engine behind batched solves.
* :mod:`repro.numerics.pde_solver` -- a method-of-lines reaction-diffusion
  solver used by the DL model, with sequential and batched entry points.
* :mod:`repro.numerics.ode` -- the scalar logistic equation (analytic and
  numeric, with a vectorised batch axis), used both by the growth-process
  model and by the temporal-only baseline.
* :mod:`repro.numerics.optimization` -- least-squares fitting utilities used
  for parameter calibration.
"""

from repro.numerics.grid import UniformGrid
from repro.numerics.spline import CubicSpline, FlatEndDensityInterpolator
from repro.numerics.finite_difference import (
    NeumannLaplacian,
    laplacian_matrix,
    laplacian_tridiagonal,
    second_derivative,
)
from repro.numerics.integrators import (
    CrankNicolsonIntegrator,
    ExplicitEulerIntegrator,
    RungeKutta4Integrator,
    TimeIntegrator,
)
from repro.numerics.operator_cache import (
    OPERATOR_MODES,
    BandedFactorization,
    DenseFactorization,
    ThomasFactorization,
    cache_stats,
    clear_operator_caches,
    crank_nicolson_operator,
)
from repro.numerics.pde_solver import (
    BatchPDESolution,
    BatchReactionDiffusionProblem,
    PDESolution,
    ReactionDiffusionProblem,
    ReactionDiffusionSolver,
)
from repro.numerics.backends import (
    SolverBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.numerics.ode import (
    LogisticCurve,
    fit_logistic_curve,
    fit_logistic_curves,
    logistic_value,
    solve_logistic_ode,
)
from repro.numerics.optimization import (
    FitResult,
    MultiStartFitResult,
    grid_candidates,
    grid_search,
    least_squares_fit,
    mean_relative_error,
    multi_start_least_squares,
    sum_of_squares,
)

__all__ = [
    "UniformGrid",
    "CubicSpline",
    "FlatEndDensityInterpolator",
    "NeumannLaplacian",
    "laplacian_matrix",
    "laplacian_tridiagonal",
    "second_derivative",
    "TimeIntegrator",
    "ExplicitEulerIntegrator",
    "RungeKutta4Integrator",
    "CrankNicolsonIntegrator",
    "cache_stats",
    "clear_operator_caches",
    "crank_nicolson_operator",
    "OPERATOR_MODES",
    "DenseFactorization",
    "BandedFactorization",
    "ThomasFactorization",
    "ReactionDiffusionProblem",
    "BatchReactionDiffusionProblem",
    "ReactionDiffusionSolver",
    "PDESolution",
    "BatchPDESolution",
    "SolverBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "LogisticCurve",
    "logistic_value",
    "solve_logistic_ode",
    "fit_logistic_curve",
    "fit_logistic_curves",
    "FitResult",
    "MultiStartFitResult",
    "grid_candidates",
    "least_squares_fit",
    "multi_start_least_squares",
    "grid_search",
    "sum_of_squares",
    "mean_relative_error",
]
