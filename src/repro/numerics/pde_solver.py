"""Method-of-lines solver for 1-D reaction-diffusion problems.

This is the numerical engine behind the Diffusive Logistic model: it solves

    u_t = d(x, t) * u_xx + f(u, x, t),    x in [l, L]
    u_x(l, t) = u_x(L, t) = 0             (Neumann)
    u(x, t0) = u0(x)

on a :class:`~repro.numerics.grid.UniformGrid`.  The time stepping itself is
delegated to a pluggable :class:`~repro.numerics.backends.SolverBackend`
resolved by name from the backend registry (``"internal"`` uses the
integrators in this package, ``"scipy"`` delegates to ``solve_ivp``); new
backends can be registered without touching this module.

Two problem shapes are supported:

* :class:`ReactionDiffusionProblem` -- one initial condition, one diffusion
  rate, solved by :meth:`ReactionDiffusionSolver.solve`.
* :class:`BatchReactionDiffusionProblem` -- N initial conditions / parameter
  candidates advanced together as the columns of one ``(n_nodes, batch)``
  state matrix per step, solved by :meth:`ReactionDiffusionSolver.solve_batch`.
  The batched path shares the prefactorized diffusion operator (cached per
  (grid, dt, d) in :mod:`repro.numerics.operator_cache`) across all columns,
  which is what makes batched calibration and multi-cascade prediction
  markedly faster than one-solve-at-a-time loops.

The solver is written against a generic reaction callable so the same engine
also serves the SIS baseline and the extended (future-work) parameterisations
where the growth rate depends on both time and distance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.numerics.grid import UniformGrid
from repro.numerics.integrators import CrankNicolsonIntegrator, TimeIntegrator

DiffusionCoefficient = Callable[[np.ndarray, float], np.ndarray]
"""d(x, t): vectorised over the grid nodes, returns per-node diffusion rates."""

ReactionTerm = Callable[[np.ndarray, np.ndarray, float], np.ndarray]
"""f(u, x, t): vectorised reaction term."""

BatchReactionTerm = Callable[[np.ndarray, np.ndarray, float], np.ndarray]
"""f(U, x, t) with ``U`` of shape ``(n_nodes, batch)``; returns the same shape."""


@dataclass(frozen=True)
class ReactionDiffusionProblem:
    """A fully specified 1-D reaction-diffusion initial-boundary-value problem.

    Attributes
    ----------
    grid:
        Spatial grid on ``[l, L]``.
    initial_condition:
        Callable ``u0(x)`` evaluated on the grid nodes, or an array of nodal
        values of matching length.
    diffusion:
        Either a constant diffusion rate ``d`` or a callable ``d(x, t)``.
    reaction:
        Callable ``f(u, x, t)`` giving the reaction contribution to ``u_t``.
    start_time:
        Initial time ``t0`` (the paper uses t = 1 hour).
    """

    grid: UniformGrid
    initial_condition: "Callable[[np.ndarray], np.ndarray] | np.ndarray"
    diffusion: "float | DiffusionCoefficient"
    reaction: ReactionTerm
    start_time: float = 1.0

    def initial_state(self) -> np.ndarray:
        """Evaluate the initial condition on the grid."""
        nodes = self.grid.nodes
        if callable(self.initial_condition):
            state = np.asarray(self.initial_condition(nodes), dtype=float)
        else:
            state = np.asarray(self.initial_condition, dtype=float)
        if state.shape != nodes.shape:
            raise ValueError(
                f"initial condition has shape {state.shape}, expected {nodes.shape}"
            )
        return state.copy()

    def diffusion_at(self, time: float) -> np.ndarray:
        """Per-node diffusion coefficients at ``time``."""
        nodes = self.grid.nodes
        if callable(self.diffusion):
            values = np.asarray(self.diffusion(nodes, time), dtype=float)
            if values.shape != nodes.shape:
                raise ValueError(
                    f"diffusion coefficient has shape {values.shape}, expected {nodes.shape}"
                )
            return values
        return np.full(nodes.shape, float(self.diffusion))

    @property
    def diffusion_is_constant(self) -> bool:
        """True when the diffusion rate does not depend on x or t."""
        return not callable(self.diffusion)


@dataclass(frozen=True)
class BatchReactionDiffusionProblem:
    """N reaction-diffusion problems sharing one grid, advanced as columns.

    The batch members may differ in initial condition, (constant) diffusion
    rate and reaction parameters; the reaction term is a single vectorised
    callable evaluated on the whole ``(n_nodes, batch)`` state matrix at once.
    It must be *columnwise decoupled*: output column ``j`` may depend only on
    state column ``j`` (each column is an independent problem), and it is
    always called with the full ``(n_nodes, batch)`` matrix.

    Attributes
    ----------
    grid:
        Shared spatial grid.
    initial_states:
        Nodal initial values, shape ``(n_nodes, batch)``.
    diffusion_rates:
        Constant diffusion rate per column, shape ``(batch,)``.
    reaction:
        Vectorised ``f(U, x, t) -> (n_nodes, batch)``.
    start_time:
        Shared initial time ``t0``.
    column_reactions:
        Optional per-column scalar reactions ``f(u, x, t) -> (n_nodes,)``,
        one per batch member.  Backends without a vectorised engine fall back
        to solving members one at a time; providing these lets that fallback
        evaluate a single column's reaction directly instead of tiling the
        state to the full batch width per evaluation.
    """

    grid: UniformGrid
    initial_states: np.ndarray
    diffusion_rates: np.ndarray
    reaction: BatchReactionTerm
    start_time: float = 1.0
    column_reactions: "Sequence[ReactionTerm] | None" = None

    def __post_init__(self) -> None:
        states = np.asarray(self.initial_states, dtype=float)
        rates = np.atleast_1d(np.asarray(self.diffusion_rates, dtype=float))
        if states.ndim != 2 or states.shape[0] != self.grid.num_points:
            raise ValueError(
                f"initial_states must have shape (n_nodes={self.grid.num_points}, batch), "
                f"got {states.shape}"
            )
        if rates.shape != (states.shape[1],):
            raise ValueError(
                f"diffusion_rates must have shape ({states.shape[1]},), got {rates.shape}"
            )
        if np.any(rates <= 0):
            raise ValueError("all diffusion rates must be positive")
        if self.column_reactions is not None and len(self.column_reactions) != states.shape[1]:
            raise ValueError(
                f"column_reactions must have one entry per batch member "
                f"({states.shape[1]}), got {len(self.column_reactions)}"
            )
        object.__setattr__(self, "initial_states", states.copy())
        object.__setattr__(self, "diffusion_rates", rates.copy())

    @property
    def batch_size(self) -> int:
        """Number of problems advanced together."""
        return int(self.initial_states.shape[1])

    def column_problem(self, index: int) -> ReactionDiffusionProblem:
        """The ``index``-th member as a standalone sequential problem.

        When ``column_reactions`` were provided, the member's own scalar
        reaction is used directly.  Otherwise the batch reaction -- written
        against the full ``(n_nodes, batch)`` matrix -- is adapted by tiling
        the single state vector across all columns and extracting column
        ``index`` (valid because the reaction is columnwise decoupled by
        contract, but O(batch) extra work per evaluation; supply
        ``column_reactions`` on hot fallback paths).
        """
        if self.column_reactions is not None:
            reaction = self.column_reactions[index]
        else:
            batch_reaction = self.reaction
            batch = self.batch_size

            def reaction(u: np.ndarray, x: np.ndarray, t: float) -> np.ndarray:
                tiled = np.repeat(np.asarray(u, dtype=float)[:, None], batch, axis=1)
                return np.asarray(batch_reaction(tiled, x, t), dtype=float)[:, index]

        return ReactionDiffusionProblem(
            grid=self.grid,
            initial_condition=self.initial_states[:, index].copy(),
            diffusion=float(self.diffusion_rates[index]),
            reaction=reaction,
            start_time=self.start_time,
        )


@dataclass
class PDESolution:
    """Dense-in-space solution sampled at requested output times.

    Attributes
    ----------
    grid:
        The spatial grid the problem was solved on.
    times:
        Output times, shape ``(n_times,)``.
    states:
        Solution values, shape ``(n_times, n_nodes)``.
    """

    grid: UniformGrid
    times: np.ndarray
    states: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.shape != (self.times.size, self.grid.num_points):
            raise ValueError(
                f"states shape {self.states.shape} does not match "
                f"(n_times={self.times.size}, n_nodes={self.grid.num_points})"
            )

    def at_time(self, time: float) -> np.ndarray:
        """Return the spatial profile at the output time closest to ``time``."""
        index = int(np.argmin(np.abs(self.times - time)))
        if abs(self.times[index] - time) > 1e-9 + 1e-6 * max(1.0, abs(time)):
            raise ValueError(
                f"time {time} was not an output time; closest is {self.times[index]}"
            )
        return self.states[index].copy()

    def sample(self, positions: Sequence[float], time: float) -> np.ndarray:
        """Linearly interpolate the solution at arbitrary positions for one time."""
        profile = self.at_time(time)
        return np.interp(np.asarray(positions, dtype=float), self.grid.nodes, profile)

    def sample_surface(self, positions: Sequence[float]) -> np.ndarray:
        """Sample all output times at the given positions -> (n_times, n_positions)."""
        positions = np.asarray(positions, dtype=float)
        surface = np.empty((self.times.size, positions.size))
        for i in range(self.times.size):
            surface[i] = np.interp(positions, self.grid.nodes, self.states[i])
        return surface

    @property
    def final_state(self) -> np.ndarray:
        """Spatial profile at the last output time."""
        return self.states[-1].copy()


@dataclass
class BatchPDESolution:
    """Solutions of a batched solve, one column per batch member.

    Attributes
    ----------
    grid:
        Shared spatial grid.
    times:
        Output times, shape ``(n_times,)``.
    states:
        Solution values, shape ``(n_times, n_nodes, batch)``.
    """

    grid: UniformGrid
    times: np.ndarray
    states: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim != 3 or self.states.shape[:2] != (
            self.times.size,
            self.grid.num_points,
        ):
            raise ValueError(
                f"states shape {self.states.shape} does not match "
                f"(n_times={self.times.size}, n_nodes={self.grid.num_points}, batch)"
            )

    @property
    def batch_size(self) -> int:
        """Number of batch members."""
        return int(self.states.shape[2])

    def column(self, index: int) -> PDESolution:
        """Extract one batch member as a standalone :class:`PDESolution`."""
        metadata = dict(self.metadata)
        metadata["batch_column"] = int(index)
        return PDESolution(
            grid=self.grid,
            times=self.times.copy(),
            states=self.states[:, :, index].copy(),
            metadata=metadata,
        )

    def sample_surface(self, positions: Sequence[float]) -> np.ndarray:
        """Interpolate all columns -> ``(n_times, n_positions, batch)``."""
        positions = np.asarray(positions, dtype=float)
        surface = np.empty((self.times.size, positions.size, self.batch_size))
        for j in range(self.batch_size):
            for i in range(self.times.size):
                surface[i, :, j] = np.interp(
                    positions, self.grid.nodes, self.states[i, :, j]
                )
        return surface


def validated_output_times(output_times: Sequence[float], start_time: float) -> np.ndarray:
    """Deduplicate, sort and range-check the requested output times."""
    times = np.asarray(sorted(set(float(t) for t in output_times)), dtype=float)
    if times.size == 0:
        raise ValueError("at least one output time is required")
    if times[0] < start_time - 1e-12:
        raise ValueError(
            f"output times start at {times[0]}, before the problem start time "
            f"{start_time}"
        )
    return times


class ReactionDiffusionSolver:
    """Method-of-lines solver with pluggable time integration and backends.

    Parameters
    ----------
    integrator:
        A :class:`~repro.numerics.integrators.TimeIntegrator`; defaults to
        Crank-Nicolson, which is unconditionally stable for the diffusion
        part and therefore robust across the parameter sweeps in the
        benchmarks.
    max_step:
        Upper bound on the internal time step (in the same units as the
        output times, i.e. hours for the DL model).
    backend:
        Either the name of a registered backend (``"internal"`` uses the
        integrators in this package; ``"scipy"`` delegates to
        :func:`scipy.integrate.solve_ivp`) or a
        :class:`~repro.numerics.backends.SolverBackend` instance.  Unknown
        names raise a :class:`ValueError` listing the registered backends;
        see :func:`repro.numerics.backends.register_backend` to add new ones.
    operator:
        Factorization mode for the Crank-Nicolson diffusion operator:
        ``"auto"`` (the backend's default -- banded for the internal engine),
        ``"banded"``, ``"thomas"`` or ``"dense"``.  Only meaningful for
        backends that expose an ``operator_mode`` (the internal engine and
        its subclasses); selecting a non-auto mode on any other backend
        raises :class:`ValueError`.
    """

    def __init__(
        self,
        integrator: "TimeIntegrator | None" = None,
        max_step: float = 0.05,
        backend: str = "internal",
        operator: str = "auto",
    ) -> None:
        from repro.numerics.backends import get_backend

        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        self._integrator = integrator if integrator is not None else CrankNicolsonIntegrator()
        self._max_step = max_step
        self._backend = get_backend(backend)
        if operator != "auto":
            if not hasattr(self._backend, "operator_mode"):
                raise ValueError(
                    f"backend {self._backend.name!r} does not support operator "
                    f"mode selection; remove operator={operator!r} or use the "
                    "internal engine"
                )
            # get_backend passes instances through unchanged, so configure a
            # copy: the caller's (possibly shared) backend must not change
            # behaviour behind other solvers holding it.
            self._backend = copy.copy(self._backend)
            self._backend.operator_mode = operator

    @property
    def integrator(self) -> TimeIntegrator:
        """The time integrator in use (internal backend only)."""
        return self._integrator

    @property
    def backend(self) -> str:
        """Name of the solver backend in use (e.g. ``"internal"``, ``"scipy"``)."""
        return self._backend.name

    @property
    def backend_instance(self) -> "object":
        """The resolved :class:`~repro.numerics.backends.SolverBackend`."""
        return self._backend

    @property
    def operator(self) -> "str | None":
        """Operator mode of the backend, or None when it has no such knob."""
        mode = getattr(self._backend, "resolved_operator_mode", None)
        return mode

    @property
    def max_step(self) -> float:
        """Upper bound on the internal time step."""
        return self._max_step

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(
        self, problem: ReactionDiffusionProblem, output_times: Sequence[float]
    ) -> PDESolution:
        """Solve the problem and sample the solution at ``output_times``.

        ``output_times`` must be non-decreasing and start at or after the
        problem's ``start_time``.  The initial time itself may be included and
        is returned verbatim as the initial condition.
        """
        times = validated_output_times(output_times, problem.start_time)
        return self._backend.solve(
            problem, times, integrator=self._integrator, max_step=self._max_step
        )

    def solve_batch(
        self, problem: BatchReactionDiffusionProblem, output_times: Sequence[float]
    ) -> BatchPDESolution:
        """Advance every batch member together and sample at ``output_times``.

        Columns of the state matrix are stepped in lockstep, so the whole
        batch shares each prefactorized diffusion operator and each reaction
        evaluation.  Backends without a native batched implementation fall
        back to solving the members one by one.
        """
        times = validated_output_times(output_times, problem.start_time)
        return self._backend.solve_batch(
            problem, times, integrator=self._integrator, max_step=self._max_step
        )
