"""Method-of-lines solver for 1-D reaction-diffusion problems.

This is the numerical engine behind the Diffusive Logistic model: it solves

    u_t = d(x, t) * u_xx + f(u, x, t),    x in [l, L]
    u_x(l, t) = u_x(L, t) = 0             (Neumann)
    u(x, t0) = u0(x)

on a :class:`~repro.numerics.grid.UniformGrid` using one of the integrators
from :mod:`repro.numerics.integrators`, or scipy's ``solve_ivp`` as an
alternative backend (used for cross-validation and the solver ablation
benchmark).

The solver is written against a generic reaction callable so the same engine
also serves the SIS baseline and the extended (future-work) parameterisations
where the growth rate depends on both time and distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.numerics.finite_difference import NeumannLaplacian
from repro.numerics.grid import UniformGrid
from repro.numerics.integrators import CrankNicolsonIntegrator, TimeIntegrator

DiffusionCoefficient = Callable[[np.ndarray, float], np.ndarray]
"""d(x, t): vectorised over the grid nodes, returns per-node diffusion rates."""

ReactionTerm = Callable[[np.ndarray, np.ndarray, float], np.ndarray]
"""f(u, x, t): vectorised reaction term."""


@dataclass(frozen=True)
class ReactionDiffusionProblem:
    """A fully specified 1-D reaction-diffusion initial-boundary-value problem.

    Attributes
    ----------
    grid:
        Spatial grid on ``[l, L]``.
    initial_condition:
        Callable ``u0(x)`` evaluated on the grid nodes, or an array of nodal
        values of matching length.
    diffusion:
        Either a constant diffusion rate ``d`` or a callable ``d(x, t)``.
    reaction:
        Callable ``f(u, x, t)`` giving the reaction contribution to ``u_t``.
    start_time:
        Initial time ``t0`` (the paper uses t = 1 hour).
    """

    grid: UniformGrid
    initial_condition: "Callable[[np.ndarray], np.ndarray] | np.ndarray"
    diffusion: "float | DiffusionCoefficient"
    reaction: ReactionTerm
    start_time: float = 1.0

    def initial_state(self) -> np.ndarray:
        """Evaluate the initial condition on the grid."""
        nodes = self.grid.nodes
        if callable(self.initial_condition):
            state = np.asarray(self.initial_condition(nodes), dtype=float)
        else:
            state = np.asarray(self.initial_condition, dtype=float)
        if state.shape != nodes.shape:
            raise ValueError(
                f"initial condition has shape {state.shape}, expected {nodes.shape}"
            )
        return state.copy()

    def diffusion_at(self, time: float) -> np.ndarray:
        """Per-node diffusion coefficients at ``time``."""
        nodes = self.grid.nodes
        if callable(self.diffusion):
            values = np.asarray(self.diffusion(nodes, time), dtype=float)
            if values.shape != nodes.shape:
                raise ValueError(
                    f"diffusion coefficient has shape {values.shape}, expected {nodes.shape}"
                )
            return values
        return np.full(nodes.shape, float(self.diffusion))

    @property
    def diffusion_is_constant(self) -> bool:
        """True when the diffusion rate does not depend on x or t."""
        return not callable(self.diffusion)


@dataclass
class PDESolution:
    """Dense-in-space solution sampled at requested output times.

    Attributes
    ----------
    grid:
        The spatial grid the problem was solved on.
    times:
        Output times, shape ``(n_times,)``.
    states:
        Solution values, shape ``(n_times, n_nodes)``.
    """

    grid: UniformGrid
    times: np.ndarray
    states: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.shape != (self.times.size, self.grid.num_points):
            raise ValueError(
                f"states shape {self.states.shape} does not match "
                f"(n_times={self.times.size}, n_nodes={self.grid.num_points})"
            )

    def at_time(self, time: float) -> np.ndarray:
        """Return the spatial profile at the output time closest to ``time``."""
        index = int(np.argmin(np.abs(self.times - time)))
        if abs(self.times[index] - time) > 1e-9 + 1e-6 * max(1.0, abs(time)):
            raise ValueError(
                f"time {time} was not an output time; closest is {self.times[index]}"
            )
        return self.states[index].copy()

    def sample(self, positions: Sequence[float], time: float) -> np.ndarray:
        """Linearly interpolate the solution at arbitrary positions for one time."""
        profile = self.at_time(time)
        return np.interp(np.asarray(positions, dtype=float), self.grid.nodes, profile)

    def sample_surface(self, positions: Sequence[float]) -> np.ndarray:
        """Sample all output times at the given positions -> (n_times, n_positions)."""
        positions = np.asarray(positions, dtype=float)
        surface = np.empty((self.times.size, positions.size))
        for i in range(self.times.size):
            surface[i] = np.interp(positions, self.grid.nodes, self.states[i])
        return surface

    @property
    def final_state(self) -> np.ndarray:
        """Spatial profile at the last output time."""
        return self.states[-1].copy()


class ReactionDiffusionSolver:
    """Method-of-lines solver with pluggable time integration.

    Parameters
    ----------
    integrator:
        A :class:`~repro.numerics.integrators.TimeIntegrator`; defaults to
        Crank-Nicolson, which is unconditionally stable for the diffusion
        part and therefore robust across the parameter sweeps in the
        benchmarks.
    max_step:
        Upper bound on the internal time step (in the same units as the
        output times, i.e. hours for the DL model).
    backend:
        ``"internal"`` uses the integrators in this package; ``"scipy"``
        delegates to :func:`scipy.integrate.solve_ivp` (LSODA), which is used
        for cross-validation in tests and the solver ablation benchmark.
    """

    def __init__(
        self,
        integrator: "TimeIntegrator | None" = None,
        max_step: float = 0.05,
        backend: str = "internal",
    ) -> None:
        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        if backend not in ("internal", "scipy"):
            raise ValueError(f"unknown backend {backend!r}; expected 'internal' or 'scipy'")
        self._integrator = integrator if integrator is not None else CrankNicolsonIntegrator()
        self._max_step = max_step
        self._backend = backend

    @property
    def integrator(self) -> TimeIntegrator:
        """The time integrator in use (internal backend only)."""
        return self._integrator

    @property
    def backend(self) -> str:
        """Either ``"internal"`` or ``"scipy"``."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(
        self, problem: ReactionDiffusionProblem, output_times: Sequence[float]
    ) -> PDESolution:
        """Solve the problem and sample the solution at ``output_times``.

        ``output_times`` must be non-decreasing and start at or after the
        problem's ``start_time``.  The initial time itself may be included and
        is returned verbatim as the initial condition.
        """
        times = np.asarray(sorted(set(float(t) for t in output_times)), dtype=float)
        if times.size == 0:
            raise ValueError("at least one output time is required")
        if times[0] < problem.start_time - 1e-12:
            raise ValueError(
                f"output times start at {times[0]}, before the problem start time "
                f"{problem.start_time}"
            )
        if self._backend == "scipy":
            return self._solve_scipy(problem, times)
        return self._solve_internal(problem, times)

    # ------------------------------------------------------------------ #
    # Internal backend
    # ------------------------------------------------------------------ #
    def _solve_internal(
        self, problem: ReactionDiffusionProblem, times: np.ndarray
    ) -> PDESolution:
        grid = problem.grid
        laplacian = NeumannLaplacian(grid)
        nodes = grid.nodes
        state = problem.initial_state()
        current_time = problem.start_time

        outputs = np.empty((times.size, grid.num_points))
        output_index = 0
        # Emit any output times that coincide with the start time.
        while output_index < times.size and abs(times[output_index] - current_time) < 1e-12:
            outputs[output_index] = state
            output_index += 1

        steps_taken = 0
        constant_diffusion = problem.diffusion_is_constant
        diffusion_matrix = None
        if constant_diffusion:
            diffusion_matrix = float(problem.diffusion) * laplacian.matrix
            self._integrator.prepare(diffusion_matrix, self._max_step)

        def reaction(u: np.ndarray, t: float) -> np.ndarray:
            return problem.reaction(u, nodes, t)

        while output_index < times.size:
            target = times[output_index]
            while current_time < target - 1e-12:
                if not constant_diffusion:
                    d_values = problem.diffusion_at(current_time)
                    diffusion_matrix = d_values[:, None] * laplacian.matrix
                assert diffusion_matrix is not None
                dt = min(self._max_step, target - current_time)
                dt = self._integrator.suggested_dt(diffusion_matrix, dt)
                state = self._integrator.step(
                    state, current_time, dt, diffusion_matrix, reaction
                )
                current_time += dt
                steps_taken += 1
            outputs[output_index] = state
            output_index += 1

        return PDESolution(
            grid=grid,
            times=times,
            states=outputs,
            metadata={
                "backend": "internal",
                "integrator": self._integrator.name,
                "steps": steps_taken,
                "max_step": self._max_step,
            },
        )

    # ------------------------------------------------------------------ #
    # scipy backend
    # ------------------------------------------------------------------ #
    def _solve_scipy(
        self, problem: ReactionDiffusionProblem, times: np.ndarray
    ) -> PDESolution:
        from scipy.integrate import solve_ivp

        grid = problem.grid
        laplacian = NeumannLaplacian(grid)
        nodes = grid.nodes
        state0 = problem.initial_state()

        def rhs(t: float, u: np.ndarray) -> np.ndarray:
            d_values = problem.diffusion_at(t)
            return d_values * laplacian.apply(u) + problem.reaction(u, nodes, t)

        t_span = (problem.start_time, float(times[-1]))
        if t_span[1] <= t_span[0]:
            # Degenerate case: only the initial time was requested.
            states = np.tile(state0, (times.size, 1))
            return PDESolution(grid=grid, times=times, states=states, metadata={"backend": "scipy"})

        result = solve_ivp(
            rhs,
            t_span,
            state0,
            t_eval=times,
            method="LSODA",
            max_step=self._max_step,
            rtol=1e-7,
            atol=1e-9,
        )
        if not result.success:
            raise RuntimeError(f"scipy solve_ivp failed: {result.message}")
        return PDESolution(
            grid=grid,
            times=np.asarray(result.t, dtype=float),
            states=np.asarray(result.y.T, dtype=float),
            metadata={"backend": "scipy", "nfev": int(result.nfev)},
        )
