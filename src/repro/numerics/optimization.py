"""Least-squares fitting utilities used for DL-model calibration.

Section II-D of the paper gives only guidelines for choosing the parameters
(r, d, K); the evaluation section then reports hand-chosen values for story
s1.  For the reproduction we additionally provide automated calibration
(:mod:`repro.core.calibration`) built on the utilities here:

* :func:`least_squares_fit` -- a thin, bounded wrapper around
  ``scipy.optimize.least_squares`` returning a structured :class:`FitResult`.
* :func:`multi_start_least_squares` -- a projected Levenberg-Marquardt
  refinement that advances *many* starting points in lockstep, evaluating
  every residual and finite-difference Jacobian column of every start through
  one batched callback per iteration.  This is what lets the DL calibration
  refine N seed candidates as columns of a single batched PDE solve instead
  of running N sequential ``scipy.optimize.least_squares`` loops.
* :func:`grid_search` -- coarse exhaustive search used to seed the local
  optimiser (the DL objective is non-convex in (d, r-parameters, K)).
* loss helpers (:func:`sum_of_squares`, :func:`mean_relative_error`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Mapping, Sequence

import numpy as np

ResidualFunction = Callable[[np.ndarray], np.ndarray]
"""Maps a parameter vector to a residual vector (not squared)."""

BatchResidualFunction = Callable[[np.ndarray, np.ndarray], "Sequence[np.ndarray]"]
"""Maps ``(points, start_indices)`` to one residual vector per point.

``points`` has shape ``(m, n_params)``; ``start_indices`` has shape ``(m,)``
and tells the callback which *start* each row refines, for callers whose
residual depends on per-start fixed context (e.g. the diffusion rate each
calibration seed is pinned to).  Implementations are expected to evaluate all
rows together -- that is the whole point of the batched refinement.
"""

ScalarObjective = Callable[[np.ndarray], float]
"""Maps a parameter vector to a scalar loss."""


def sum_of_squares(residuals: np.ndarray) -> float:
    """0.5 * sum of squared residuals (the canonical least-squares loss)."""
    residuals = np.asarray(residuals, dtype=float)
    return 0.5 * float(np.dot(residuals, residuals))


def mean_relative_error(predicted: np.ndarray, actual: np.ndarray, epsilon: float = 1e-12) -> float:
    """Mean of |predicted - actual| / |actual| over all finite entries.

    This mirrors the paper's prediction-accuracy definition (Equation 8) with
    accuracy = 1 - relative error; see :mod:`repro.core.accuracy` for the
    exact reproduction of the paper's tables.
    """
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    denominator = np.maximum(np.abs(actual), epsilon)
    return float(np.mean(np.abs(predicted - actual) / denominator))


@dataclass
class FitResult:
    """Outcome of a parameter fit.

    Attributes
    ----------
    parameters:
        Best parameter vector found.
    loss:
        Final scalar loss (0.5 * sum of squared residuals for least squares).
    success:
        Whether the optimiser reported convergence.
    n_evaluations:
        Number of objective/residual evaluations.
    message:
        Human-readable optimiser status.
    names:
        Optional parameter names, aligned with ``parameters``.
    """

    parameters: np.ndarray
    loss: float
    success: bool
    n_evaluations: int = 0
    message: str = ""
    names: tuple[str, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict[str, float]:
        """Return a name -> value mapping (requires ``names`` to be set)."""
        if len(self.names) != len(self.parameters):
            raise ValueError("parameter names are not available for this fit")
        return {name: float(value) for name, value in zip(self.names, self.parameters)}


def least_squares_fit(
    residual: ResidualFunction,
    initial_guess: Sequence[float],
    bounds: "tuple[Sequence[float], Sequence[float]] | None" = None,
    names: "Sequence[str] | None" = None,
    max_evaluations: int = 5000,
) -> FitResult:
    """Bounded nonlinear least squares via scipy's trust-region reflective solver.

    Parameters
    ----------
    residual:
        Function returning the residual vector for a parameter vector.
    initial_guess:
        Starting point; its length defines the parameter dimension.
    bounds:
        Optional ``(lower, upper)`` bound sequences of the same length.
    names:
        Optional parameter names recorded on the result.
    max_evaluations:
        Cap on residual evaluations.
    """
    from scipy.optimize import least_squares as scipy_least_squares

    x0 = np.asarray(initial_guess, dtype=float)
    if x0.ndim != 1 or x0.size == 0:
        raise ValueError("initial_guess must be a non-empty 1-D sequence")
    if bounds is None:
        scipy_bounds = (-np.inf, np.inf)
    else:
        lower = np.asarray(bounds[0], dtype=float)
        upper = np.asarray(bounds[1], dtype=float)
        if lower.shape != x0.shape or upper.shape != x0.shape:
            raise ValueError("bounds must match the length of the initial guess")
        x0 = np.clip(x0, lower, upper)
        scipy_bounds = (lower, upper)

    result = scipy_least_squares(
        residual,
        x0,
        bounds=scipy_bounds,
        max_nfev=max_evaluations,
    )
    return FitResult(
        parameters=np.asarray(result.x, dtype=float),
        loss=sum_of_squares(result.fun),
        success=bool(result.success),
        n_evaluations=int(result.nfev),
        message=str(result.message),
        names=tuple(names) if names is not None else tuple(),
    )


@dataclass
class MultiStartFitResult:
    """Outcome of a batched multi-start refinement.

    Attributes
    ----------
    best:
        The overall winner as a plain :class:`FitResult`.
    start_parameters:
        Final parameter vector of every start, shape ``(n_starts, n_params)``.
    start_losses:
        Final loss of every start, shape ``(n_starts,)``.
    best_start:
        Row index of the winning start.
    iterations:
        Levenberg-Marquardt iterations performed (shared by all starts).
    n_evaluations:
        Total number of residual evaluations (rows passed to the callback).
    converged:
        Per-start convergence flags.
    """

    best: FitResult
    start_parameters: np.ndarray
    start_losses: np.ndarray
    best_start: int
    iterations: int
    n_evaluations: int
    converged: np.ndarray


def multi_start_least_squares(
    residual_batch: BatchResidualFunction,
    seeds: "np.ndarray | Sequence[Sequence[float]]",
    bounds: "tuple[Sequence[float], Sequence[float]] | None" = None,
    names: "Sequence[str] | None" = None,
    max_iterations: int = 40,
    finite_difference_step: float = 1e-6,
    gradient_tolerance: float = 1e-10,
    step_tolerance: float = 1e-10,
    loss_tolerance: float = 1e-12,
    max_step_retries: int = 6,
) -> MultiStartFitResult:
    """Refine many starting points at once with a projected Levenberg-Marquardt.

    All starts advance in lockstep: each iteration gathers the residuals of
    every start plus the forward-difference perturbations of every parameter
    into *one* ``residual_batch`` call, then each start takes its own damped
    Gauss-Newton step (clipped into the bounds box).  The callback therefore
    sees large blocks of parameter vectors it can evaluate together -- for the
    DL calibration those blocks become columns of a single batched PDE solve.

    The algorithm is deterministic and uses only accepted (loss-decreasing)
    steps, so the final loss of each start never exceeds its seed loss.

    Parameters
    ----------
    residual_batch:
        Batched residual callback; see :data:`BatchResidualFunction`.
    seeds:
        Starting points, shape ``(n_starts, n_params)``.
    bounds:
        Optional ``(lower, upper)`` box; seeds are clipped into it.
    names:
        Optional parameter names recorded on the winning :class:`FitResult`.
    max_iterations:
        Cap on Levenberg-Marquardt iterations.
    finite_difference_step:
        Relative forward-difference step for the Jacobian.
    gradient_tolerance, step_tolerance, loss_tolerance:
        A start freezes when its projected gradient, accepted step or loss
        improvement falls below the corresponding tolerance.
    max_step_retries:
        Damping escalations tried per iteration before a start is declared
        stalled.
    """
    points = np.array(seeds, dtype=float)
    if points.ndim != 2 or points.size == 0:
        raise ValueError("seeds must be a non-empty (n_starts, n_params) array")
    n_starts, n_params = points.shape
    if bounds is None:
        lower = np.full(n_params, -np.inf)
        upper = np.full(n_params, np.inf)
    else:
        lower = np.asarray(bounds[0], dtype=float)
        upper = np.asarray(bounds[1], dtype=float)
        if lower.shape != (n_params,) or upper.shape != (n_params,):
            raise ValueError("bounds must match the seed parameter dimension")
        points = np.clip(points, lower, upper)

    all_indices = np.arange(n_starts)
    residuals = [np.asarray(r, dtype=float) for r in residual_batch(points, all_indices)]
    if len(residuals) != n_starts:
        raise ValueError(
            f"residual_batch returned {len(residuals)} residual vectors for "
            f"{n_starts} points"
        )
    losses = np.array([sum_of_squares(r) for r in residuals])
    n_evaluations = n_starts
    damping = np.full(n_starts, 1e-3)
    active = np.isfinite(losses)
    converged = np.zeros(n_starts, dtype=bool)
    iterations = 0

    for _ in range(max_iterations):
        active_idx = np.nonzero(active)[0]
        if active_idx.size == 0:
            break
        iterations += 1

        # One batched call evaluates every forward-difference perturbation of
        # every active start (steps flip backward at the upper bound so the
        # perturbed point stays inside the box).
        steps = np.empty((active_idx.size, n_params))
        block = np.empty((active_idx.size * n_params, n_params))
        block_start = np.empty(active_idx.size * n_params, dtype=int)
        for row, s in enumerate(active_idx):
            x = points[s]
            h = finite_difference_step * np.maximum(1.0, np.abs(x))
            h = np.where(x + h > upper, -h, h)
            steps[row] = h
            for j in range(n_params):
                perturbed = x.copy()
                perturbed[j] += h[j]
                block[row * n_params + j] = perturbed
                block_start[row * n_params + j] = s
        perturbed_residuals = residual_batch(block, block_start)
        n_evaluations += block.shape[0]

        jacobians: dict[int, np.ndarray] = {}
        for row, s in enumerate(active_idx):
            base = residuals[s]
            jacobian = np.empty((base.size, n_params))
            for j in range(n_params):
                shifted = np.asarray(perturbed_residuals[row * n_params + j], dtype=float)
                jacobian[:, j] = (shifted - base) / steps[row, j]
            jacobians[s] = jacobian
            if np.max(np.abs(jacobian.T @ base)) < gradient_tolerance:
                active[s] = False
                converged[s] = True

        # Damped Gauss-Newton steps, escalating the damping of any start whose
        # candidate fails to decrease its loss.
        pending = [s for s in active_idx if active[s]]
        for _retry in range(max_step_retries):
            if not pending:
                break
            candidates = np.empty((len(pending), n_params))
            for row, s in enumerate(pending):
                jacobian = jacobians[s]
                normal = jacobian.T @ jacobian
                gradient = jacobian.T @ residuals[s]
                scaling = np.maximum(np.diag(normal), 1e-12)
                try:
                    delta = np.linalg.solve(
                        normal + damping[s] * np.diag(scaling), -gradient
                    )
                except np.linalg.LinAlgError:
                    delta = -gradient / scaling
                candidates[row] = np.clip(points[s] + delta, lower, upper)
            candidate_residuals = residual_batch(candidates, np.asarray(pending))
            n_evaluations += len(pending)

            still_pending = []
            for row, s in enumerate(pending):
                candidate_residual = np.asarray(candidate_residuals[row], dtype=float)
                candidate_loss = sum_of_squares(candidate_residual)
                if np.isfinite(candidate_loss) and candidate_loss < losses[s]:
                    improvement = losses[s] - candidate_loss
                    step_size = np.max(np.abs(candidates[row] - points[s]))
                    points[s] = candidates[row]
                    residuals[s] = candidate_residual
                    losses[s] = candidate_loss
                    damping[s] = max(damping[s] * 0.3, 1e-12)
                    if improvement < loss_tolerance * max(1.0, candidate_loss) or (
                        step_size < step_tolerance * (1.0 + np.max(np.abs(points[s])))
                    ):
                        active[s] = False
                        converged[s] = True
                else:
                    damping[s] *= 4.0
                    still_pending.append(s)
            pending = still_pending
        for s in pending:
            # Damping exhausted without an accepted step: treat as converged
            # at the current (best-known) point.
            active[s] = False
            converged[s] = True

    finite = np.where(np.isfinite(losses), losses, np.inf)
    best_start = int(np.argmin(finite))
    if not np.isfinite(finite[best_start]):
        raise RuntimeError("no start produced a finite refinement loss")
    best = FitResult(
        parameters=points[best_start].copy(),
        loss=float(losses[best_start]),
        success=bool(converged[best_start]),
        n_evaluations=n_evaluations,
        message=(
            f"multi-start Levenberg-Marquardt: {n_starts} starts, "
            f"{iterations} iterations"
        ),
        names=tuple(names) if names is not None else tuple(),
    )
    return MultiStartFitResult(
        best=best,
        start_parameters=points,
        start_losses=losses,
        best_start=best_start,
        iterations=iterations,
        n_evaluations=n_evaluations,
        converged=converged,
    )


def grid_candidates(
    parameter_grid: Mapping[str, Sequence[float]],
) -> tuple[tuple[str, ...], np.ndarray]:
    """Materialise a parameter grid as ``(names, candidates)``.

    ``candidates`` has shape ``(n_candidates, n_params)`` with one row per
    point of the Cartesian product, ordered like :func:`itertools.product`.
    Shared by :func:`grid_search` (which evaluates rows one at a time) and
    the batched calibration path (which evaluates all rows in vectorised
    solves).
    """
    names = tuple(parameter_grid.keys())
    if not names:
        raise ValueError("parameter_grid must not be empty")
    value_lists = [list(parameter_grid[name]) for name in names]
    if any(len(values) == 0 for values in value_lists):
        raise ValueError("every parameter must have at least one candidate value")
    candidates = np.asarray(list(product(*value_lists)), dtype=float)
    return names, candidates


def grid_search(
    objective: ScalarObjective,
    parameter_grid: Mapping[str, Sequence[float]],
) -> FitResult:
    """Exhaustive search over a Cartesian product of parameter values.

    Used to seed :func:`least_squares_fit` when calibrating the DL model,
    whose loss surface has multiple local minima in (d, K, growth-rate
    parameters).

    Parameters
    ----------
    objective:
        Scalar loss evaluated on a parameter vector (ordered as the keys of
        ``parameter_grid``).
    parameter_grid:
        Mapping from parameter name to the candidate values to try.

    Returns
    -------
    FitResult
        The best point found; ``success`` is True whenever the grid is
        non-empty and at least one evaluation returned a finite loss.
    """
    names, candidates = grid_candidates(parameter_grid)

    best_loss = np.inf
    best_params: "np.ndarray | None" = None
    evaluations = 0
    for params in candidates:
        loss = float(objective(params))
        evaluations += 1
        if np.isfinite(loss) and loss < best_loss:
            best_loss = loss
            best_params = params

    if best_params is None:
        return FitResult(
            parameters=candidates[0].copy(),
            loss=np.inf,
            success=False,
            n_evaluations=evaluations,
            message="no finite loss found on the grid",
            names=names,
        )
    return FitResult(
        parameters=best_params,
        loss=best_loss,
        success=True,
        n_evaluations=evaluations,
        message="grid search complete",
        names=names,
    )
