"""Least-squares fitting utilities used for DL-model calibration.

Section II-D of the paper gives only guidelines for choosing the parameters
(r, d, K); the evaluation section then reports hand-chosen values for story
s1.  For the reproduction we additionally provide automated calibration
(:mod:`repro.core.calibration`) built on the utilities here:

* :func:`least_squares_fit` -- a thin, bounded wrapper around
  ``scipy.optimize.least_squares`` returning a structured :class:`FitResult`.
* :func:`grid_search` -- coarse exhaustive search used to seed the local
  optimiser (the DL objective is non-convex in (d, r-parameters, K)).
* loss helpers (:func:`sum_of_squares`, :func:`mean_relative_error`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Mapping, Sequence

import numpy as np

ResidualFunction = Callable[[np.ndarray], np.ndarray]
"""Maps a parameter vector to a residual vector (not squared)."""

ScalarObjective = Callable[[np.ndarray], float]
"""Maps a parameter vector to a scalar loss."""


def sum_of_squares(residuals: np.ndarray) -> float:
    """0.5 * sum of squared residuals (the canonical least-squares loss)."""
    residuals = np.asarray(residuals, dtype=float)
    return 0.5 * float(np.dot(residuals, residuals))


def mean_relative_error(predicted: np.ndarray, actual: np.ndarray, epsilon: float = 1e-12) -> float:
    """Mean of |predicted - actual| / |actual| over all finite entries.

    This mirrors the paper's prediction-accuracy definition (Equation 8) with
    accuracy = 1 - relative error; see :mod:`repro.core.accuracy` for the
    exact reproduction of the paper's tables.
    """
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    denominator = np.maximum(np.abs(actual), epsilon)
    return float(np.mean(np.abs(predicted - actual) / denominator))


@dataclass
class FitResult:
    """Outcome of a parameter fit.

    Attributes
    ----------
    parameters:
        Best parameter vector found.
    loss:
        Final scalar loss (0.5 * sum of squared residuals for least squares).
    success:
        Whether the optimiser reported convergence.
    n_evaluations:
        Number of objective/residual evaluations.
    message:
        Human-readable optimiser status.
    names:
        Optional parameter names, aligned with ``parameters``.
    """

    parameters: np.ndarray
    loss: float
    success: bool
    n_evaluations: int = 0
    message: str = ""
    names: tuple[str, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict[str, float]:
        """Return a name -> value mapping (requires ``names`` to be set)."""
        if len(self.names) != len(self.parameters):
            raise ValueError("parameter names are not available for this fit")
        return {name: float(value) for name, value in zip(self.names, self.parameters)}


def least_squares_fit(
    residual: ResidualFunction,
    initial_guess: Sequence[float],
    bounds: "tuple[Sequence[float], Sequence[float]] | None" = None,
    names: "Sequence[str] | None" = None,
    max_evaluations: int = 5000,
) -> FitResult:
    """Bounded nonlinear least squares via scipy's trust-region reflective solver.

    Parameters
    ----------
    residual:
        Function returning the residual vector for a parameter vector.
    initial_guess:
        Starting point; its length defines the parameter dimension.
    bounds:
        Optional ``(lower, upper)`` bound sequences of the same length.
    names:
        Optional parameter names recorded on the result.
    max_evaluations:
        Cap on residual evaluations.
    """
    from scipy.optimize import least_squares as scipy_least_squares

    x0 = np.asarray(initial_guess, dtype=float)
    if x0.ndim != 1 or x0.size == 0:
        raise ValueError("initial_guess must be a non-empty 1-D sequence")
    if bounds is None:
        scipy_bounds = (-np.inf, np.inf)
    else:
        lower = np.asarray(bounds[0], dtype=float)
        upper = np.asarray(bounds[1], dtype=float)
        if lower.shape != x0.shape or upper.shape != x0.shape:
            raise ValueError("bounds must match the length of the initial guess")
        x0 = np.clip(x0, lower, upper)
        scipy_bounds = (lower, upper)

    result = scipy_least_squares(
        residual,
        x0,
        bounds=scipy_bounds,
        max_nfev=max_evaluations,
    )
    return FitResult(
        parameters=np.asarray(result.x, dtype=float),
        loss=sum_of_squares(result.fun),
        success=bool(result.success),
        n_evaluations=int(result.nfev),
        message=str(result.message),
        names=tuple(names) if names is not None else tuple(),
    )


def grid_candidates(
    parameter_grid: Mapping[str, Sequence[float]],
) -> tuple[tuple[str, ...], np.ndarray]:
    """Materialise a parameter grid as ``(names, candidates)``.

    ``candidates`` has shape ``(n_candidates, n_params)`` with one row per
    point of the Cartesian product, ordered like :func:`itertools.product`.
    Shared by :func:`grid_search` (which evaluates rows one at a time) and
    the batched calibration path (which evaluates all rows in vectorised
    solves).
    """
    names = tuple(parameter_grid.keys())
    if not names:
        raise ValueError("parameter_grid must not be empty")
    value_lists = [list(parameter_grid[name]) for name in names]
    if any(len(values) == 0 for values in value_lists):
        raise ValueError("every parameter must have at least one candidate value")
    candidates = np.asarray(list(product(*value_lists)), dtype=float)
    return names, candidates


def grid_search(
    objective: ScalarObjective,
    parameter_grid: Mapping[str, Sequence[float]],
) -> FitResult:
    """Exhaustive search over a Cartesian product of parameter values.

    Used to seed :func:`least_squares_fit` when calibrating the DL model,
    whose loss surface has multiple local minima in (d, K, growth-rate
    parameters).

    Parameters
    ----------
    objective:
        Scalar loss evaluated on a parameter vector (ordered as the keys of
        ``parameter_grid``).
    parameter_grid:
        Mapping from parameter name to the candidate values to try.

    Returns
    -------
    FitResult
        The best point found; ``success`` is True whenever the grid is
        non-empty and at least one evaluation returned a finite loss.
    """
    names, candidates = grid_candidates(parameter_grid)

    best_loss = np.inf
    best_params: "np.ndarray | None" = None
    evaluations = 0
    for params in candidates:
        loss = float(objective(params))
        evaluations += 1
        if np.isfinite(loss) and loss < best_loss:
            best_loss = loss
            best_params = params

    if best_params is None:
        return FitResult(
            parameters=candidates[0].copy(),
            loss=np.inf,
            success=False,
            n_evaluations=evaluations,
            message="no finite loss found on the grid",
            names=names,
        )
    return FitResult(
        parameters=best_params,
        loss=best_loss,
        success=True,
        n_evaluations=evaluations,
        message="grid search complete",
        names=names,
    )
