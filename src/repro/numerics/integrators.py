"""Time integrators for the semi-discrete reaction-diffusion system.

After spatial discretisation (method of lines) the DL equation becomes a
system of ODEs

    du/dt = d * A u + f(u, t)

where ``A`` is the Neumann Laplacian and ``f`` the logistic reaction term.
Three integrators are provided:

* :class:`ExplicitEulerIntegrator` -- first order, cheap, requires a small
  time step for stability (``dt <= h**2 / (2 d)``).
* :class:`RungeKutta4Integrator` -- classic fourth-order explicit scheme.
* :class:`CrankNicolsonIntegrator` -- second-order, unconditionally stable
  IMEX scheme treating the stiff diffusion term implicitly and the logistic
  reaction term explicitly (with a trapezoidal correction via a fixed-point
  iteration).

All integrators share the :class:`TimeIntegrator` interface so the PDE solver
and the solver-ablation benchmark can swap them freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

ReactionFunction = Callable[[np.ndarray, float], np.ndarray]
"""Signature of the reaction term f(u, t) -> du/dt contribution."""


class TimeIntegrator(ABC):
    """Interface shared by all time-stepping schemes.

    An integrator advances the semi-discrete state ``u`` from ``t`` to
    ``t + dt`` for the system ``du/dt = diffusion_matrix @ u * <implicit or
    explicit handling> + reaction(u, t)``.
    """

    name: str = "abstract"

    @abstractmethod
    def step(
        self,
        state: np.ndarray,
        time: float,
        dt: float,
        diffusion_matrix: np.ndarray,
        reaction: ReactionFunction,
    ) -> np.ndarray:
        """Advance ``state`` by one step of size ``dt`` and return the new state."""

    def prepare(self, diffusion_matrix: np.ndarray, dt: float) -> None:
        """Optional hook to precompute factorisations for a fixed ``dt``."""

    def suggested_dt(self, diffusion_matrix: np.ndarray, dt: float) -> float:
        """Return a stable step size no larger than ``dt`` for this scheme."""
        return dt


def _explicit_rhs(
    state: np.ndarray,
    time: float,
    diffusion_matrix: np.ndarray,
    reaction: ReactionFunction,
) -> np.ndarray:
    return diffusion_matrix @ state + reaction(state, time)


class ExplicitEulerIntegrator(TimeIntegrator):
    """Forward Euler: ``u_{n+1} = u_n + dt * rhs(u_n, t_n)``."""

    name = "explicit_euler"

    def step(
        self,
        state: np.ndarray,
        time: float,
        dt: float,
        diffusion_matrix: np.ndarray,
        reaction: ReactionFunction,
    ) -> np.ndarray:
        return state + dt * _explicit_rhs(state, time, diffusion_matrix, reaction)

    def suggested_dt(self, diffusion_matrix: np.ndarray, dt: float) -> float:
        # Stability limit for the diffusion part: dt <= 2 / |lambda_max|.
        # For the Neumann Laplacian scaled by d, |lambda_max| <= 4 d / h^2,
        # which equals twice the largest absolute diagonal entry.
        max_diag = float(np.max(np.abs(np.diag(diffusion_matrix))))
        if max_diag <= 0:
            return dt
        stable = 1.0 / max_diag  # = h^2 / (2 d) for the standard Laplacian
        return min(dt, 0.9 * stable)


class RungeKutta4Integrator(TimeIntegrator):
    """Classic explicit fourth-order Runge-Kutta scheme."""

    name = "rk4"

    def step(
        self,
        state: np.ndarray,
        time: float,
        dt: float,
        diffusion_matrix: np.ndarray,
        reaction: ReactionFunction,
    ) -> np.ndarray:
        k1 = _explicit_rhs(state, time, diffusion_matrix, reaction)
        k2 = _explicit_rhs(state + 0.5 * dt * k1, time + 0.5 * dt, diffusion_matrix, reaction)
        k3 = _explicit_rhs(state + 0.5 * dt * k2, time + 0.5 * dt, diffusion_matrix, reaction)
        k4 = _explicit_rhs(state + dt * k3, time + dt, diffusion_matrix, reaction)
        return state + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)

    def suggested_dt(self, diffusion_matrix: np.ndarray, dt: float) -> float:
        max_diag = float(np.max(np.abs(np.diag(diffusion_matrix))))
        if max_diag <= 0:
            return dt
        # RK4 stability interval on the negative real axis is ~[-2.78, 0].
        stable = 2.78 / (2.0 * max_diag)
        return min(dt, 0.9 * stable)


class CrankNicolsonIntegrator(TimeIntegrator):
    """Second-order IMEX Crank-Nicolson scheme.

    The linear diffusion part is treated with the trapezoidal rule (implicit),
    the nonlinear reaction term with a fixed-point (Picard) iteration on the
    trapezoidal average.  For the mildly nonlinear logistic reaction of the DL
    model a handful of iterations converges to machine precision.
    """

    name = "crank_nicolson"

    def __init__(self, max_picard_iterations: int = 12, tolerance: float = 1e-10) -> None:
        if max_picard_iterations < 1:
            raise ValueError("max_picard_iterations must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._max_picard_iterations = max_picard_iterations
        self._tolerance = tolerance
        self._cached_dt: "float | None" = None
        self._cached_matrix_id: "int | None" = None
        self._lhs_factor: "tuple[np.ndarray, np.ndarray] | None" = None

    @property
    def max_picard_iterations(self) -> int:
        """Cap on fixed-point iterations per step (read by the batched engine)."""
        return self._max_picard_iterations

    @property
    def tolerance(self) -> float:
        """Picard convergence tolerance (read by the batched engine)."""
        return self._tolerance

    def _factorise(self, diffusion_matrix: np.ndarray, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """LU-factorise ``(I - dt/2 A)`` once per (matrix, dt) pair."""
        from scipy.linalg import lu_factor

        if (
            self._lhs_factor is not None
            and self._cached_dt == dt
            and self._cached_matrix_id == id(diffusion_matrix)
        ):
            return self._lhs_factor
        n = diffusion_matrix.shape[0]
        lhs = np.eye(n) - 0.5 * dt * diffusion_matrix
        self._lhs_factor = lu_factor(lhs)
        self._cached_dt = dt
        self._cached_matrix_id = id(diffusion_matrix)
        return self._lhs_factor

    def prepare(self, diffusion_matrix: np.ndarray, dt: float) -> None:
        self._factorise(diffusion_matrix, dt)

    def step(
        self,
        state: np.ndarray,
        time: float,
        dt: float,
        diffusion_matrix: np.ndarray,
        reaction: ReactionFunction,
    ) -> np.ndarray:
        from scipy.linalg import lu_solve

        factor = self._factorise(diffusion_matrix, dt)
        explicit_part = state + 0.5 * dt * (diffusion_matrix @ state)
        reaction_old = reaction(state, time)

        new_state = state.copy()
        for _ in range(self._max_picard_iterations):
            reaction_new = reaction(new_state, time + dt)
            rhs = explicit_part + 0.5 * dt * (reaction_old + reaction_new)
            candidate = lu_solve(factor, rhs)
            change = float(np.max(np.abs(candidate - new_state)))
            new_state = candidate
            if change < self._tolerance:
                break
        return new_state


def make_integrator(name: str) -> TimeIntegrator:
    """Factory used by configuration-driven code and benchmarks.

    Parameters
    ----------
    name:
        One of ``"explicit_euler"``, ``"rk4"``, ``"crank_nicolson"``.
    """
    registry: dict[str, Callable[[], TimeIntegrator]] = {
        "explicit_euler": ExplicitEulerIntegrator,
        "rk4": RungeKutta4Integrator,
        "crank_nicolson": CrankNicolsonIntegrator,
    }
    if name not in registry:
        raise ValueError(f"unknown integrator {name!r}; expected one of {sorted(registry)}")
    return registry[name]()
