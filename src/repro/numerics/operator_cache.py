"""Shared cache of prefactorized spatial operators.

Every Crank-Nicolson step solves a linear system with the same matrix

    (I - dt/2 * d * A)

where ``A`` is the Neumann Laplacian of the grid.  During calibration the
same (grid, dt, d) triple recurs thousands of times -- once per candidate
parameter set, once per internal time step, once per Picard iteration -- so
refactorizing per solve dominates the runtime.  This module holds a
process-wide cache keyed by the *values* that determine the operator
(``num_points``, ``spacing``, ``dt``, ``diffusion_rate``) rather than object
identity, so the factorization is paid once per (grid, dt, d) and shared
across time steps, solves, calibration candidates and batch columns.

Cached arrays are returned read-only; callers that need to modify an operator
must copy it first.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=64)
def neumann_laplacian_matrix(num_points: int, spacing: float) -> np.ndarray:
    """Dense Neumann Laplacian for a uniform grid, cached and read-only."""
    from repro.numerics.finite_difference import laplacian_matrix

    matrix = laplacian_matrix(num_points, spacing)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=512)
def crank_nicolson_factor(
    num_points: int, spacing: float, dt: float, diffusion_rate: float
) -> "tuple[np.ndarray, np.ndarray]":
    """LU factorization of ``I - dt/2 * d * A`` for the Neumann Laplacian.

    The returned value is the ``(lu, piv)`` pair produced by
    :func:`scipy.linalg.lu_factor`, directly usable with
    :func:`scipy.linalg.lu_solve` (which accepts one right-hand side or a
    matrix of right-hand-side columns, enabling the batched solver).
    """
    from scipy.linalg import lu_factor

    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    laplacian = neumann_laplacian_matrix(num_points, spacing)
    lhs = np.eye(num_points) - (0.5 * dt * diffusion_rate) * laplacian
    lu, piv = lu_factor(lhs)
    lu.setflags(write=False)
    piv.setflags(write=False)
    return lu, piv


def cache_stats() -> dict:
    """Hit/miss statistics for both operator caches (for tests and benchmarks)."""
    return {
        "laplacian": neumann_laplacian_matrix.cache_info()._asdict(),
        "crank_nicolson_factor": crank_nicolson_factor.cache_info()._asdict(),
    }


def clear_operator_caches() -> None:
    """Drop every cached operator (used by tests to measure cache behaviour)."""
    neumann_laplacian_matrix.cache_clear()
    crank_nicolson_factor.cache_clear()
