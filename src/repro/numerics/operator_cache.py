"""Shared cache of prefactorized spatial operators.

Every Crank-Nicolson step solves a linear system with the same matrix

    (I - dt/2 * d * A)

where ``A`` is the Neumann Laplacian of the grid.  During calibration the
same (grid, dt, d) triple recurs thousands of times -- once per candidate
parameter set, once per internal time step, once per Picard iteration -- so
refactorizing per solve dominates the runtime.  This module holds a
process-wide cache keyed by the *values* that determine the operator
(``num_points``, ``spacing``, ``dt``, ``diffusion_rate``) rather than object
identity, so the factorization is paid once per (grid, dt, d) and shared
across time steps, solves, calibration candidates and batch columns.

The Neumann Laplacian is tridiagonal, so three factorization *modes* are
offered through :func:`crank_nicolson_operator`:

``"banded"`` (the default for the Crank-Nicolson engine)
    LAPACK ``gttrf``/``gttrs`` tridiagonal LU -- O(n) memory and O(n) per
    solve, with :func:`scipy.linalg.solve_banded` as a refactorizing fallback
    when the LAPACK wrappers are unavailable.
``"thomas"``
    A pure-numpy Thomas (tridiagonal) factorization with no scipy
    dependency, registered as its own solver backend in
    :mod:`repro.numerics.backends`.
``"dense"``
    The original dense LU (:func:`scipy.linalg.lu_factor`), kept as the
    reference implementation the equivalence tests and the substrate
    benchmark compare against.

Cached arrays are returned read-only; callers that need to modify an operator
must copy it first.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

OPERATOR_MODES = ("dense", "banded", "thomas")
"""Factorization modes accepted by :func:`crank_nicolson_operator`."""


@lru_cache(maxsize=64)
def neumann_laplacian_matrix(num_points: int, spacing: float) -> np.ndarray:
    """Dense Neumann Laplacian for a uniform grid, cached and read-only."""
    from repro.numerics.finite_difference import laplacian_matrix

    matrix = laplacian_matrix(num_points, spacing)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=64)
def neumann_laplacian_tridiagonal(
    num_points: int, spacing: float
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Tridiagonal ``(sub, diag, super)`` bands of the Neumann Laplacian.

    Identical entries to :func:`neumann_laplacian_matrix` without the O(n^2)
    zeros; all three arrays are cached read-only.
    """
    from repro.numerics.finite_difference import laplacian_tridiagonal

    bands = laplacian_tridiagonal(num_points, spacing)
    for band in bands:
        band.setflags(write=False)
    return bands


@lru_cache(maxsize=512)
def crank_nicolson_factor(
    num_points: int, spacing: float, dt: float, diffusion_rate: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Dense LU factorization of ``I - dt/2 * d * A`` for the Neumann Laplacian.

    The returned value is the ``(lu, piv)`` pair produced by
    :func:`scipy.linalg.lu_factor`, directly usable with
    :func:`scipy.linalg.lu_solve` (which accepts one right-hand side or a
    matrix of right-hand-side columns, enabling the batched solver).
    """
    from scipy.linalg import lu_factor

    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    laplacian = neumann_laplacian_matrix(num_points, spacing)
    lhs = np.eye(num_points) - (0.5 * dt * diffusion_rate) * laplacian
    lu, piv = lu_factor(lhs)
    lu.setflags(write=False)
    piv.setflags(write=False)
    return lu, piv


def _crank_nicolson_bands(
    num_points: int, spacing: float, dt: float, diffusion_rate: float
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Writable ``(sub, diag, super)`` bands of ``I - dt/2 * d * A``."""
    sub, diag, sup = neumann_laplacian_tridiagonal(num_points, spacing)
    scale = 0.5 * dt * diffusion_rate
    return (-scale * sub, 1.0 - scale * diag, -scale * sup)


class DenseFactorization:
    """Dense LU factorization with a uniform ``solve`` interface."""

    mode = "dense"

    def __init__(self, lu: np.ndarray, piv: np.ndarray) -> None:
        self._lu_piv = (lu, piv)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored factors."""
        return sum(int(array.nbytes) for array in self._lu_piv)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for one right-hand side ``(n,)`` or a column block ``(n, k)``."""
        from scipy.linalg import lu_solve

        return lu_solve(self._lu_piv, rhs)


class BandedFactorization:
    """Tridiagonal LU via LAPACK ``gttrf``/``gttrs`` -- O(n) memory and solves.

    When the LAPACK generator wrappers are unavailable the solve falls back to
    :func:`scipy.linalg.solve_banded` on the stored bands, which refactorizes
    per call but stays O(n).
    """

    mode = "banded"

    def __init__(self, sub: np.ndarray, diag: np.ndarray, sup: np.ndarray) -> None:
        self._bands = (sub, diag, sup)
        self._factor = None
        self._tiny = None
        if np.asarray(diag).size < 3:
            # The LAPACK gtt* wrappers reject the degenerate 2x2 case; the
            # pure-numpy elimination handles it at identical cost.
            self._tiny = ThomasFactorization(sub, diag, sup)
            return
        try:
            from scipy.linalg.lapack import dgttrf
        except ImportError:  # pragma: no cover - old scipy without the wrapper
            return
        dl, d, du, du2, ipiv, info = dgttrf(sub, diag, sup)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"tridiagonal factorization failed (gttrf info={info})"
            )
        self._factor = (dl, d, du, du2, ipiv)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored factors."""
        arrays = self._bands if self._factor is None else self._factor
        return sum(int(np.asarray(array).nbytes) for array in arrays)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for one right-hand side ``(n,)`` or a column block ``(n, k)``."""
        if self._tiny is not None:
            return self._tiny.solve(rhs)
        if self._factor is None:  # pragma: no cover - exercised only on old scipy
            from scipy.linalg import solve_banded

            sub, diag, sup = self._bands
            ab = np.zeros((3, diag.size))
            ab[0, 1:] = sup
            ab[1, :] = diag
            ab[2, :-1] = sub
            return solve_banded((1, 1), ab, rhs)
        from scipy.linalg.lapack import dgttrs

        dl, d, du, du2, ipiv = self._factor
        rhs = np.asarray(rhs, dtype=float)
        solution, info = dgttrs(dl, d, du, du2, ipiv, rhs)
        if info != 0:  # pragma: no cover - cannot happen for a valid factorization
            raise np.linalg.LinAlgError(f"tridiagonal solve failed (gttrs info={info})")
        return solution


class ThomasFactorization:
    """Pure-numpy Thomas algorithm with a precomputed forward elimination.

    The factorization stores the elimination multipliers ``w_i = a_i / b'_{i-1}``
    and the modified pivots ``b'_i`` once, so repeated solves cost one forward
    and one backward sweep (O(n) each, vectorised across right-hand-side
    columns).  No pivoting is performed, so the matrix must be (strictly)
    diagonally dominant -- which every Crank-Nicolson operator
    ``I - dt/2 * d * A`` is, since the diagonal is ``1 + |off-diagonals|``.
    """

    mode = "thomas"

    def __init__(self, sub: np.ndarray, diag: np.ndarray, sup: np.ndarray) -> None:
        sub = np.asarray(sub, dtype=float)
        diag = np.asarray(diag, dtype=float)
        sup = np.asarray(sup, dtype=float)
        n = diag.size
        if sub.shape != (n - 1,) or sup.shape != (n - 1,):
            raise ValueError(
                f"bands must have shapes ({n - 1},), ({n},), ({n - 1},); "
                f"got {sub.shape}, {diag.shape}, {sup.shape}"
            )
        multipliers = np.empty(n - 1)
        pivots = np.empty(n)
        pivots[0] = diag[0]
        for i in range(1, n):
            if pivots[i - 1] == 0.0:
                raise np.linalg.LinAlgError(
                    "zero pivot in Thomas factorization (matrix must be "
                    "diagonally dominant; no pivoting is performed)"
                )
            multipliers[i - 1] = sub[i - 1] / pivots[i - 1]
            pivots[i] = diag[i] - multipliers[i - 1] * sup[i - 1]
        if pivots[-1] == 0.0:
            raise np.linalg.LinAlgError("zero pivot in Thomas factorization")
        self._multipliers = multipliers
        self._pivots = pivots
        self._sup = sup.copy()

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored factors."""
        return int(self._multipliers.nbytes + self._pivots.nbytes + self._sup.nbytes)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for one right-hand side ``(n,)`` or a column block ``(n, k)``."""
        rhs = np.asarray(rhs, dtype=float)
        n = self._pivots.size
        if rhs.shape[0] != n:
            raise ValueError(f"rhs has leading dimension {rhs.shape[0]}, expected {n}")
        w, bp, sup = self._multipliers, self._pivots, self._sup
        y = rhs.copy()
        for i in range(1, n):
            y[i] -= w[i - 1] * y[i - 1]
        y[n - 1] /= bp[n - 1]
        for i in range(n - 2, -1, -1):
            y[i] = (y[i] - sup[i] * y[i + 1]) / bp[i]
        return y


@lru_cache(maxsize=512)
def crank_nicolson_operator(
    num_points: int,
    spacing: float,
    dt: float,
    diffusion_rate: float,
    mode: str = "banded",
):
    """Factorized ``I - dt/2 * d * A`` in the requested operator ``mode``.

    Returns an object with a ``solve(rhs)`` method accepting one right-hand
    side ``(n,)`` or a block of columns ``(n, k)``, plus ``mode`` and
    ``nbytes`` attributes.  Banded and Thomas factorizations store O(n)
    data; the dense mode shares the factors of :func:`crank_nicolson_factor`.
    """
    if mode not in OPERATOR_MODES:
        raise ValueError(
            f"unknown operator mode {mode!r}; expected one of {OPERATOR_MODES}"
        )
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if mode == "dense":
        return DenseFactorization(*crank_nicolson_factor(num_points, spacing, dt, diffusion_rate))
    bands = _crank_nicolson_bands(num_points, spacing, dt, diffusion_rate)
    if mode == "banded":
        return BandedFactorization(*bands)
    return ThomasFactorization(*bands)


def cache_stats() -> dict:
    """Hit/miss statistics for every operator cache (for tests and benchmarks)."""
    return {
        "laplacian": neumann_laplacian_matrix.cache_info()._asdict(),
        "laplacian_tridiagonal": neumann_laplacian_tridiagonal.cache_info()._asdict(),
        "crank_nicolson_factor": crank_nicolson_factor.cache_info()._asdict(),
        "crank_nicolson_operator": crank_nicolson_operator.cache_info()._asdict(),
    }


def clear_operator_caches() -> None:
    """Drop every cached operator (used by tests to measure cache behaviour)."""
    neumann_laplacian_matrix.cache_clear()
    neumann_laplacian_tridiagonal.cache_clear()
    crank_nicolson_factor.cache_clear()
    crank_nicolson_operator.cache_clear()
