"""The scalar logistic equation.

The growth process of the DL model -- information spreading among users at the
*same* distance from the source -- is the classic logistic model

    N' = r N (1 - N / K)

whose analytic solution through ``N(t0) = N0`` is

    N(t) = K / (1 + (K/N0 - 1) exp(-r (t - t0)))

This module provides the analytic solution, a numeric solver for
time-dependent growth rates, and least-squares fitting of (r, K) to observed
trajectories.  The same code powers the temporal-only baseline
(:mod:`repro.baselines.logistic`), which fits an independent logistic curve at
every distance and therefore ignores the spatial diffusion term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


def logistic_value(
    time_offsets: "float | np.ndarray",
    growth_rates: "float | np.ndarray",
    carrying_capacities: "float | np.ndarray",
    initial_values: "float | np.ndarray",
) -> "float | np.ndarray":
    """The analytic logistic trajectory ``K / (1 + (K/N0 - 1) e^{-r dt})``.

    The single shared evaluator behind :class:`LogisticCurve`,
    :func:`fit_logistic_curves` and the logistic baseline's batched
    prediction; all arguments broadcast, so one call evaluates many curves
    at many time offsets.
    """
    ratio = carrying_capacities / initial_values - 1.0
    return carrying_capacities / (1.0 + ratio * np.exp(-growth_rates * time_offsets))


@dataclass(frozen=True)
class LogisticCurve:
    """Analytic logistic trajectory ``N(t)``.

    Attributes
    ----------
    growth_rate:
        Intrinsic growth rate ``r``.
    carrying_capacity:
        Carrying capacity ``K`` (> 0), the upper bound of the trajectory.
    initial_value:
        ``N(t0)``; must satisfy ``0 < initial_value``.
    initial_time:
        Reference time ``t0``.
    """

    growth_rate: float
    carrying_capacity: float
    initial_value: float
    initial_time: float = 0.0

    def __post_init__(self) -> None:
        if self.carrying_capacity <= 0:
            raise ValueError(f"carrying capacity must be positive, got {self.carrying_capacity}")
        if self.initial_value <= 0:
            raise ValueError(
                f"initial value must be positive for the analytic solution, got {self.initial_value}"
            )

    def __call__(self, times: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate the trajectory at one or many times.

        Scalar inputs (including numpy scalars and 0-d arrays, for which
        ``np.isscalar`` is False) return a plain ``float``; array inputs
        return an array of matching shape.
        """
        t = np.asarray(times, dtype=float)
        value = logistic_value(
            t - self.initial_time,
            self.growth_rate,
            self.carrying_capacity,
            self.initial_value,
        )
        if np.ndim(times) == 0:
            return float(value)
        return value

    def derivative(self, times: "float | np.ndarray") -> "float | np.ndarray":
        """dN/dt evaluated along the analytic trajectory."""
        n = self(times)
        return self.growth_rate * n * (1.0 - n / self.carrying_capacity)

    @property
    def inflection_time(self) -> float:
        """Time at which the trajectory crosses K/2 (fastest growth)."""
        ratio = self.carrying_capacity / self.initial_value - 1.0
        if ratio <= 0:
            return self.initial_time
        return self.initial_time + np.log(ratio) / self.growth_rate


def solve_logistic_ode(
    initial_value: "float | np.ndarray",
    times: Sequence[float],
    growth_rate: "float | np.ndarray | Callable[[float], float]",
    carrying_capacity: "float | np.ndarray",
    steps_per_unit: int = 200,
) -> np.ndarray:
    """Numerically integrate ``N' = r(t) N (1 - N/K)`` with RK4.

    Unlike :class:`LogisticCurve`, this supports a time-dependent growth rate
    -- which the paper uses (``r(t) = 1.4 e^{-1.5 (t-1)} + 0.25``).

    The integration is vectorised over a trailing batch axis: passing arrays
    for ``initial_value`` / ``growth_rate`` / ``carrying_capacity`` (any
    broadcast-compatible mix) advances every trajectory in one RK4 sweep, so
    e.g. all distance groups of the logistic baseline integrate together
    instead of in a Python-level per-distance loop.

    Parameters
    ----------
    initial_value:
        ``N`` at ``times[0]``; a scalar, or an array of shape ``(batch,)``.
    times:
        Non-decreasing output times; the first entry is the initial time.
    growth_rate:
        Constant ``r`` (scalar or per-trajectory array) or callable ``r(t)``
        returning a scalar or a per-trajectory array.
    carrying_capacity:
        ``K`` > 0; a scalar, or an array of shape ``(batch,)``.
    steps_per_unit:
        Internal RK4 steps per unit of time.

    Returns
    -------
    numpy.ndarray
        ``N`` evaluated at each entry of ``times``: shape ``(n_times,)`` for
        all-scalar inputs, ``(n_times, batch)`` otherwise.
    """
    capacity = np.asarray(carrying_capacity, dtype=float)
    if np.any(capacity <= 0):
        raise ValueError(f"carrying capacity must be positive, got {carrying_capacity}")
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ValueError("at least one output time is required")
    if np.any(np.diff(times) < 0):
        raise ValueError("output times must be non-decreasing")
    if steps_per_unit < 1:
        raise ValueError("steps_per_unit must be >= 1")

    initial = np.asarray(initial_value, dtype=float)
    if callable(growth_rate):
        constant_rate = None
        # Probe the callable once so a per-trajectory rate array widens the
        # batch even when the other inputs are scalars.
        rate_shape = np.asarray(growth_rate(float(times[0])), dtype=float).shape
    else:
        constant_rate = np.asarray(growth_rate, dtype=float)
        rate_shape = constant_rate.shape
    batch_shape = np.broadcast_shapes(initial.shape, capacity.shape, rate_shape)
    n = np.broadcast_to(initial, batch_shape).astype(float).copy()
    capacity = np.broadcast_to(capacity, batch_shape).astype(float)

    def rate(t: float) -> np.ndarray:
        if constant_rate is not None:
            return constant_rate
        return np.asarray(growth_rate(t), dtype=float)

    def rhs(values: np.ndarray, t: float) -> np.ndarray:
        return rate(t) * values * (1.0 - values / capacity)

    values = np.empty((times.size,) + batch_shape)
    values[0] = n
    for i in range(1, times.size):
        t0, t1 = times[i - 1], times[i]
        span = t1 - t0
        if span == 0:
            values[i] = n
            continue
        steps = max(1, int(np.ceil(span * steps_per_unit)))
        dt = span / steps
        t = t0
        for _ in range(steps):
            k1 = rhs(n, t)
            k2 = rhs(n + 0.5 * dt * k1, t + 0.5 * dt)
            k3 = rhs(n + 0.5 * dt * k2, t + 0.5 * dt)
            k4 = rhs(n + dt * k3, t + dt)
            n = n + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            t += dt
        values[i] = n
    return values


def fit_logistic_curve(
    times: Sequence[float],
    observations: Sequence[float],
    carrying_capacity_bounds: tuple[float, float] = (1e-6, 1e6),
    growth_rate_bounds: tuple[float, float] = (1e-6, 50.0),
) -> LogisticCurve:
    """Least-squares fit of an analytic logistic curve to observations.

    The initial value is anchored to the first observation (as the paper
    anchors its prediction to the hour-1 snapshot) and ``(r, K)`` are fitted
    with ``scipy.optimize.curve_fit`` within the given bounds.

    Raises
    ------
    ValueError
        If fewer than three observations are provided or the first
        observation is not strictly positive.
    """
    from scipy.optimize import curve_fit

    times = np.asarray(times, dtype=float)
    observations = np.asarray(observations, dtype=float)
    if times.size != observations.size:
        raise ValueError("times and observations must have equal length")
    if times.size < 3:
        raise ValueError("at least three observations are required to fit r and K")
    if observations[0] <= 0:
        raise ValueError("the first observation must be strictly positive")

    initial_value = float(observations[0])
    initial_time = float(times[0])

    def model(t: np.ndarray, r: float, k: float) -> np.ndarray:
        curve = LogisticCurve(r, k, initial_value, initial_time)
        return np.asarray(curve(t), dtype=float)

    max_obs = float(observations.max())
    k_guess = max(max_obs * 1.2, initial_value * 2.0)
    r_guess = 0.5
    lower = (growth_rate_bounds[0], max(carrying_capacity_bounds[0], max_obs))
    upper = (growth_rate_bounds[1], carrying_capacity_bounds[1])
    k_guess = min(max(k_guess, lower[1] * 1.0001), upper[1])
    popt, _ = curve_fit(
        model,
        times,
        observations,
        p0=(r_guess, k_guess),
        bounds=(lower, upper),
        maxfev=20000,
    )
    return LogisticCurve(float(popt[0]), float(popt[1]), initial_value, initial_time)


def fit_logistic_curves(
    times: Sequence[float],
    observations: np.ndarray,
    carrying_capacity_bounds: tuple[float, float] = (1e-6, 1e6),
    growth_rate_bounds: tuple[float, float] = (1e-6, 50.0),
) -> "list[LogisticCurve]":
    """Fit an independent analytic logistic curve to every column at once.

    The per-column problems are independent, so stacking them into one
    bounded least-squares solve (parameters ``[r_1..r_B, K_1..K_B]``,
    residuals concatenated over columns) finds the same optima as fitting
    each column separately -- but with one vectorised model evaluation per
    optimiser step instead of a Python-level per-column loop.  This is the
    batched fitting path of the per-distance logistic baseline.

    Parameters
    ----------
    times:
        Shared observation times, shape ``(n_times,)``.
    observations:
        One trajectory per column, shape ``(n_times, batch)``.  Every
        column's first observation must be strictly positive (it anchors that
        curve's initial value, as in :func:`fit_logistic_curve`).
    carrying_capacity_bounds, growth_rate_bounds:
        Shared ``(lower, upper)`` bounds applied to every column.

    Returns
    -------
    list[LogisticCurve]
        One fitted curve per column, in column order.
    """
    from repro.numerics.optimization import least_squares_fit

    times = np.asarray(times, dtype=float)
    observations = np.asarray(observations, dtype=float)
    if observations.ndim != 2 or observations.shape[0] != times.size:
        raise ValueError(
            f"observations must have shape (n_times={times.size}, batch), "
            f"got {observations.shape}"
        )
    if times.size < 3:
        raise ValueError("at least three observations are required to fit r and K")
    if np.any(observations[0] <= 0):
        raise ValueError("the first observation of every column must be strictly positive")

    batch = observations.shape[1]
    initial_values = observations[0].copy()
    initial_time = float(times[0])
    max_obs = observations.max(axis=0)

    lower_r = np.full(batch, growth_rate_bounds[0])
    upper_r = np.full(batch, growth_rate_bounds[1])
    lower_k = np.maximum(carrying_capacity_bounds[0], max_obs)
    upper_k = np.full(batch, carrying_capacity_bounds[1])
    k_guess = np.maximum(max_obs * 1.2, initial_values * 2.0)
    k_guess = np.clip(np.maximum(k_guess, lower_k * 1.0001), lower_k, upper_k)
    r_guess = np.full(batch, 0.5)

    time_offsets = (times - initial_time)[:, None]

    def residual(theta: np.ndarray) -> np.ndarray:
        rates = theta[:batch]
        capacities = theta[batch:]
        predicted = logistic_value(time_offsets, rates[None, :], capacities, initial_values)
        return (predicted - observations).ravel()

    fit = least_squares_fit(
        residual,
        initial_guess=np.concatenate([r_guess, k_guess]),
        bounds=(
            np.concatenate([lower_r, lower_k]),
            np.concatenate([upper_r, upper_k]),
        ),
        max_evaluations=20000,
    )
    if not fit.success:
        # Mirror curve_fit's contract (it raises on non-convergence) so
        # callers like the logistic baseline can fall back per column.
        raise RuntimeError(f"joint logistic fit did not converge: {fit.message}")
    rates = fit.parameters[:batch]
    capacities = fit.parameters[batch:]
    return [
        LogisticCurve(float(rates[j]), float(capacities[j]), float(initial_values[j]), initial_time)
        for j in range(batch)
    ]
