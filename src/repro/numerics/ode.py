"""The scalar logistic equation.

The growth process of the DL model -- information spreading among users at the
*same* distance from the source -- is the classic logistic model

    N' = r N (1 - N / K)

whose analytic solution through ``N(t0) = N0`` is

    N(t) = K / (1 + (K/N0 - 1) exp(-r (t - t0)))

This module provides the analytic solution, a numeric solver for
time-dependent growth rates, and least-squares fitting of (r, K) to observed
trajectories.  The same code powers the temporal-only baseline
(:mod:`repro.baselines.logistic`), which fits an independent logistic curve at
every distance and therefore ignores the spatial diffusion term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class LogisticCurve:
    """Analytic logistic trajectory ``N(t)``.

    Attributes
    ----------
    growth_rate:
        Intrinsic growth rate ``r``.
    carrying_capacity:
        Carrying capacity ``K`` (> 0), the upper bound of the trajectory.
    initial_value:
        ``N(t0)``; must satisfy ``0 < initial_value``.
    initial_time:
        Reference time ``t0``.
    """

    growth_rate: float
    carrying_capacity: float
    initial_value: float
    initial_time: float = 0.0

    def __post_init__(self) -> None:
        if self.carrying_capacity <= 0:
            raise ValueError(f"carrying capacity must be positive, got {self.carrying_capacity}")
        if self.initial_value <= 0:
            raise ValueError(
                f"initial value must be positive for the analytic solution, got {self.initial_value}"
            )

    def __call__(self, times: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate the trajectory at one or many times."""
        t = np.asarray(times, dtype=float)
        ratio = self.carrying_capacity / self.initial_value - 1.0
        value = self.carrying_capacity / (
            1.0 + ratio * np.exp(-self.growth_rate * (t - self.initial_time))
        )
        if np.isscalar(times):
            return float(value)
        return value

    def derivative(self, times: "float | np.ndarray") -> "float | np.ndarray":
        """dN/dt evaluated along the analytic trajectory."""
        n = self(times)
        return self.growth_rate * n * (1.0 - n / self.carrying_capacity)

    @property
    def inflection_time(self) -> float:
        """Time at which the trajectory crosses K/2 (fastest growth)."""
        ratio = self.carrying_capacity / self.initial_value - 1.0
        if ratio <= 0:
            return self.initial_time
        return self.initial_time + np.log(ratio) / self.growth_rate


def solve_logistic_ode(
    initial_value: float,
    times: Sequence[float],
    growth_rate: "float | Callable[[float], float]",
    carrying_capacity: float,
    steps_per_unit: int = 200,
) -> np.ndarray:
    """Numerically integrate ``N' = r(t) N (1 - N/K)`` with RK4.

    Unlike :class:`LogisticCurve`, this supports a time-dependent growth rate
    -- which the paper uses (``r(t) = 1.4 e^{-1.5 (t-1)} + 0.25``).

    Parameters
    ----------
    initial_value:
        ``N`` at ``times[0]``.
    times:
        Non-decreasing output times; the first entry is the initial time.
    growth_rate:
        Constant ``r`` or callable ``r(t)``.
    carrying_capacity:
        ``K`` > 0.
    steps_per_unit:
        Internal RK4 steps per unit of time.

    Returns
    -------
    numpy.ndarray
        ``N`` evaluated at each entry of ``times``.
    """
    if carrying_capacity <= 0:
        raise ValueError(f"carrying capacity must be positive, got {carrying_capacity}")
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ValueError("at least one output time is required")
    if np.any(np.diff(times) < 0):
        raise ValueError("output times must be non-decreasing")
    if steps_per_unit < 1:
        raise ValueError("steps_per_unit must be >= 1")

    def rate(t: float) -> float:
        return growth_rate(t) if callable(growth_rate) else float(growth_rate)

    def rhs(n: float, t: float) -> float:
        return rate(t) * n * (1.0 - n / carrying_capacity)

    values = np.empty(times.size)
    values[0] = initial_value
    n = float(initial_value)
    for i in range(1, times.size):
        t0, t1 = times[i - 1], times[i]
        span = t1 - t0
        if span == 0:
            values[i] = n
            continue
        steps = max(1, int(np.ceil(span * steps_per_unit)))
        dt = span / steps
        t = t0
        for _ in range(steps):
            k1 = rhs(n, t)
            k2 = rhs(n + 0.5 * dt * k1, t + 0.5 * dt)
            k3 = rhs(n + 0.5 * dt * k2, t + 0.5 * dt)
            k4 = rhs(n + dt * k3, t + dt)
            n += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            t += dt
        values[i] = n
    return values


def fit_logistic_curve(
    times: Sequence[float],
    observations: Sequence[float],
    carrying_capacity_bounds: tuple[float, float] = (1e-6, 1e6),
    growth_rate_bounds: tuple[float, float] = (1e-6, 50.0),
) -> LogisticCurve:
    """Least-squares fit of an analytic logistic curve to observations.

    The initial value is anchored to the first observation (as the paper
    anchors its prediction to the hour-1 snapshot) and ``(r, K)`` are fitted
    with ``scipy.optimize.curve_fit`` within the given bounds.

    Raises
    ------
    ValueError
        If fewer than three observations are provided or the first
        observation is not strictly positive.
    """
    from scipy.optimize import curve_fit

    times = np.asarray(times, dtype=float)
    observations = np.asarray(observations, dtype=float)
    if times.size != observations.size:
        raise ValueError("times and observations must have equal length")
    if times.size < 3:
        raise ValueError("at least three observations are required to fit r and K")
    if observations[0] <= 0:
        raise ValueError("the first observation must be strictly positive")

    initial_value = float(observations[0])
    initial_time = float(times[0])

    def model(t: np.ndarray, r: float, k: float) -> np.ndarray:
        curve = LogisticCurve(r, k, initial_value, initial_time)
        return np.asarray(curve(t), dtype=float)

    max_obs = float(observations.max())
    k_guess = max(max_obs * 1.2, initial_value * 2.0)
    r_guess = 0.5
    lower = (growth_rate_bounds[0], max(carrying_capacity_bounds[0], max_obs))
    upper = (growth_rate_bounds[1], carrying_capacity_bounds[1])
    k_guess = min(max(k_guess, lower[1] * 1.0001), upper[1])
    popt, _ = curve_fit(
        model,
        times,
        observations,
        p0=(r_guess, k_guess),
        bounds=(lower, upper),
        maxfev=20000,
    )
    return LogisticCurve(float(popt[0]), float(popt[1]), initial_value, initial_time)
