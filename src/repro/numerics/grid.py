"""Uniform spatial grids over the distance axis.

The DL model is posed on a one-dimensional interval ``[l, L]`` of distances
from the information source.  In Digg-like networks distance is an integer
(friendship hops 1..m, or one of five shared-interest groups), but the PDE is
solved on a refined continuous grid and then sampled back at the integer
distances, exactly as the paper does ("the density is only meaningful when
distance is integer").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UniformGrid:
    """A uniform one-dimensional grid on ``[lower, upper]``.

    Parameters
    ----------
    lower:
        Left endpoint ``l`` (smallest distance, typically 1).
    upper:
        Right endpoint ``L`` (largest distance, typically 5 or 6).
    num_points:
        Number of grid nodes, including both endpoints.  Must be >= 2.
    """

    lower: float
    upper: float
    num_points: int

    def __post_init__(self) -> None:
        if self.num_points < 2:
            raise ValueError(f"num_points must be >= 2, got {self.num_points}")
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise ValueError("grid endpoints must be finite")
        if self.upper <= self.lower:
            raise ValueError(
                f"upper ({self.upper}) must be strictly greater than lower ({self.lower})"
            )

    @property
    def spacing(self) -> float:
        """Distance ``h`` between adjacent nodes."""
        return (self.upper - self.lower) / (self.num_points - 1)

    @property
    def nodes(self) -> np.ndarray:
        """All grid nodes as a 1-D array of length ``num_points``."""
        return np.linspace(self.lower, self.upper, self.num_points)

    @property
    def length(self) -> float:
        """Length of the interval ``upper - lower``."""
        return self.upper - self.lower

    def __len__(self) -> int:
        return self.num_points

    def contains(self, x: float) -> bool:
        """Return ``True`` when ``x`` lies inside ``[lower, upper]``."""
        return bool(self.lower <= x <= self.upper)

    def index_of(self, x: float) -> int:
        """Return the index of the grid node closest to ``x``.

        Raises
        ------
        ValueError
            If ``x`` lies outside the grid.
        """
        if not self.contains(x):
            raise ValueError(f"x={x} is outside the grid [{self.lower}, {self.upper}]")
        return int(round((x - self.lower) / self.spacing))

    def indices_of(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`index_of` for an array of positions."""
        xs = np.asarray(xs, dtype=float)
        outside = (xs < self.lower - 1e-12) | (xs > self.upper + 1e-12)
        if np.any(outside):
            bad = xs[outside]
            raise ValueError(f"positions {bad} are outside the grid [{self.lower}, {self.upper}]")
        return np.rint((xs - self.lower) / self.spacing).astype(int)

    def refine(self, factor: int) -> "UniformGrid":
        """Return a new grid with ``factor`` times as many intervals."""
        if factor < 1:
            raise ValueError(f"refinement factor must be >= 1, got {factor}")
        new_points = (self.num_points - 1) * factor + 1
        return UniformGrid(self.lower, self.upper, new_points)

    @classmethod
    def from_integer_distances(
        cls, distances: "np.ndarray | list[int]", points_per_unit: int = 10
    ) -> "UniformGrid":
        """Build a refined grid spanning a set of integer distances.

        The paper observes densities at integer distances 1..m and solves the
        PDE on a refined grid covering the same interval.

        Parameters
        ----------
        distances:
            Iterable of integer distances; only min and max matter.
        points_per_unit:
            Number of grid intervals per unit of distance.
        """
        distances = np.asarray(list(distances), dtype=float)
        if distances.size < 2:
            raise ValueError("at least two distinct distances are required")
        lower = float(distances.min())
        upper = float(distances.max())
        if upper <= lower:
            raise ValueError("distances must span a non-degenerate interval")
        num_points = int(round((upper - lower) * points_per_unit)) + 1
        return cls(lower, upper, num_points)
