"""Cubic-spline interpolation implemented from scratch.

The paper constructs the initial density function ``phi(x)`` by cubic-spline
interpolation of the discrete density observations at hour ``t = 1`` and then
flattens both ends so that ``phi'(l) = phi'(L) = 0`` (the Neumann boundary
condition of the DL model).  This module provides:

* :class:`CubicSpline` -- a piecewise-cubic interpolant with either *natural*
  (zero second derivative) or *clamped* (prescribed first derivative) end
  conditions, built by solving the classic tridiagonal system for the knot
  second derivatives.
* :class:`FlatEndDensityInterpolator` -- the paper's phi construction: clamped
  spline with zero slope at both ends, guaranteed twice continuously
  differentiable on the interior and flat at the boundaries.

Only ``numpy`` is used; scipy's spline is cross-checked in the test-suite but
never required at runtime.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

EndCondition = Literal["natural", "clamped"]


def _solve_tridiagonal(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve a tridiagonal linear system with the Thomas algorithm.

    Parameters
    ----------
    lower:
        Sub-diagonal of length ``n`` (``lower[0]`` is unused).
    diag:
        Main diagonal of length ``n``.
    upper:
        Super-diagonal of length ``n`` (``upper[-1]`` is unused).
    rhs:
        Right-hand side of length ``n``.
    """
    n = diag.size
    c_prime = np.zeros(n)
    d_prime = np.zeros(n)
    c_prime[0] = upper[0] / diag[0]
    d_prime[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * c_prime[i - 1]
        if abs(denom) < 1e-15:
            raise np.linalg.LinAlgError("tridiagonal system is singular")
        c_prime[i] = upper[i] / denom
        d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom
    solution = np.zeros(n)
    solution[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        solution[i] = d_prime[i] - c_prime[i] * solution[i + 1]
    return solution


class CubicSpline:
    """Piecewise cubic interpolant through ``(x_i, y_i)`` knots.

    On each interval ``[x_i, x_{i+1}]`` the spline is represented as::

        S_i(x) = a_i + b_i * dx + c_i * dx**2 + d_i * dx**3,   dx = x - x_i

    The interpolant is C2-continuous across knots, which satisfies the DL
    model's requirement that phi be twice continuously differentiable.

    Parameters
    ----------
    knots:
        Strictly increasing knot locations.
    values:
        Function values at the knots.
    end_condition:
        ``"natural"`` sets the second derivative to zero at both ends;
        ``"clamped"`` prescribes the first derivatives ``start_slope`` and
        ``end_slope``.
    start_slope, end_slope:
        First derivatives at the left/right end, used only for clamped
        splines.  The paper's phi uses ``0.0`` at both ends.
    """

    def __init__(
        self,
        knots: Sequence[float],
        values: Sequence[float],
        end_condition: EndCondition = "natural",
        start_slope: float = 0.0,
        end_slope: float = 0.0,
    ) -> None:
        x = np.asarray(knots, dtype=float)
        y = np.asarray(values, dtype=float)
        if x.ndim != 1 or y.ndim != 1:
            raise ValueError("knots and values must be one-dimensional")
        if x.size != y.size:
            raise ValueError(f"knots ({x.size}) and values ({y.size}) must have equal length")
        if x.size < 2:
            raise ValueError("at least two knots are required")
        if np.any(np.diff(x) <= 0):
            raise ValueError("knots must be strictly increasing")
        if end_condition not in ("natural", "clamped"):
            raise ValueError(f"unknown end condition: {end_condition!r}")

        self._x = x
        self._y = y
        self._end_condition: EndCondition = end_condition
        self._start_slope = float(start_slope)
        self._end_slope = float(end_slope)
        self._second_derivatives = self._compute_second_derivatives()
        self._coefficients = self._compute_coefficients()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _compute_second_derivatives(self) -> np.ndarray:
        """Solve the tridiagonal system for the knot second derivatives."""
        x, y = self._x, self._y
        n = x.size
        h = np.diff(x)

        if n == 2:
            # A two-knot spline degenerates to a cubic determined entirely by
            # the end conditions; natural -> straight line.
            if self._end_condition == "natural":
                return np.zeros(2)

        lower = np.zeros(n)
        diag = np.zeros(n)
        upper = np.zeros(n)
        rhs = np.zeros(n)

        # Interior rows: the standard C2 continuity conditions.
        for i in range(1, n - 1):
            lower[i] = h[i - 1]
            diag[i] = 2.0 * (h[i - 1] + h[i])
            upper[i] = h[i]
            rhs[i] = 6.0 * ((y[i + 1] - y[i]) / h[i] - (y[i] - y[i - 1]) / h[i - 1])

        if self._end_condition == "natural":
            diag[0] = 1.0
            upper[0] = 0.0
            rhs[0] = 0.0
            diag[-1] = 1.0
            lower[-1] = 0.0
            rhs[-1] = 0.0
        else:  # clamped
            diag[0] = 2.0 * h[0]
            upper[0] = h[0]
            rhs[0] = 6.0 * ((y[1] - y[0]) / h[0] - self._start_slope)
            diag[-1] = 2.0 * h[-1]
            lower[-1] = h[-1]
            rhs[-1] = 6.0 * (self._end_slope - (y[-1] - y[-2]) / h[-1])

        return _solve_tridiagonal(lower, diag, upper, rhs)

    def _compute_coefficients(self) -> np.ndarray:
        """Convert knot second derivatives into per-interval coefficients."""
        x, y, m = self._x, self._y, self._second_derivatives
        h = np.diff(x)
        n_intervals = h.size
        coefficients = np.zeros((n_intervals, 4))
        for i in range(n_intervals):
            a = y[i]
            b = (y[i + 1] - y[i]) / h[i] - h[i] * (2.0 * m[i] + m[i + 1]) / 6.0
            c = m[i] / 2.0
            d = (m[i + 1] - m[i]) / (6.0 * h[i])
            coefficients[i] = (a, b, c, d)
        return coefficients

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    @property
    def knots(self) -> np.ndarray:
        """Knot locations (copy)."""
        return self._x.copy()

    @property
    def values(self) -> np.ndarray:
        """Knot values (copy)."""
        return self._y.copy()

    def _interval_index(self, x: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._x, x, side="right") - 1
        return np.clip(idx, 0, self._x.size - 2)

    def __call__(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate the spline at ``x`` (scalar or array)."""
        return self.evaluate(x, derivative=0)

    def evaluate(self, x: "float | np.ndarray", derivative: int = 0) -> "float | np.ndarray":
        """Evaluate the spline or one of its derivatives.

        Parameters
        ----------
        x:
            Evaluation point(s).  Points outside the knot range are evaluated
            by extending the first/last cubic piece.
        derivative:
            0 for the value, 1 for the first derivative, 2 for the second,
            3 for the third.  Higher derivatives are identically zero.
        """
        if derivative < 0:
            raise ValueError("derivative order must be non-negative")
        scalar = np.isscalar(x)
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        idx = self._interval_index(xs)
        dx = xs - self._x[idx]
        a, b, c, d = (self._coefficients[idx, k] for k in range(4))

        if derivative == 0:
            result = a + dx * (b + dx * (c + dx * d))
        elif derivative == 1:
            result = b + dx * (2.0 * c + 3.0 * d * dx)
        elif derivative == 2:
            result = 2.0 * c + 6.0 * d * dx
        elif derivative == 3:
            result = 6.0 * d
        else:
            result = np.zeros_like(xs)

        return float(result[0]) if scalar else result

    def derivative(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """First derivative at ``x``."""
        return self.evaluate(x, derivative=1)

    def second_derivative(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """Second derivative at ``x``."""
        return self.evaluate(x, derivative=2)


class FlatEndDensityInterpolator:
    """The paper's initial-density construction phi(x).

    Section II-D of the paper constructs phi from the hour-1 density snapshot
    in three steps:

    1. cubic-spline interpolation through the discrete ``(distance, density)``
       observations (requirement i: twice continuously differentiable),
    2. flatten the two ends so that ``phi'(l) = phi'(L) = 0`` (requirement ii),
    3. check the lower-solution inequality ``d*phi'' + r*phi*(1 - phi/K) >= 0``
       (requirement iii) -- done in :mod:`repro.core.initial_density`.

    This class performs steps 1 and 2 by building a *clamped* cubic spline with
    zero end slopes, which is mathematically equivalent to interpolating and
    then flattening the ends while keeping C2 continuity in the interior.

    Negative interpolated values (possible with overshooting splines) are
    clipped to zero, since a density can never be negative.
    """

    def __init__(self, distances: Sequence[float], densities: Sequence[float]) -> None:
        densities = np.asarray(densities, dtype=float)
        if np.any(densities < 0):
            raise ValueError("densities must be non-negative")
        if np.all(densities == 0):
            raise ValueError("initial densities must not be identically zero")
        self._spline = CubicSpline(
            distances, densities, end_condition="clamped", start_slope=0.0, end_slope=0.0
        )

    @property
    def spline(self) -> CubicSpline:
        """The underlying clamped cubic spline."""
        return self._spline

    @property
    def lower(self) -> float:
        """Left end ``l`` of the distance interval."""
        return float(self._spline.knots[0])

    @property
    def upper(self) -> float:
        """Right end ``L`` of the distance interval."""
        return float(self._spline.knots[-1])

    def __call__(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate phi(x), clipped to be non-negative."""
        value = self._spline(x)
        if np.isscalar(x):
            return max(0.0, float(value))
        return np.maximum(0.0, value)

    def derivative(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """phi'(x) of the un-clipped spline."""
        return self._spline.derivative(x)

    def second_derivative(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """phi''(x) of the un-clipped spline."""
        return self._spline.second_derivative(x)

    def sample(self, grid_nodes: np.ndarray) -> np.ndarray:
        """Evaluate phi on a full grid, returning a non-negative array."""
        return np.asarray(self(np.asarray(grid_nodes, dtype=float)), dtype=float)
