"""Finite-difference spatial operators with Neumann (no-flux) boundaries.

The DL model imposes ``dI/dx = 0`` at both ends of the distance interval
("no flux of information across the boundaries").  The standard second-order
discretisation of the 1-D Laplacian with Neumann conditions uses ghost points
mirrored across the boundary, which is equivalent to the matrix

    [[-2  2  0 ...]
     [ 1 -2  1 ...]
     [ ...        ]
     [ ...  2 -2 ]] / h**2

This module provides both a dense matrix form (used by the Crank-Nicolson
integrator) and a matrix-free application (used by explicit integrators and
the scipy method-of-lines backend).
"""

from __future__ import annotations

import numpy as np

from repro.numerics.grid import UniformGrid


def laplacian_matrix(num_points: int, spacing: float) -> np.ndarray:
    """Dense second-order Neumann Laplacian matrix.

    Parameters
    ----------
    num_points:
        Number of grid nodes (>= 2).
    spacing:
        Grid spacing ``h`` (> 0).

    Returns
    -------
    numpy.ndarray
        A ``(num_points, num_points)`` matrix ``A`` such that ``A @ u``
        approximates ``u_xx`` with mirrored ghost points at the boundaries.
    """
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    matrix = np.zeros((num_points, num_points))
    inv_h2 = 1.0 / (spacing * spacing)
    for i in range(1, num_points - 1):
        matrix[i, i - 1] = inv_h2
        matrix[i, i] = -2.0 * inv_h2
        matrix[i, i + 1] = inv_h2
    # Neumann boundaries via mirrored ghost nodes: u_{-1} = u_{1}, u_{n} = u_{n-2}.
    matrix[0, 0] = -2.0 * inv_h2
    matrix[0, 1] = 2.0 * inv_h2
    matrix[-1, -1] = -2.0 * inv_h2
    matrix[-1, -2] = 2.0 * inv_h2
    return matrix


def laplacian_tridiagonal(
    num_points: int, spacing: float
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Tridiagonal ``(sub, diag, super)`` bands of the Neumann Laplacian.

    The same entries as :func:`laplacian_matrix` without the O(n^2) zeros:
    ``sub`` holds the subdiagonal (length ``num_points - 1``), ``diag`` the
    main diagonal and ``super`` the superdiagonal.  The mirrored ghost nodes
    of the Neumann boundaries double the first superdiagonal and the last
    subdiagonal entry, which is what makes the matrix nonsymmetric in the
    boundary rows.
    """
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    inv_h2 = 1.0 / (spacing * spacing)
    diag = np.full(num_points, -2.0 * inv_h2)
    sub = np.full(num_points - 1, inv_h2)
    sup = np.full(num_points - 1, inv_h2)
    sup[0] = 2.0 * inv_h2
    sub[-1] = 2.0 * inv_h2
    return sub, diag, sup


def second_derivative(values: np.ndarray, spacing: float) -> np.ndarray:
    """Matrix-free second derivative with Neumann boundary conditions.

    Equivalent to ``laplacian_matrix(len(values), spacing) @ values`` but
    without building the matrix.  ``values`` may be one state vector ``(n,)``
    or a block of batch columns ``(n, k)``; the operator is applied along the
    first axis either way.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim not in (1, 2):
        raise ValueError("values must be one- or two-dimensional")
    if values.shape[0] < 2:
        raise ValueError("at least two values are required")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    result = np.empty_like(values)
    inv_h2 = 1.0 / (spacing * spacing)
    result[1:-1] = (values[2:] - 2.0 * values[1:-1] + values[:-2]) * inv_h2
    result[0] = 2.0 * (values[1] - values[0]) * inv_h2
    result[-1] = 2.0 * (values[-2] - values[-1]) * inv_h2
    return result


class NeumannLaplacian:
    """Reusable Neumann Laplacian bound to a specific grid.

    Caches the dense matrix (needed by implicit integrators) and exposes a
    fast matrix-free :meth:`apply` for explicit stepping.
    """

    def __init__(self, grid: UniformGrid) -> None:
        self._grid = grid
        self._matrix: "np.ndarray | None" = None

    @property
    def grid(self) -> UniformGrid:
        """The grid this operator is bound to."""
        return self._grid

    @property
    def matrix(self) -> np.ndarray:
        """Dense matrix representation, shared through the operator cache.

        The returned array is read-only because it is shared process-wide via
        :mod:`repro.numerics.operator_cache`; copy it before modifying.
        """
        if self._matrix is None:
            from repro.numerics.operator_cache import neumann_laplacian_matrix

            self._matrix = neumann_laplacian_matrix(
                self._grid.num_points, self._grid.spacing
            )
        return self._matrix

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Apply the operator to a state vector without forming the matrix."""
        if len(values) != self._grid.num_points:
            raise ValueError(
                f"state vector has {len(values)} entries, expected {self._grid.num_points}"
            )
        return second_derivative(values, self._grid.spacing)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.apply(values)
