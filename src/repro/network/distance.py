"""Friendship-hop distance: BFS shortest paths in the follower graph.

The paper's first distance metric is "the length of the shortest path,
measured by the number of hops from one user to another in the social network
graph", with distance measured from the story's initiator along the direction
of information flow (initiator -> followers -> their followers -> ...).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable, Mapping

from repro.network.graph import SocialGraph


def breadth_first_distances(
    graph: SocialGraph, source: int, max_distance: "int | None" = None
) -> dict[int, int]:
    """Shortest hop distance from ``source`` to every reachable user.

    Parameters
    ----------
    graph:
        The follower graph; edges point in the direction of information flow.
    source:
        User id of the story initiator.
    max_distance:
        If given, the search stops after this many hops (users further away
        are omitted from the result).

    Returns
    -------
    dict
        Mapping user id -> hop distance; the source itself maps to 0.
    """
    if not graph.has_user(source):
        raise KeyError(f"source user {source} is not in the graph")
    if max_distance is not None and max_distance < 0:
        raise ValueError(f"max_distance must be non-negative, got {max_distance}")

    distances: dict[int, int] = {source: 0}
    frontier: deque[int] = deque([source])
    while frontier:
        user = frontier.popleft()
        current = distances[user]
        if max_distance is not None and current >= max_distance:
            continue
        for follower in graph.followers(user):
            if follower not in distances:
                distances[follower] = current + 1
                frontier.append(follower)
    return distances


def friendship_hop_distances(
    graph: SocialGraph, source: int, max_distance: "int | None" = None
) -> dict[int, int]:
    """Hop distances from the initiator to all *other* reachable users.

    Identical to :func:`breadth_first_distances` but the source itself is
    excluded, matching the paper's usage where distance-x groups U_x start at
    x = 1 (the initiator is not a member of any group).
    """
    distances = breadth_first_distances(graph, source, max_distance)
    return {user: hops for user, hops in distances.items() if user != source}


def distance_histogram(
    distances: Mapping[int, int], max_distance: "int | None" = None
) -> dict[int, int]:
    """Count how many users sit at each hop distance.

    Used to regenerate Figure 2 (distribution of users over distances 1..10).
    """
    counts = Counter(distances.values())
    if max_distance is None:
        return dict(sorted(counts.items()))
    return {d: counts.get(d, 0) for d in range(1, max_distance + 1)}


def group_users_by_distance(
    distances: Mapping[int, int], distance_values: "Iterable[int] | None" = None
) -> dict[int, set[int]]:
    """Partition users into the paper's distance groups U_x.

    Parameters
    ----------
    distances:
        Mapping user -> distance (hops or interest group).
    distance_values:
        Which distance values to include; defaults to every value present.

    Returns
    -------
    dict
        Mapping distance value -> set of user ids at that distance.
    """
    groups: dict[int, set[int]] = {}
    if distance_values is not None:
        groups = {int(d): set() for d in distance_values}
    for user, distance in distances.items():
        if distance_values is not None and distance not in groups:
            continue
        groups.setdefault(int(distance), set()).add(user)
    return groups
