"""Shared-interest distance (Equation 1 of the paper).

For two users ``a`` and ``b`` with voted-content sets ``Ca`` and ``Cb``::

    d(a, b) = 1 - |Ca ∩ Cb| / |Ca ∪ Cb|

so users with identical voting histories are at distance 0 and users with no
overlap are at distance 1.  To make the spatial axis comparable with the
friendship-hop metric, the paper sorts users into **five disjoint groups** by
their interest distance from the initiator and labels the groups 1..5; those
group labels are then used as the distance coordinate x of the DL model.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def interest_distance(contents_a: "set[int] | frozenset[int]", contents_b: "set[int] | frozenset[int]") -> float:
    """Jaccard-style interest distance between two users (Equation 1).

    Both arguments are the sets of content ids (stories) each user has
    interacted with.  When both sets are empty the users share no observable
    interests and the distance is defined as 1.0 (maximally distant).
    """
    union = len(contents_a | contents_b)
    if union == 0:
        return 1.0
    intersection = len(contents_a & contents_b)
    return 1.0 - intersection / union


def interest_distances_from_source(
    source: int, user_contents: Mapping[int, "set[int] | frozenset[int]"]
) -> dict[int, float]:
    """Interest distance from the initiator to every other user.

    Parameters
    ----------
    source:
        Initiator user id; must be present in ``user_contents``.
    user_contents:
        Mapping user id -> set of content ids the user has voted on.

    Returns
    -------
    dict
        Mapping user id -> interest distance in [0, 1]; the source is omitted.
    """
    if source not in user_contents:
        raise KeyError(f"source user {source} has no recorded interests")
    source_contents = user_contents[source]
    return {
        user: interest_distance(source_contents, contents)
        for user, contents in user_contents.items()
        if user != source
    }


def interest_distance_groups(
    distances: Mapping[int, float],
    num_groups: int = 5,
    boundaries: "Sequence[float] | None" = None,
) -> dict[int, int]:
    """Bin continuous interest distances into discrete groups 1..num_groups.

    The paper "classif[ies] the users into five disjoint groups based on their
    interest ranges" and assigns values 1-5, but does not publish the range
    boundaries.  Two binning strategies are supported:

    * ``boundaries`` given -- fixed group edges: group g contains distances in
      ``(boundaries[g-1], boundaries[g]]`` with ``boundaries[0]`` implicit 0.
    * ``boundaries`` omitted -- equal-population (rank / quantile) binning:
      users are sorted by interest distance and split into ``num_groups``
      contiguous chunks of (nearly) equal size.  Ties are broken by user id,
      which keeps the assignment deterministic and guarantees that no group
      is empty even when many users share the same distance (e.g. the large
      block of users at distance exactly 1.0 who share no content with the
      source).  The group label still increases monotonically with the
      interest distance.

    Returns
    -------
    dict
        Mapping user id -> group label in ``{1, ..., num_groups}``.
    """
    if num_groups < 1:
        raise ValueError(f"num_groups must be >= 1, got {num_groups}")
    if not distances:
        return {}

    users = list(distances.keys())
    values = np.asarray([distances[u] for u in users], dtype=float)
    if np.any(values < 0) or np.any(values > 1 + 1e-12):
        raise ValueError("interest distances must lie in [0, 1]")

    if boundaries is not None:
        edges = np.asarray(list(boundaries), dtype=float)
        if edges.size != num_groups:
            raise ValueError(
                f"expected {num_groups} boundary values (upper edges), got {edges.size}"
            )
        if np.any(np.diff(edges) <= 0):
            raise ValueError("boundaries must be strictly increasing")
        groups: dict[int, int] = {}
        for user, value in zip(users, values):
            group = int(np.searchsorted(edges, value, side="left")) + 1
            groups[user] = min(group, num_groups)
        return groups

    # Equal-population binning with deterministic tie-breaking by user id.
    order = sorted(range(len(users)), key=lambda i: (values[i], users[i]))
    group_count = min(num_groups, len(users))
    assignments: dict[int, int] = {}
    for rank, index in enumerate(order):
        group = int(rank * group_count / len(users)) + 1
        assignments[users[index]] = min(group, num_groups)
    return assignments


def build_user_contents(votes: Iterable[tuple[int, int]]) -> dict[int, set[int]]:
    """Build the user -> voted-content-set mapping from (user, story) pairs.

    Convenience used by the dataset layer; the shared-interest metric needs
    each user's full voting history across the corpus, not just one story.
    """
    contents: dict[int, set[int]] = {}
    for user, story in votes:
        contents.setdefault(int(user), set()).add(int(story))
    return contents
