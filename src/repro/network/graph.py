"""Directed social graph container.

``SocialGraph`` models the Digg "following" relation: an edge ``u -> v``
means *v follows u*, i.e. when ``u`` votes for a story, ``v`` sees it in
their feed and may vote next.  Storing the edge in the direction of
information flow keeps cascade simulation and hop-distance computation
straightforward: information travels along out-edges.

The class is a thin adjacency-set implementation (no networkx dependency at
runtime) with conversion helpers to/from :class:`networkx.DiGraph` used by the
test-suite for cross-validation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class SocialGraph:
    """A directed graph of users connected by follow relationships.

    Nodes are integer user ids.  An edge ``(u, v)`` means information flows
    from ``u`` to ``v`` (``v`` follows ``u`` and sees ``u``'s votes).
    """

    def __init__(self, num_users: int = 0) -> None:
        if num_users < 0:
            raise ValueError(f"num_users must be non-negative, got {num_users}")
        self._successors: dict[int, set[int]] = {u: set() for u in range(num_users)}
        self._predecessors: dict[int, set[int]] = {u: set() for u in range(num_users)}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_user(self, user: "int | None" = None) -> int:
        """Add a user and return its id.

        If ``user`` is omitted the next unused integer id is assigned.
        Adding an existing user is a no-op.
        """
        if user is None:
            user = len(self._successors)
            while user in self._successors:
                user += 1
        if user < 0:
            raise ValueError(f"user ids must be non-negative, got {user}")
        if user not in self._successors:
            self._successors[user] = set()
            self._predecessors[user] = set()
        return user

    def add_follow(self, source: int, follower: int) -> None:
        """Record that ``follower`` follows ``source``.

        This creates the information-flow edge ``source -> follower``.
        Self-loops are rejected; duplicate edges are ignored.
        """
        if source == follower:
            raise ValueError("a user cannot follow themselves")
        self.add_user(source)
        self.add_user(follower)
        if follower not in self._successors[source]:
            self._successors[source].add(follower)
            self._predecessors[follower].add(source)
            self._num_edges += 1

    def add_edge(self, source: int, target: int) -> None:
        """Alias for :meth:`add_follow` using edge terminology."""
        self.add_follow(source, target)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]], num_users: int = 0) -> "SocialGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls(num_users)
        for source, target in edges:
            graph.add_follow(source, target)
        return graph

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        """Number of users (nodes)."""
        return len(self._successors)

    @property
    def num_edges(self) -> int:
        """Number of directed follow edges."""
        return self._num_edges

    def users(self) -> Iterator[int]:
        """Iterate over all user ids."""
        return iter(self._successors)

    def has_user(self, user: int) -> bool:
        """Return True if ``user`` exists in the graph."""
        return user in self._successors

    def has_edge(self, source: int, target: int) -> bool:
        """Return True if information flows directly from ``source`` to ``target``."""
        return source in self._successors and target in self._successors[source]

    def followers(self, user: int) -> frozenset[int]:
        """Users who follow ``user`` (receive information from them)."""
        self._require_user(user)
        return frozenset(self._successors[user])

    def followees(self, user: int) -> frozenset[int]:
        """Users that ``user`` follows (sources of information for them)."""
        self._require_user(user)
        return frozenset(self._predecessors[user])

    def out_degree(self, user: int) -> int:
        """Number of followers of ``user``."""
        self._require_user(user)
        return len(self._successors[user])

    def in_degree(self, user: int) -> int:
        """Number of users that ``user`` follows."""
        self._require_user(user)
        return len(self._predecessors[user])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over directed edges ``(source, target)``."""
        for source, targets in self._successors.items():
            for target in targets:
                yield (source, target)

    def _require_user(self, user: int) -> None:
        if user not in self._successors:
            raise KeyError(f"user {user} is not in the graph")

    # ------------------------------------------------------------------ #
    # Interop / export
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for validation/plotting)."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(self._successors)
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "SocialGraph":
        """Build a SocialGraph from a networkx directed graph."""
        graph = cls()
        for node in nx_graph.nodes():
            graph.add_user(int(node))
        for source, target in nx_graph.edges():
            graph.add_follow(int(source), int(target))
        return graph

    def adjacency_matrix(self) -> np.ndarray:
        """Dense adjacency matrix (rows: sources, columns: targets).

        Only suitable for small graphs (tests and examples); the cascade
        simulator never materialises this.
        """
        ids = sorted(self._successors)
        index = {user: i for i, user in enumerate(ids)}
        matrix = np.zeros((len(ids), len(ids)), dtype=np.int8)
        for source, target in self.edges():
            matrix[index[source], index[target]] = 1
        return matrix

    def subgraph(self, users: Iterable[int]) -> "SocialGraph":
        """Induced subgraph on the given users."""
        selected = set(users)
        graph = SocialGraph()
        for user in selected:
            if user in self._successors:
                graph.add_user(user)
        for source, target in self.edges():
            if source in selected and target in selected:
                graph.add_follow(source, target)
        return graph

    def __repr__(self) -> str:
        return f"SocialGraph(num_users={self.num_users}, num_edges={self.num_edges})"
