"""Synthetic follower-graph generators.

The Digg 2009 crawl used by the paper is not redistributable, so the
reproduction builds synthetic Digg-like follower graphs with the structural
features the paper's observations depend on:

* heavy-tailed follower counts (a few hub users with very many followers --
  popular submitters whose stories reach far),
* reciprocity (many follow relationships are mutual),
* strong triadic closure ("social triangles ... are very common"), which the
  paper uses to justify the intra-distance growth process,
* small diameter so that, from a well-connected initiator, "the majority of
  social network users have a distance of 2 to 5" with a peak around 3
  (Figure 2).

:func:`generate_digg_like_graph` is the main generator (preferential
attachment + reciprocity + triadic closure); the configuration-model and
small-world generators are used by ablation benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.graph import SocialGraph


@dataclass(frozen=True)
class DiggLikeGraphConfig:
    """Configuration for :func:`generate_digg_like_graph`.

    Attributes
    ----------
    num_users:
        Total number of users.
    initial_core:
        Size of the fully connected seed community (early adopters).
    follows_per_user:
        Average number of users each newcomer starts following.
    reciprocity_probability:
        Probability that a follow edge is reciprocated immediately.
    triadic_closure_probability:
        Probability that, after following user ``u``, a newcomer also follows
        a random followee of ``u`` (creates triangles).
    preferential_fraction:
        Probability that an individual follow targets a user chosen by
        follower-count preferential attachment (creating hubs); the remaining
        follows target a uniformly random *recent* user, which stretches the
        graph in depth so that the hop-distance histogram has the 1..10 range
        with a peak around 3 observed in the paper's Figure 2.
    recent_window:
        Size of the "recent users" pool used for non-preferential follows.
    seed:
        Seed for the random number generator.
    """

    num_users: int = 2000
    initial_core: int = 10
    follows_per_user: int = 3
    reciprocity_probability: float = 0.3
    triadic_closure_probability: float = 0.15
    preferential_fraction: float = 0.55
    recent_window: int = 150
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ValueError("num_users must be at least 2")
        if not 1 <= self.initial_core <= self.num_users:
            raise ValueError("initial_core must be between 1 and num_users")
        if self.follows_per_user < 1:
            raise ValueError("follows_per_user must be >= 1")
        if self.recent_window < 1:
            raise ValueError("recent_window must be >= 1")
        for name in (
            "reciprocity_probability",
            "triadic_closure_probability",
            "preferential_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def generate_digg_like_graph(
    config: "DiggLikeGraphConfig | None" = None,
    rng: "np.random.Generator | None" = None,
) -> SocialGraph:
    """Generate a Digg-like directed follower graph.

    The model is preferential attachment on *follower count*: newcomers
    preferentially follow users who already have many followers, which yields
    a heavy-tailed out-degree (audience size) distribution.  Reciprocation and
    triadic closure add the mutual-follow and triangle structure the paper
    relies on.

    Edges are oriented in the direction of information flow: ``u -> v`` means
    ``v`` follows ``u``.
    """
    config = config if config is not None else DiggLikeGraphConfig()
    rng = rng if rng is not None else np.random.default_rng(config.seed)

    graph = SocialGraph(config.num_users)

    # Seed community: a densely connected core of early adopters.
    core = list(range(config.initial_core))
    for u in core:
        for v in core:
            if u != v:
                graph.add_follow(u, v)

    # follower_count[u] = audience of u; drives preferential attachment.
    follower_count = np.zeros(config.num_users, dtype=float)
    for u in core:
        follower_count[u] = graph.out_degree(u)

    for newcomer in range(config.initial_core, config.num_users):
        existing = newcomer  # users 0..newcomer-1 already exist
        weights = follower_count[:existing] + 1.0
        probabilities = weights / weights.sum()
        num_follows = min(existing, max(1, int(rng.poisson(config.follows_per_user))))

        targets: list[int] = []
        seen: set[int] = set()
        recent_start = max(0, existing - config.recent_window)
        for _ in range(num_follows):
            if rng.random() < config.preferential_fraction:
                candidate = int(rng.choice(existing, p=probabilities))
            else:
                candidate = int(rng.integers(recent_start, existing))
            if candidate not in seen:
                seen.add(candidate)
                targets.append(candidate)

        for target in targets:
            target = int(target)
            # newcomer follows target: information flows target -> newcomer.
            graph.add_follow(target, newcomer)
            follower_count[target] += 1

            if rng.random() < config.reciprocity_probability:
                graph.add_follow(newcomer, target)
                follower_count[newcomer] += 1

            # Triadic closure: also follow someone the target follows.
            if rng.random() < config.triadic_closure_probability:
                followees = list(graph.followees(target))
                candidates = [f for f in followees if f != newcomer]
                if candidates:
                    friend_of_friend = int(candidates[int(rng.integers(len(candidates)))])
                    if not graph.has_edge(friend_of_friend, newcomer):
                        graph.add_follow(friend_of_friend, newcomer)
                        follower_count[friend_of_friend] += 1
    return graph


def generate_random_follower_graph(
    num_users: int,
    edge_probability: float,
    rng: "np.random.Generator | None" = None,
    seed: int = 0,
) -> SocialGraph:
    """Erdos-Renyi style directed graph (configuration baseline for ablations)."""
    if num_users < 2:
        raise ValueError("num_users must be at least 2")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    graph = SocialGraph(num_users)
    # Vectorised edge sampling to keep this usable for a few thousand users.
    mask = rng.random((num_users, num_users)) < edge_probability
    np.fill_diagonal(mask, False)
    sources, targets = np.nonzero(mask)
    for source, target in zip(sources, targets):
        graph.add_follow(int(source), int(target))
    return graph


def generate_small_world_graph(
    num_users: int,
    neighbours: int = 6,
    rewiring_probability: float = 0.1,
    rng: "np.random.Generator | None" = None,
    seed: int = 0,
) -> SocialGraph:
    """Watts-Strogatz style small-world graph, made directed by symmetrising.

    Used by ablation benchmarks to test the DL model's robustness to the
    underlying topology: a ring-lattice small world produces a much flatter
    distance histogram than the Digg-like generator.
    """
    if num_users < 4:
        raise ValueError("num_users must be at least 4")
    if neighbours % 2 != 0 or neighbours < 2:
        raise ValueError("neighbours must be an even integer >= 2")
    if neighbours >= num_users:
        raise ValueError("neighbours must be smaller than num_users")
    if not 0.0 <= rewiring_probability <= 1.0:
        raise ValueError("rewiring_probability must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng(seed)

    graph = SocialGraph(num_users)
    half = neighbours // 2
    for user in range(num_users):
        for offset in range(1, half + 1):
            neighbour = (user + offset) % num_users
            if rng.random() < rewiring_probability:
                neighbour = int(rng.integers(num_users))
                while neighbour == user or graph.has_edge(user, neighbour):
                    neighbour = int(rng.integers(num_users))
            graph.add_follow(user, neighbour)
            graph.add_follow(neighbour, user)
    return graph
