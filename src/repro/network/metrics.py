"""Structural metrics for sanity-checking synthetic follower graphs.

The paper characterises the Digg follower graph only indirectly (heavy
activity concentration, abundant social triangles, most users within 2-5 hops
of a popular initiator).  These metrics let the tests and the dataset builder
verify that the synthetic graphs used as the Digg substitute actually have
those properties.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.network.graph import SocialGraph


def degree_histogram(graph: SocialGraph, direction: str = "out") -> dict[int, int]:
    """Histogram of node degrees.

    Parameters
    ----------
    graph:
        The follower graph.
    direction:
        ``"out"`` counts followers (audience size), ``"in"`` counts followees.
    """
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    degree = graph.out_degree if direction == "out" else graph.in_degree
    counts = Counter(degree(user) for user in graph.users())
    return dict(sorted(counts.items()))


def reciprocity(graph: SocialGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Returns 0.0 for a graph without edges.
    """
    if graph.num_edges == 0:
        return 0.0
    reciprocated = sum(1 for source, target in graph.edges() if graph.has_edge(target, source))
    return reciprocated / graph.num_edges


def average_clustering_coefficient(graph: SocialGraph, sample_size: "int | None" = None,
                                   rng: "np.random.Generator | None" = None) -> float:
    """Average local clustering coefficient of the undirected projection.

    The paper motivates the intra-distance growth process with the abundance
    of "social triangles"; clustering of the undirected follow graph is the
    standard way to quantify that.  For large graphs a uniform node sample can
    be used.
    """
    users = list(graph.users())
    if not users:
        return 0.0
    if sample_size is not None and sample_size < len(users):
        rng = rng if rng is not None else np.random.default_rng(0)
        users = [users[i] for i in rng.choice(len(users), size=sample_size, replace=False)]

    # Undirected neighbourhoods.
    def neighbours(user: int) -> set[int]:
        return set(graph.followers(user)) | set(graph.followees(user))

    total = 0.0
    for user in users:
        nbrs = list(neighbours(user))
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        nbr_set = set(nbrs)
        for v in nbrs:
            links += len((set(graph.followers(v)) | set(graph.followees(v))) & nbr_set)
        # Each undirected neighbour-neighbour link counted twice.
        total += links / (k * (k - 1))
    return total / len(users)


def triad_count(graph: SocialGraph, sample_size: "int | None" = None,
                rng: "np.random.Generator | None" = None) -> int:
    """Count (possibly sampled) undirected triangles containing each sampled node.

    Returns the number of closed triads found over the sampled nodes; exact
    when ``sample_size`` is None (each triangle then counted three times and
    de-duplicated).
    """
    users = list(graph.users())
    sampled = users
    if sample_size is not None and sample_size < len(users):
        rng = rng if rng is not None else np.random.default_rng(0)
        sampled = [users[i] for i in rng.choice(len(users), size=sample_size, replace=False)]

    def neighbours(user: int) -> set[int]:
        return set(graph.followers(user)) | set(graph.followees(user))

    triangles: set[tuple[int, int, int]] = set()
    for user in sampled:
        nbrs = list(neighbours(user))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                a, b = nbrs[i], nbrs[j]
                if b in neighbours(a):
                    triangles.add(tuple(sorted((user, a, b))))
    return len(triangles)


def reachable_fraction(graph: SocialGraph, source: int, max_distance: "int | None" = None) -> float:
    """Fraction of users reachable from ``source`` along information-flow edges."""
    from repro.network.distance import breadth_first_distances

    if graph.num_users <= 1:
        return 0.0
    reachable = breadth_first_distances(graph, source, max_distance)
    return (len(reachable) - 1) / (graph.num_users - 1)
