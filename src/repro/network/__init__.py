"""Social-network substrate: directed follower graphs and distance metrics.

The paper defines the spatial dimension of the DL model through two distance
metrics on a directed follower graph (Digg's "following" relation):

* **friendship hops** -- shortest-path length from the story's initiator
  (:mod:`repro.network.distance`);
* **shared interests** -- a Jaccard-style distance over the sets of stories
  two users have voted on, binned into five groups
  (:mod:`repro.network.interests`).

:mod:`repro.network.graph` provides the directed-graph container,
:mod:`repro.network.generators` builds synthetic Digg-like follower graphs
(the substitution for the unavailable Digg 2009 crawl), and
:mod:`repro.network.metrics` computes the structural statistics used to
sanity-check the synthetic graphs against the paper's description (heavy-tail
degrees, strong triadic closure, most users within 2-5 hops of a popular
initiator).
"""

from repro.network.graph import SocialGraph
from repro.network.generators import (
    DiggLikeGraphConfig,
    generate_digg_like_graph,
    generate_random_follower_graph,
    generate_small_world_graph,
)
from repro.network.distance import (
    breadth_first_distances,
    distance_histogram,
    friendship_hop_distances,
)
from repro.network.interests import (
    interest_distance,
    interest_distance_groups,
    interest_distances_from_source,
)
from repro.network.metrics import (
    average_clustering_coefficient,
    degree_histogram,
    reciprocity,
    triad_count,
)

__all__ = [
    "SocialGraph",
    "DiggLikeGraphConfig",
    "generate_digg_like_graph",
    "generate_random_follower_graph",
    "generate_small_world_graph",
    "breadth_first_distances",
    "friendship_hop_distances",
    "distance_histogram",
    "interest_distance",
    "interest_distances_from_source",
    "interest_distance_groups",
    "degree_histogram",
    "average_clustering_coefficient",
    "reciprocity",
    "triad_count",
]
