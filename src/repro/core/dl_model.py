"""The Diffusive Logistic model (Equation 4 of the paper).

``DiffusiveLogisticModel`` combines

* the **growth process** -- logistic growth of the density within a distance
  group, ``r(t) * I * (1 - I / K)``, and
* the **diffusion process** -- Fick's-law spreading of information across
  distance groups, ``d * d2I/dx2`` with no-flux (Neumann) boundaries,

and integrates the resulting PDE forward from the initial density function
phi using the method-of-lines solver in :mod:`repro.numerics.pde_solver`.

The solution is returned as a :class:`DLSolution`, which can be sampled at the
integer distances where densities are actually meaningful in a social
network, and converted to a :class:`~repro.cascade.density.DensitySurface`
for direct comparison against observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.initial_density import InitialDensity
from repro.core.parameters import DLParameters
from repro.numerics.grid import UniformGrid
from repro.numerics.integrators import TimeIntegrator
from repro.numerics.pde_solver import (
    PDESolution,
    ReactionDiffusionProblem,
    ReactionDiffusionSolver,
)


@dataclass
class DLSolution:
    """A solved DL model: dense PDE solution plus the modelling context.

    Attributes
    ----------
    pde_solution:
        The underlying dense-in-space solution.
    parameters:
        The DL parameters used.
    initial_density:
        The phi the solve started from.
    """

    pde_solution: PDESolution
    parameters: DLParameters
    initial_density: InitialDensity

    @property
    def times(self) -> np.ndarray:
        """Output times of the solve."""
        return self.pde_solution.times.copy()

    @property
    def grid(self) -> UniformGrid:
        """The spatial grid the PDE was solved on."""
        return self.pde_solution.grid

    def density_at(self, distance: float, time: float) -> float:
        """Predicted density at one (distance, time) pair."""
        return float(self.pde_solution.sample([distance], time)[0])

    def profile(self, time: float, distances: "np.ndarray | None" = None) -> np.ndarray:
        """Predicted density over distance at one output time.

        ``distances`` defaults to the observation distances of phi (the
        integer distances where density is meaningful).
        """
        if distances is None:
            distances = self.initial_density.distances
        return self.pde_solution.sample(np.asarray(distances, dtype=float), time)

    def to_surface(self, distances: "np.ndarray | None" = None, unit: str = "percent") -> DensitySurface:
        """Sample the solution at integer distances into a DensitySurface."""
        if distances is None:
            distances = self.initial_density.distances
        distances = np.asarray(distances, dtype=float)
        values = self.pde_solution.sample_surface(distances)
        return DensitySurface(
            distances=distances,
            times=self.pde_solution.times.copy(),
            values=np.maximum(values, 0.0),
            group_sizes=np.ones(distances.size),
            unit=unit,
            metadata={"source": "dl_model_prediction"},
        )


class DiffusiveLogisticModel:
    """The paper's PDE model for spatio-temporal information diffusion.

    Parameters
    ----------
    parameters:
        The DL parameters (d, r, K).
    points_per_unit:
        Spatial resolution of the solve: grid intervals per unit of distance.
    integrator:
        Optional time integrator; defaults to Crank-Nicolson.
    max_step:
        Maximum internal time step in hours.
    backend:
        ``"internal"`` or ``"scipy"`` (see
        :class:`~repro.numerics.pde_solver.ReactionDiffusionSolver`).
    """

    def __init__(
        self,
        parameters: DLParameters,
        points_per_unit: int = 20,
        integrator: "TimeIntegrator | None" = None,
        max_step: float = 0.02,
        backend: str = "internal",
    ) -> None:
        if points_per_unit < 2:
            raise ValueError("points_per_unit must be at least 2")
        self._parameters = parameters
        self._points_per_unit = points_per_unit
        self._solver = ReactionDiffusionSolver(
            integrator=integrator, max_step=max_step, backend=backend
        )

    @property
    def parameters(self) -> DLParameters:
        """The DL parameters."""
        return self._parameters

    @property
    def solver(self) -> ReactionDiffusionSolver:
        """The underlying reaction-diffusion solver."""
        return self._solver

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def build_problem(
        self, initial_density: InitialDensity, grid: "UniformGrid | None" = None
    ) -> ReactionDiffusionProblem:
        """Assemble the reaction-diffusion problem for a given phi."""
        grid = grid if grid is not None else initial_density.default_grid(self._points_per_unit)
        parameters = self._parameters

        def reaction(density: np.ndarray, positions: np.ndarray, time: float) -> np.ndarray:
            return parameters.reaction(density, positions, time)

        return ReactionDiffusionProblem(
            grid=grid,
            initial_condition=initial_density.sample(grid),
            diffusion=parameters.diffusion_rate,
            reaction=reaction,
            start_time=initial_density.initial_time,
        )

    def solve(
        self,
        initial_density: InitialDensity,
        times: "np.ndarray | list[float]",
        grid: "UniformGrid | None" = None,
    ) -> DLSolution:
        """Integrate the DL equation from phi and sample it at ``times``.

        ``times`` may or may not include the initial time; it is always added
        so the returned solution contains the initial profile as well.
        """
        times = sorted(set(float(t) for t in times) | {initial_density.initial_time})
        problem = self.build_problem(initial_density, grid)
        pde_solution = self._solver.solve(problem, times)
        return DLSolution(
            pde_solution=pde_solution,
            parameters=self._parameters,
            initial_density=initial_density,
        )

    def predict(
        self,
        initial_density: InitialDensity,
        times: "np.ndarray | list[float]",
        distances: "np.ndarray | list[float] | None" = None,
    ) -> DensitySurface:
        """Convenience wrapper: solve and sample at integer distances.

        Returns a :class:`DensitySurface` whose rows are the requested times
        (plus the initial time) and whose columns are ``distances``
        (defaulting to phi's observation distances).
        """
        solution = self.solve(initial_density, times)
        return solution.to_surface(distances)
