"""The Diffusive Logistic model (Equation 4 of the paper).

``DiffusiveLogisticModel`` combines

* the **growth process** -- logistic growth of the density within a distance
  group, ``r(t) * I * (1 - I / K)``, and
* the **diffusion process** -- Fick's-law spreading of information across
  distance groups, ``d * d2I/dx2`` with no-flux (Neumann) boundaries,

and integrates the resulting PDE forward from the initial density function
phi using the method-of-lines solver in :mod:`repro.numerics.pde_solver`.

The solution is returned as a :class:`DLSolution`, which can be sampled at the
integer distances where densities are actually meaningful in a social
network, and converted to a :class:`~repro.cascade.density.DensitySurface`
for direct comparison against observations.

Besides the one-at-a-time :class:`DiffusiveLogisticModel`,
:func:`solve_dl_batch` advances many (parameters, phi) pairs together through
the batched solver engine -- the workhorse behind batched calibration
(:func:`repro.core.calibration.calibrate_dl_model`) and multi-story
prediction (:class:`repro.core.prediction.BatchPredictor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.initial_density import InitialDensity
from repro.core.parameters import (
    ConstantGrowthRate,
    DLParameters,
    ExponentialDecayGrowthRate,
)
from repro.numerics.grid import UniformGrid
from repro.numerics.integrators import TimeIntegrator
from repro.numerics.pde_solver import (
    BatchReactionDiffusionProblem,
    PDESolution,
    ReactionDiffusionProblem,
    ReactionDiffusionSolver,
)


@dataclass
class DLSolution:
    """A solved DL model: dense PDE solution plus the modelling context.

    Attributes
    ----------
    pde_solution:
        The underlying dense-in-space solution.
    parameters:
        The DL parameters used.
    initial_density:
        The phi the solve started from.
    """

    pde_solution: PDESolution
    parameters: DLParameters
    initial_density: InitialDensity

    @property
    def times(self) -> np.ndarray:
        """Output times of the solve."""
        return self.pde_solution.times.copy()

    @property
    def grid(self) -> UniformGrid:
        """The spatial grid the PDE was solved on."""
        return self.pde_solution.grid

    def density_at(self, distance: float, time: float) -> float:
        """Predicted density at one (distance, time) pair."""
        return float(self.pde_solution.sample([distance], time)[0])

    def profile(self, time: float, distances: "np.ndarray | None" = None) -> np.ndarray:
        """Predicted density over distance at one output time.

        ``distances`` defaults to the observation distances of phi (the
        integer distances where density is meaningful).
        """
        if distances is None:
            distances = self.initial_density.distances
        return self.pde_solution.sample(np.asarray(distances, dtype=float), time)

    def to_surface(self, distances: "np.ndarray | None" = None, unit: str = "percent") -> DensitySurface:
        """Sample the solution at integer distances into a DensitySurface."""
        if distances is None:
            distances = self.initial_density.distances
        distances = np.asarray(distances, dtype=float)
        values = self.pde_solution.sample_surface(distances)
        return DensitySurface(
            distances=distances,
            times=self.pde_solution.times.copy(),
            values=np.maximum(values, 0.0),
            group_sizes=np.ones(distances.size),
            unit=unit,
            metadata={"source": "dl_model_prediction"},
        )


class DiffusiveLogisticModel:
    """The paper's PDE model for spatio-temporal information diffusion.

    Parameters
    ----------
    parameters:
        The DL parameters (d, r, K).
    points_per_unit:
        Spatial resolution of the solve: grid intervals per unit of distance.
    integrator:
        Optional time integrator; defaults to Crank-Nicolson.
    max_step:
        Maximum internal time step in hours.
    backend:
        ``"internal"``, ``"thomas"`` or ``"scipy"`` (see
        :class:`~repro.numerics.pde_solver.ReactionDiffusionSolver`).
    operator:
        Crank-Nicolson operator factorization mode (``"auto"``, ``"banded"``,
        ``"thomas"`` or ``"dense"``), forwarded to the solver.
    """

    def __init__(
        self,
        parameters: DLParameters,
        points_per_unit: int = 20,
        integrator: "TimeIntegrator | None" = None,
        max_step: float = 0.02,
        backend: str = "internal",
        operator: str = "auto",
    ) -> None:
        if points_per_unit < 2:
            raise ValueError("points_per_unit must be at least 2")
        self._parameters = parameters
        self._points_per_unit = points_per_unit
        self._solver = ReactionDiffusionSolver(
            integrator=integrator, max_step=max_step, backend=backend, operator=operator
        )

    @property
    def parameters(self) -> DLParameters:
        """The DL parameters."""
        return self._parameters

    @property
    def solver(self) -> ReactionDiffusionSolver:
        """The underlying reaction-diffusion solver."""
        return self._solver

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def build_problem(
        self, initial_density: InitialDensity, grid: "UniformGrid | None" = None
    ) -> ReactionDiffusionProblem:
        """Assemble the reaction-diffusion problem for a given phi."""
        grid = grid if grid is not None else initial_density.default_grid(self._points_per_unit)
        parameters = self._parameters

        def reaction(density: np.ndarray, positions: np.ndarray, time: float) -> np.ndarray:
            return parameters.reaction(density, positions, time)

        return ReactionDiffusionProblem(
            grid=grid,
            initial_condition=initial_density.sample(grid),
            diffusion=parameters.diffusion_rate,
            reaction=reaction,
            start_time=initial_density.initial_time,
        )

    def solve(
        self,
        initial_density: InitialDensity,
        times: "np.ndarray | list[float]",
        grid: "UniformGrid | None" = None,
    ) -> DLSolution:
        """Integrate the DL equation from phi and sample it at ``times``.

        ``times`` may or may not include the initial time; it is always added
        so the returned solution contains the initial profile as well.
        """
        times = sorted(set(float(t) for t in times) | {initial_density.initial_time})
        problem = self.build_problem(initial_density, grid)
        pde_solution = self._solver.solve(problem, times)
        return DLSolution(
            pde_solution=pde_solution,
            parameters=self._parameters,
            initial_density=initial_density,
        )

    def predict(
        self,
        initial_density: InitialDensity,
        times: "np.ndarray | list[float]",
        distances: "np.ndarray | list[float] | None" = None,
    ) -> DensitySurface:
        """Convenience wrapper: solve and sample at integer distances.

        Returns a :class:`DensitySurface` whose rows are the requested times
        (plus the initial time) and whose columns are ``distances``
        (defaulting to phi's observation distances).
        """
        solution = self.solve(initial_density, times)
        return solution.to_surface(distances)


# ---------------------------------------------------------------------- #
# Batched solving
# ---------------------------------------------------------------------- #
_SPATIALLY_UNIFORM_RATES = (ConstantGrowthRate, ExponentialDecayGrowthRate)


def _build_batch_reaction(parameter_sets: "Sequence[DLParameters]"):
    """Vectorised logistic reaction ``r_j(t) * U_j * (1 - U_j / K_j)``.

    When every growth rate is spatially uniform (the paper's setting) the
    per-column rates collapse to one scalar per column and the whole reaction
    is a single broadcast expression; otherwise each column's rate profile is
    evaluated separately (still one call per step, not per solve).
    """
    capacities = np.asarray([p.carrying_capacity for p in parameter_sets])
    if all(isinstance(p.growth_rate, _SPATIALLY_UNIFORM_RATES) for p in parameter_sets):
        growth_rates = [p.growth_rate for p in parameter_sets]

        def reaction(states: np.ndarray, positions: np.ndarray, time: float) -> np.ndarray:
            rates = np.asarray([rate.at_time(time) for rate in growth_rates])
            return rates[None, :] * states * (1.0 - states / capacities[None, :])

        return reaction

    def reaction(states: np.ndarray, positions: np.ndarray, time: float) -> np.ndarray:
        out = np.empty_like(states)
        for j, parameters in enumerate(parameter_sets):
            out[:, j] = parameters.reaction(states[:, j], positions, time)
        return out

    return reaction


def solve_dl_batch(
    parameter_sets: "Sequence[DLParameters] | DLParameters",
    initial_densities: "Sequence[InitialDensity] | InitialDensity",
    times: "np.ndarray | list[float]",
    points_per_unit: int = 20,
    max_step: float = 0.02,
    backend: str = "internal",
    operator: str = "auto",
    grid: "UniformGrid | None" = None,
) -> "list[DLSolution]":
    """Solve many DL problems in one batched PDE solve.

    Either argument may be a single object, which is broadcast against the
    other: one phi with N parameter candidates (calibration), N phis with one
    parameter set (multi-story prediction with shared parameters), or
    matching-length sequences of both.

    All members must share the spatial setup -- the same distance interval
    and the same initial time -- because the batch advances as columns of one
    state matrix on one grid.  Callers with heterogeneous stories should
    group them (as :class:`repro.core.prediction.BatchPredictor` does) and
    make one call per group.

    Returns one :class:`DLSolution` per member, in order, numerically
    matching what :meth:`DiffusiveLogisticModel.solve` produces one at a
    time (the batched engine steps identically, per column).
    """
    if isinstance(parameter_sets, DLParameters):
        parameter_sets = [parameter_sets]
    else:
        parameter_sets = list(parameter_sets)
    if isinstance(initial_densities, InitialDensity):
        initial_densities = [initial_densities]
    else:
        initial_densities = list(initial_densities)
    if not parameter_sets or not initial_densities:
        raise ValueError("at least one parameter set and one initial density are required")
    if len(parameter_sets) == 1 and len(initial_densities) > 1:
        parameter_sets = parameter_sets * len(initial_densities)
    if len(initial_densities) == 1 and len(parameter_sets) > 1:
        initial_densities = initial_densities * len(parameter_sets)
    if len(parameter_sets) != len(initial_densities):
        raise ValueError(
            f"cannot broadcast {len(parameter_sets)} parameter sets against "
            f"{len(initial_densities)} initial densities"
        )

    reference = initial_densities[0]
    for phi in initial_densities[1:]:
        if (
            phi.lower != reference.lower
            or phi.upper != reference.upper
            or phi.initial_time != reference.initial_time
        ):
            raise ValueError(
                "all initial densities in a batch must share the same distance "
                f"interval and initial time; got [{phi.lower}, {phi.upper}] at "
                f"t={phi.initial_time} vs [{reference.lower}, {reference.upper}] "
                f"at t={reference.initial_time}"
            )

    grid = grid if grid is not None else reference.default_grid(points_per_unit)
    times = sorted(set(float(t) for t in times) | {reference.initial_time})
    initial_states = np.column_stack([phi.sample(grid) for phi in initial_densities])
    diffusion_rates = np.asarray([p.diffusion_rate for p in parameter_sets])

    problem = BatchReactionDiffusionProblem(
        grid=grid,
        initial_states=initial_states,
        diffusion_rates=diffusion_rates,
        reaction=_build_batch_reaction(parameter_sets),
        start_time=reference.initial_time,
        # Per-column reactions keep non-batched backends (e.g. scipy) at
        # O(batch) instead of O(batch^2) when they fall back to sequential
        # column solves.
        column_reactions=[p.reaction for p in parameter_sets],
    )
    solver = ReactionDiffusionSolver(max_step=max_step, backend=backend, operator=operator)
    batch_solution = solver.solve_batch(problem, times)
    return [
        DLSolution(
            pde_solution=batch_solution.column(j),
            parameters=parameter_sets[j],
            initial_density=initial_densities[j],
        )
        for j in range(len(parameter_sets))
    ]
