"""Parameters of the Diffusive Logistic model.

The DL equation has three parameters:

* ``d`` -- the diffusion rate: how fast information travels *across*
  distances (the random-walk channel).
* ``r`` -- the intrinsic growth rate: how fast information spreads *within* a
  distance group.  The paper observes that the increment of the density
  shrinks hour over hour (Figure 4) and therefore uses a decreasing function
  of time, ``r(t) = a * exp(-b * (t - 1)) + c`` (Figure 6).
* ``K`` -- the carrying capacity: the maximum possible density at any
  distance.

Section II-D notes that all three "can be constants or functions of time t
and distance x"; the future-work section proposes exploring the
space-and-time dependent case.  This module supports all of these:
constants, time-dependent growth rates, and fully space-time dependent
growth rates (:class:`SpaceTimeGrowthRate`, exercised by the EXT-1 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


class GrowthRate:
    """Base class for growth-rate functions r(x, t).

    Subclasses implement :meth:`__call__` taking the grid positions and the
    time and returning per-position growth rates.  Purely temporal rates
    simply broadcast over the positions.
    """

    def __call__(self, positions: np.ndarray, time: float) -> np.ndarray:
        raise NotImplementedError

    def at_time(self, time: float) -> float:
        """Scalar rate at a given time for spatially uniform rates."""
        value = self(np.asarray([0.0]), time)
        return float(np.asarray(value).ravel()[0])

    def to_json_dict(self) -> dict:
        """JSON-serializable description of the rate.

        Subclasses with numeric parameters override this with their full
        parameterisation; the fallback only records the family name (e.g. for
        :class:`SpaceTimeGrowthRate`, whose callable cannot be serialized).
        """
        return {"type": type(self).__name__}


@dataclass(frozen=True)
class ConstantGrowthRate(GrowthRate):
    """A growth rate that does not change with time or distance."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"growth rate must be non-negative, got {self.rate}")

    def __call__(self, positions: np.ndarray, time: float) -> np.ndarray:
        return np.full(np.asarray(positions, dtype=float).shape, self.rate)

    def to_json_dict(self) -> dict:
        return {"type": "constant", "rate": float(self.rate)}


@dataclass(frozen=True)
class ExponentialDecayGrowthRate(GrowthRate):
    """The paper's decreasing growth rate ``r(t) = a * exp(-b * (t - t0)) + c``.

    For story s1 with friendship hops the paper uses ``a = 1.4``, ``b = 1.5``,
    ``c = 0.25`` and ``t0 = 1`` (Equation 7, Figure 6); with shared interests
    it uses ``a = 1.6``, ``b = 1.0``, ``c = 0.1``.
    """

    amplitude: float
    decay: float
    floor: float
    reference_time: float = 1.0

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude}")
        if self.decay < 0:
            raise ValueError(f"decay must be non-negative, got {self.decay}")
        if self.floor < 0:
            raise ValueError(f"floor must be non-negative, got {self.floor}")

    def __call__(self, positions: np.ndarray, time: float) -> np.ndarray:
        rate = self.scalar(time)
        return np.full(np.asarray(positions, dtype=float).shape, rate)

    def scalar(self, time: float) -> float:
        """Evaluate r(t) as a scalar."""
        return self.amplitude * float(np.exp(-self.decay * (time - self.reference_time))) + self.floor

    def at_time(self, time: float) -> float:
        return self.scalar(time)

    def to_json_dict(self) -> dict:
        return {
            "type": "exponential_decay",
            "amplitude": float(self.amplitude),
            "decay": float(self.decay),
            "floor": float(self.floor),
            "reference_time": float(self.reference_time),
        }


@dataclass(frozen=True)
class SpaceTimeGrowthRate(GrowthRate):
    """A growth rate depending on both distance and time (future-work extension).

    Wraps an arbitrary vectorised callable ``rate(x, t)``.  Used by the EXT-1
    benchmark, which explores the refinement the paper proposes for the
    interest-distance-5 group (Section III-C / V).
    """

    rate_function: Callable[[np.ndarray, float], np.ndarray]

    def __call__(self, positions: np.ndarray, time: float) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        values = np.asarray(self.rate_function(positions, time), dtype=float)
        if values.shape != positions.shape:
            values = np.broadcast_to(values, positions.shape).copy()
        if np.any(values < 0):
            raise ValueError("growth rate function returned negative values")
        return values


def _as_growth_rate(rate: "GrowthRate | float | Callable[[float], float]") -> GrowthRate:
    """Coerce floats and scalar callables r(t) into GrowthRate objects."""
    if isinstance(rate, GrowthRate):
        return rate
    if isinstance(rate, (int, float)):
        return ConstantGrowthRate(float(rate))
    if callable(rate):
        def vectorised(positions: np.ndarray, time: float, _rate=rate) -> np.ndarray:
            return np.full(np.asarray(positions, dtype=float).shape, float(_rate(time)))

        return SpaceTimeGrowthRate(vectorised)
    raise TypeError(f"cannot interpret {rate!r} as a growth rate")


@dataclass(frozen=True)
class DLParameters:
    """Complete parameter set of the DL equation.

    Attributes
    ----------
    diffusion_rate:
        The diffusion coefficient ``d`` (> 0).
    growth_rate:
        A :class:`GrowthRate` (or float / scalar callable, coerced on
        construction via :func:`dl_parameters`).
    carrying_capacity:
        ``K`` (> 0), in the same unit as the densities being modelled
        (percent by default throughout this repository).
    """

    diffusion_rate: float
    growth_rate: GrowthRate
    carrying_capacity: float

    def __post_init__(self) -> None:
        if self.diffusion_rate <= 0:
            raise ValueError(f"diffusion rate must be positive, got {self.diffusion_rate}")
        if self.carrying_capacity <= 0:
            raise ValueError(
                f"carrying capacity must be positive, got {self.carrying_capacity}"
            )
        if not isinstance(self.growth_rate, GrowthRate):
            raise TypeError("growth_rate must be a GrowthRate; use dl_parameters() to coerce")

    def reaction(self, density: np.ndarray, positions: np.ndarray, time: float) -> np.ndarray:
        """The logistic reaction term ``r(x, t) * I * (1 - I / K)``."""
        rates = self.growth_rate(positions, time)
        return rates * density * (1.0 - density / self.carrying_capacity)

    def with_carrying_capacity(self, carrying_capacity: float) -> "DLParameters":
        """Copy with a different K."""
        return DLParameters(self.diffusion_rate, self.growth_rate, carrying_capacity)

    def with_diffusion_rate(self, diffusion_rate: float) -> "DLParameters":
        """Copy with a different d."""
        return DLParameters(diffusion_rate, self.growth_rate, self.carrying_capacity)

    def with_growth_rate(
        self, growth_rate: "GrowthRate | float | Callable[[float], float]"
    ) -> "DLParameters":
        """Copy with a different growth rate (floats / r(t) callables coerced)."""
        return DLParameters(
            self.diffusion_rate, _as_growth_rate(growth_rate), self.carrying_capacity
        )

    def to_json_dict(self) -> dict:
        """Structured JSON-serializable form ``{"d": ..., "r": {...}, "K": ...}``.

        Every numeric field survives a ``json.dumps``/``json.loads`` round
        trip (unlike ``repr``, which machine consumers cannot parse); ``r``
        is the growth rate's own parameterisation dict.
        """
        return {
            "d": float(self.diffusion_rate),
            "r": self.growth_rate.to_json_dict(),
            "K": float(self.carrying_capacity),
        }


def dl_parameters(
    diffusion_rate: float,
    growth_rate: "GrowthRate | float | Callable[[float], float]",
    carrying_capacity: float,
) -> DLParameters:
    """Convenience constructor coercing plain floats / callables for r."""
    return DLParameters(
        diffusion_rate=diffusion_rate,
        growth_rate=_as_growth_rate(growth_rate),
        carrying_capacity=carrying_capacity,
    )


PAPER_S1_HOP_PARAMETERS = DLParameters(
    diffusion_rate=0.01,
    growth_rate=ExponentialDecayGrowthRate(amplitude=1.4, decay=1.5, floor=0.25),
    carrying_capacity=25.0,
)
"""The parameters the paper reports for story s1 with friendship-hop distance."""

PAPER_S1_INTEREST_PARAMETERS = DLParameters(
    diffusion_rate=0.05,
    growth_rate=ExponentialDecayGrowthRate(amplitude=1.6, decay=1.0, floor=0.1),
    carrying_capacity=60.0,
)
"""The parameters the paper reports for story s1 with shared-interest distance."""
