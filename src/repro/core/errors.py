"""Shared typed errors for the prediction stack.

Before the unified model API, each estimator invented its own
predict-before-fit error (ad-hoc ``RuntimeError`` messages in
:mod:`repro.baselines`, a different phrasing in
:class:`~repro.core.prediction.DiffusionPredictor`), and unknown-name
lookups raised whatever the registry happened to use.  This module is the
single home for both failure modes so callers can catch one exception type
no matter which model produced it:

* :class:`NotFittedError` -- ``predict`` / ``evaluate`` was called before
  ``fit``.  Subclasses :class:`RuntimeError`, so pre-existing callers that
  caught ``RuntimeError`` keep working.
* :class:`UnknownModelError` -- a model name is not in the
  :mod:`repro.models` registry.  Subclasses :class:`KeyError` (it is a
  failed lookup) and carries the registered names for error messages.
* :class:`UnknownExecutorError` -- an execution-backend name is not in the
  :mod:`repro.service.execution` registry; same shape as the model error
  so CLI/service code handles both lookups identically.
* :class:`UnknownTransportError` -- a daemon transport scheme is not in the
  :mod:`repro.service.transport` registry; same shape again.
* :class:`AddressInUseError` -- a daemon listener found another *live*
  daemon already bound to its address (e.g. a Unix socket that answers a
  connect probe).  Subclasses :class:`OSError` like the ``EADDRINUSE`` it
  generalises.
* :class:`DaemonConnectionError` -- the daemon hung up mid-stream (died
  between a request and its response, or mid-way through streaming a
  job's events).  Subclasses :class:`ConnectionError`; ``repro submit``
  maps it to exit code 3 (partial failure) because earlier events of the
  stream may already have been consumed.
* :class:`QuotaExceededError` -- a client exceeded its
  :class:`~repro.service.session.ClientQuota`; carries the structured
  payload the daemon attaches to the rejecting ``error`` event.
"""

from __future__ import annotations


class NotFittedError(RuntimeError):
    """An estimator was asked to predict or evaluate before being fitted."""

    @classmethod
    def for_model(cls, what: str = "the model") -> "NotFittedError":
        """The standard message every model raises through the protocol."""
        return cls(f"{what} has not been fitted yet; call fit() first")


class UnknownModelError(KeyError):
    """A model name is not registered in the :mod:`repro.models` registry.

    Attributes
    ----------
    name:
        The unknown name that was looked up.
    available:
        The names that *are* registered at lookup time.
    """

    def __init__(self, name: str, available: "tuple[str, ...]") -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown model {self.name!r}; registered models: "
            f"{sorted(self.available)}"
        )


class UnknownExecutorError(KeyError):
    """An executor name is not in the execution-backend registry.

    Attributes
    ----------
    name:
        The unknown name that was looked up.
    available:
        The names that *are* registered at lookup time.
    """

    def __init__(self, name: str, available: "tuple[str, ...]") -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown executor {self.name!r}; registered executors: "
            f"{sorted(self.available)}"
        )


class UnknownTransportError(KeyError):
    """A transport scheme is not in the daemon-transport registry.

    Attributes
    ----------
    name:
        The unknown scheme that was looked up.
    available:
        The schemes that *are* registered at lookup time.
    """

    def __init__(self, name: str, available: "tuple[str, ...]") -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown transport {self.name!r}; registered transports: "
            f"{sorted(self.available)}"
        )


class AddressInUseError(OSError):
    """A daemon listener's address is held by another *live* daemon.

    Raised by the Unix-socket listener when the socket file at its path
    answers a connect probe (a stale file from a crashed daemon fails the
    probe and is reclaimed instead), and by analogy wherever a transport
    can distinguish live from stale occupancy.
    """


class DaemonConnectionError(ConnectionError):
    """The daemon connection died mid-stream.

    Raised by :meth:`~repro.service.daemon.DaemonClient` when the daemon
    hung up between a request and its response, or part-way through an
    event stream -- as opposed to a connect-time failure (plain
    :class:`OSError`/:class:`ConnectionError`) where no request was ever
    accepted.  ``repro submit`` maps it to exit code 3: events already
    streamed may have been consumed, so the failure is partial, not total.
    """


class QuotaExceededError(RuntimeError):
    """A client exceeded its per-client daemon quota.

    Attributes
    ----------
    kind:
        Which limit tripped: ``"jobs"`` (in-flight jobs per client) or
        ``"stories"`` (queued + running stories per client).
    limit:
        The configured bound.
    in_flight:
        The client's current usage when the request arrived.
    requested:
        How much the rejected request asked for (1 for a job, the story
        count for stories).
    """

    def __init__(self, kind: str, limit: int, in_flight: int, requested: int) -> None:
        self.kind = kind
        self.limit = limit
        self.in_flight = in_flight
        self.requested = requested
        super().__init__(
            f"client quota exceeded: {in_flight} {kind} in flight + "
            f"{requested} requested > limit {limit}"
        )

    def payload(self) -> "dict[str, object]":
        """The structured fields the daemon attaches to the error event."""
        return {
            "error_type": "quota_exceeded",
            "quota": {
                "kind": self.kind,
                "limit": self.limit,
                "in_flight": self.in_flight,
                "requested": self.requested,
            },
        }
