"""Shared typed errors for the prediction stack.

Before the unified model API, each estimator invented its own
predict-before-fit error (ad-hoc ``RuntimeError`` messages in
:mod:`repro.baselines`, a different phrasing in
:class:`~repro.core.prediction.DiffusionPredictor`), and unknown-name
lookups raised whatever the registry happened to use.  This module is the
single home for both failure modes so callers can catch one exception type
no matter which model produced it:

* :class:`NotFittedError` -- ``predict`` / ``evaluate`` was called before
  ``fit``.  Subclasses :class:`RuntimeError`, so pre-existing callers that
  caught ``RuntimeError`` keep working.
* :class:`UnknownModelError` -- a model name is not in the
  :mod:`repro.models` registry.  Subclasses :class:`KeyError` (it is a
  failed lookup) and carries the registered names for error messages.
* :class:`UnknownExecutorError` -- an execution-backend name is not in the
  :mod:`repro.service.execution` registry; same shape as the model error
  so CLI/service code handles both lookups identically.
"""

from __future__ import annotations


class NotFittedError(RuntimeError):
    """An estimator was asked to predict or evaluate before being fitted."""

    @classmethod
    def for_model(cls, what: str = "the model") -> "NotFittedError":
        """The standard message every model raises through the protocol."""
        return cls(f"{what} has not been fitted yet; call fit() first")


class UnknownModelError(KeyError):
    """A model name is not registered in the :mod:`repro.models` registry.

    Attributes
    ----------
    name:
        The unknown name that was looked up.
    available:
        The names that *are* registered at lookup time.
    """

    def __init__(self, name: str, available: "tuple[str, ...]") -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown model {self.name!r}; registered models: "
            f"{sorted(self.available)}"
        )


class UnknownExecutorError(KeyError):
    """An executor name is not in the execution-backend registry.

    Attributes
    ----------
    name:
        The unknown name that was looked up.
    available:
        The names that *are* registered at lookup time.
    """

    def __init__(self, name: str, available: "tuple[str, ...]") -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown executor {self.name!r}; registered executors: "
            f"{sorted(self.available)}"
        )
