"""Calibration of the DL-model parameters from early observations.

Section II-D of the paper gives guidelines for choosing the parameters
("growth rate r controls the gap between I(x, t) and I(x, t+1) ...; diffusion
rate d controls the slope of I; carrying capacity K controls the upper bound
of I") and the evaluation section then reports hand-chosen values for story
s1.  To make the reproduction usable on arbitrary cascades, this module adds
automated calibration:

* :func:`choose_carrying_capacity` -- the paper's heuristic ("K is set to 25
  since ... the density of s1 is always below 25"), generalised to any
  observed surface.
* :func:`fit_growth_rate` -- least-squares fit of the exponential-decay growth
  rate ``r(t) = a e^{-b (t - 1)} + c`` with d and K held fixed.
* :func:`calibrate_dl_model` -- joint coarse-grid + local-refinement fit of
  (d, a, b, c), with K chosen by the heuristic.
* :func:`calibrate_dl_model_batched` -- the same coarse-grid + refinement
  shape, but fully vectorised: every grid candidate is one column of a
  single batched PDE solve, and the refinement stage advances the top-N grid
  seeds together through a batched multi-start Levenberg-Marquardt
  (:func:`repro.numerics.optimization.multi_start_least_squares`) whose
  residual and finite-difference Jacobian evaluations are themselves columns
  of batched solves (``calibrate_dl_model(..., batch=True)`` delegates
  here).  The ``engine`` knob switches between the batched evaluation and a
  candidate-by-candidate sequential reference, which the tests use to verify
  the two paths agree to ~1e-8.

All fits compare DL-model predictions against the observed density surface on
a *training window* of early hours, exactly like the paper's setup where only
the initial phase of the cascade is assumed known.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.dl_model import DiffusiveLogisticModel, solve_dl_batch
from repro.core.initial_density import InitialDensity
from repro.core.parameters import DLParameters, ExponentialDecayGrowthRate
from repro.numerics.optimization import (
    FitResult,
    grid_candidates,
    grid_search,
    least_squares_fit,
    multi_start_least_squares,
    sum_of_squares,
)

GROWTH_RATE_BOUNDS = ((0.0, 0.05, 0.0), (6.0, 6.0, 0.6))
"""(lower, upper) box for the (amplitude, decay, floor) growth-rate fits.

The bounds encode the paper's qualitative prior on r(t): a decreasing
function with a modest long-run floor (the published fits use floors of
0.25 and 0.1).  Leaving the floor unbounded lets short training windows
push the long-run growth rate far too high, which wrecks forecasts.
"""


@dataclass
class CalibrationResult:
    """Outcome of a DL-model calibration.

    Attributes
    ----------
    parameters:
        The calibrated :class:`DLParameters`.
    loss:
        Final sum-of-squares loss on the training window.
    training_times:
        The hours used for fitting.
    details:
        Optimiser diagnostics (grid-search result, local-fit result, ...).
    """

    parameters: DLParameters
    loss: float
    training_times: tuple[float, ...]
    details: dict = field(default_factory=dict)


def choose_carrying_capacity(
    surface: DensitySurface, margin: float = 1.25, minimum: float = 1.0
) -> float:
    """Pick K as a rounded-up multiple of the largest observed density.

    The paper sets K = 25 for story s1 (hop distance) after observing that
    the density never exceeds 25, and K = 60 for the interest metric.  The
    generalisation here takes the maximum observed density, multiplies by a
    safety margin and rounds up to the next multiple of 5 (so the published
    values are recovered on surfaces with maxima just below 20 / 48).
    """
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin}")
    raw = max(surface.max_density * margin, minimum)
    return float(np.ceil(raw / 5.0) * 5.0)


def _training_surface(surface: DensitySurface, training_times: Sequence[float]) -> DensitySurface:
    times = sorted(float(t) for t in training_times)
    if len(times) < 2:
        raise ValueError("at least two training times are required (initial + one target)")
    return surface.restrict_times(times)


def _surface_residuals(
    predicted: DensitySurface, observed: DensitySurface, target_times: Sequence[float]
) -> np.ndarray:
    """Relative residuals over every (distance, target time) cell.

    Residuals are normalised by the observed value (floored at 5% of the
    surface maximum so near-zero cells do not dominate).  This matches the
    paper's evaluation metric -- Equation 8 scores *relative* error -- so the
    calibration optimises the same quantity the tables report, rather than
    letting the high-density distance-1 cells dominate the fit.
    """
    floor = max(0.05 * observed.max_density, 1e-9)
    residuals = []
    for time in target_times:
        actual = observed.profile(time)
        scale = np.maximum(np.abs(actual), floor)
        residuals.append((predicted.profile(time) - actual) / scale)
    return np.concatenate(residuals)


def _prediction_residuals(
    parameters: DLParameters,
    initial_density: InitialDensity,
    observed: DensitySurface,
    target_times: Sequence[float],
    points_per_unit: int,
    max_step: float,
    backend: str = "internal",
    operator: str = "auto",
) -> np.ndarray:
    """Residuals of one candidate, computed through a sequential solve."""
    model = DiffusiveLogisticModel(
        parameters,
        points_per_unit=points_per_unit,
        max_step=max_step,
        backend=backend,
        operator=operator,
    )
    predicted = model.predict(initial_density, list(target_times), observed.distances)
    return _surface_residuals(predicted, observed, target_times)


def _batch_prediction_residuals(
    parameter_sets: Sequence[DLParameters],
    initial_density: InitialDensity,
    observed: DensitySurface,
    target_times: Sequence[float],
    points_per_unit: int,
    max_step: float,
    backend: str = "internal",
    operator: str = "auto",
) -> "list[np.ndarray]":
    """Residuals of many candidates, all advanced in one batched solve."""
    solutions = solve_dl_batch(
        parameter_sets,
        initial_density,
        list(target_times),
        points_per_unit=points_per_unit,
        max_step=max_step,
        backend=backend,
        operator=operator,
    )
    return [
        _surface_residuals(solution.to_surface(observed.distances), observed, target_times)
        for solution in solutions
    ]


def fit_growth_rate(
    observed: DensitySurface,
    diffusion_rate: float,
    carrying_capacity: float,
    training_times: "Sequence[float] | None" = None,
    points_per_unit: int = 8,
    max_step: float = 0.05,
    initial_guess: "Sequence[float] | None" = None,
    backend: str = "internal",
    operator: str = "auto",
) -> CalibrationResult:
    """Fit the exponential-decay growth rate with d and K fixed.

    Parameters
    ----------
    observed:
        The observed density surface (training data is sliced from it).
    diffusion_rate, carrying_capacity:
        Fixed d and K.
    training_times:
        Hours used for fitting; defaults to the first six observed hours
        (hour 1 provides phi, hours 2..6 provide the targets), matching the
        paper's first-six-hours evaluation protocol.
    points_per_unit, max_step:
        Solver resolution during fitting (kept coarse for speed; the final
        prediction can use a finer grid).
    initial_guess:
        Optional ``(amplitude, decay, floor)`` seed for the local optimiser;
        the batched calibration passes its grid winner here.
    backend:
        Solver backend used for the residual solves.
    operator:
        Crank-Nicolson operator factorization mode forwarded to the solver.
    """
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
    training = _training_surface(observed, training_times)
    initial_density = InitialDensity.from_surface(training)
    target_times = [float(t) for t in training.times[1:]]

    def residual(theta: np.ndarray) -> np.ndarray:
        amplitude, decay, floor = theta
        parameters = DLParameters(
            diffusion_rate=diffusion_rate,
            growth_rate=ExponentialDecayGrowthRate(
                amplitude=max(amplitude, 0.0),
                decay=max(decay, 0.0),
                floor=max(floor, 0.0),
                reference_time=initial_density.initial_time,
            ),
            carrying_capacity=carrying_capacity,
        )
        return _prediction_residuals(
            parameters,
            initial_density,
            training,
            target_times,
            points_per_unit,
            max_step,
            backend=backend,
            operator=operator,
        )

    fit = least_squares_fit(
        residual,
        initial_guess=list(initial_guess) if initial_guess is not None else [1.0, 1.0, 0.1],
        bounds=(list(GROWTH_RATE_BOUNDS[0]), list(GROWTH_RATE_BOUNDS[1])),
        names=("amplitude", "decay", "floor"),
    )
    amplitude, decay, floor = fit.parameters
    parameters = DLParameters(
        diffusion_rate=diffusion_rate,
        growth_rate=ExponentialDecayGrowthRate(
            amplitude=float(amplitude),
            decay=float(decay),
            floor=float(floor),
            reference_time=initial_density.initial_time,
        ),
        carrying_capacity=carrying_capacity,
    )
    return CalibrationResult(
        parameters=parameters,
        loss=fit.loss,
        training_times=tuple(float(t) for t in training.times),
        details={"growth_rate_fit": fit},
    )


DEFAULT_AMPLITUDE_GRID = (0.5, 1.0, 1.5, 2.0)
DEFAULT_DECAY_GRID = (0.5, 1.0, 1.5, 2.0)
DEFAULT_FLOOR_GRID = (0.05, 0.1, 0.25, 0.5)
"""Coarse (a, b, c) seed grids for the batched calibration path."""


def calibrate_dl_model(
    observed: DensitySurface,
    training_times: "Sequence[float] | None" = None,
    carrying_capacity: "float | None" = None,
    diffusion_candidates: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.1),
    points_per_unit: int = 8,
    max_step: float = 0.05,
    batch: bool = False,
    backend: str = "internal",
    operator: str = "auto",
) -> CalibrationResult:
    """Joint calibration of (d, r(t)-parameters) with K from the heuristic.

    With ``batch=False`` (default), the diffusion rate is chosen by a coarse
    grid search with a full growth-rate fit nested inside each candidate,
    then the growth-rate parameters of the winning d are kept -- the original
    one-solve-at-a-time protocol.

    With ``batch=True``, calibration delegates to
    :func:`calibrate_dl_model_batched`: the full (d, a, b, c) seed grid is
    evaluated in vectorised batched solves (every candidate is one column of
    one state matrix, sharing each cached operator factorization), and the
    top grid candidates are polished together by a batched multi-start
    refinement -- no sequential solve loop anywhere.  This is several times
    faster at equal accuracy and is what the batched predictor and the
    ``repro predict-batch`` CLI use.
    """
    if batch:
        return calibrate_dl_model_batched(
            observed,
            training_times=training_times,
            carrying_capacity=carrying_capacity,
            diffusion_candidates=diffusion_candidates,
            points_per_unit=points_per_unit,
            max_step=max_step,
            backend=backend,
            operator=operator,
        )
    if carrying_capacity is None:
        carrying_capacity = choose_carrying_capacity(observed)
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]

    best: "CalibrationResult | None" = None
    per_candidate: dict[float, float] = {}
    for candidate in diffusion_candidates:
        result = fit_growth_rate(
            observed,
            diffusion_rate=float(candidate),
            carrying_capacity=carrying_capacity,
            training_times=training_times,
            points_per_unit=points_per_unit,
            max_step=max_step,
            backend=backend,
            operator=operator,
        )
        per_candidate[float(candidate)] = result.loss
        if best is None or result.loss < best.loss:
            best = result
    assert best is not None  # diffusion_candidates is validated non-empty below
    if not per_candidate:
        raise ValueError("diffusion_candidates must not be empty")
    best.details["diffusion_grid"] = per_candidate
    best.details["carrying_capacity"] = carrying_capacity
    return best


def calibrate_dl_model_batched(
    observed: DensitySurface,
    training_times: "Sequence[float] | None" = None,
    carrying_capacity: "float | None" = None,
    diffusion_candidates: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.1),
    amplitude_grid: Sequence[float] = DEFAULT_AMPLITUDE_GRID,
    decay_grid: Sequence[float] = DEFAULT_DECAY_GRID,
    floor_grid: Sequence[float] = DEFAULT_FLOOR_GRID,
    points_per_unit: int = 8,
    max_step: float = 0.05,
    refine: bool = True,
    refine_starts: int = 4,
    engine: str = "batched",
    backend: str = "internal",
    operator: str = "auto",
) -> CalibrationResult:
    """Grid-then-refine calibration with vectorised candidate evaluation.

    Every point of the ``diffusion_candidates x amplitude x decay x floor``
    product becomes one column of a batched solve (columns sharing a
    diffusion rate share each prefactorized operator), the best grid point is
    selected by the same relative-residual loss the sequential path uses, and
    -- unless ``refine=False`` -- the top ``refine_starts`` grid candidates
    are polished together by a batched multi-start Levenberg-Marquardt
    refinement: every start and every finite-difference Jacobian column is
    one column of one batched PDE solve per iteration
    (:func:`repro.numerics.optimization.multi_start_least_squares`), so no
    sequential least-squares loop remains anywhere in the calibration.

    Parameters
    ----------
    refine_starts:
        Number of grid candidates seeding the multi-start refinement.  The
        grid winner is always included; further seeds prefer distinct
        diffusion rates so the refinement explores different basins.
    engine:
        ``"batched"`` evaluates the grid *and* the refinement in batched
        solves; ``"sequential"`` evaluates candidate by candidate through the
        sequential solver.  Both run the *same* algorithm and agree to ~1e-8
        (the equivalence tests assert this); sequential mode exists for
        verification and as the baseline of the substrate benchmark.
    """
    if engine not in ("batched", "sequential"):
        raise ValueError(f"engine must be 'batched' or 'sequential', got {engine!r}")
    if carrying_capacity is None:
        carrying_capacity = choose_carrying_capacity(observed)
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
    training = _training_surface(observed, training_times)
    initial_density = InitialDensity.from_surface(training)
    target_times = [float(t) for t in training.times[1:]]

    names, candidates = grid_candidates(
        {
            "diffusion": diffusion_candidates,
            "amplitude": amplitude_grid,
            "decay": decay_grid,
            "floor": floor_grid,
        }
    )
    parameter_sets = [
        DLParameters(
            diffusion_rate=float(diffusion),
            growth_rate=ExponentialDecayGrowthRate(
                amplitude=float(amplitude),
                decay=float(decay),
                floor=float(floor),
                reference_time=initial_density.initial_time,
            ),
            carrying_capacity=carrying_capacity,
        )
        for diffusion, amplitude, decay, floor in candidates
    ]

    if engine == "batched":
        residual_vectors = _batch_prediction_residuals(
            parameter_sets,
            initial_density,
            training,
            target_times,
            points_per_unit,
            max_step,
            backend=backend,
            operator=operator,
        )
    else:
        residual_vectors = [
            _prediction_residuals(
                parameters,
                initial_density,
                training,
                target_times,
                points_per_unit,
                max_step,
                backend=backend,
                operator=operator,
            )
            for parameters in parameter_sets
        ]
    losses = np.asarray([sum_of_squares(residuals) for residuals in residual_vectors])
    finite = np.where(np.isfinite(losses), losses, np.inf)
    best_index = int(np.argmin(finite))
    if not np.isfinite(finite[best_index]):
        raise RuntimeError("no grid candidate produced a finite calibration loss")
    best_diffusion, best_amplitude, best_decay, best_floor = candidates[best_index]
    grid_loss = float(losses[best_index])

    per_diffusion: dict[float, float] = {}
    for row, loss in zip(candidates, finite):
        diffusion = float(row[0])
        if np.isfinite(loss):
            per_diffusion[diffusion] = min(per_diffusion.get(diffusion, np.inf), float(loss))

    details = {
        "engine": engine,
        "candidates_evaluated": len(parameter_sets),
        "grid_names": names,
        "grid_loss": grid_loss,
        "grid_winner": {
            "diffusion": float(best_diffusion),
            "amplitude": float(best_amplitude),
            "decay": float(best_decay),
            "floor": float(best_floor),
        },
        "diffusion_grid": per_diffusion,
        "carrying_capacity": carrying_capacity,
    }

    grid_result = CalibrationResult(
        parameters=parameter_sets[best_index],
        loss=grid_loss,
        training_times=tuple(float(t) for t in training.times),
        details=details,
    )
    if not refine:
        return grid_result

    seed_indices = _select_refinement_seeds(candidates, finite, refine_starts)
    seed_diffusions = np.asarray([float(candidates[i][0]) for i in seed_indices])

    def make_parameters(theta: np.ndarray, diffusion: float) -> DLParameters:
        amplitude, decay, floor = (float(v) for v in theta)
        return DLParameters(
            diffusion_rate=float(diffusion),
            growth_rate=ExponentialDecayGrowthRate(
                amplitude=amplitude,
                decay=decay,
                floor=floor,
                reference_time=initial_density.initial_time,
            ),
            carrying_capacity=carrying_capacity,
        )

    if engine == "batched":

        def evaluate(points: np.ndarray, start_indices: np.ndarray) -> "list[np.ndarray]":
            return _batch_prediction_residuals(
                [
                    make_parameters(theta, seed_diffusions[s])
                    for theta, s in zip(points, start_indices)
                ],
                initial_density,
                training,
                target_times,
                points_per_unit,
                max_step,
                backend=backend,
                operator=operator,
            )

    else:

        def evaluate(points: np.ndarray, start_indices: np.ndarray) -> "list[np.ndarray]":
            return [
                _prediction_residuals(
                    make_parameters(theta, seed_diffusions[s]),
                    initial_density,
                    training,
                    target_times,
                    points_per_unit,
                    max_step,
                    backend=backend,
                    operator=operator,
                )
                for theta, s in zip(points, start_indices)
            ]

    refinement_start = time.perf_counter()
    multi = multi_start_least_squares(
        evaluate,
        np.asarray([candidates[i][1:] for i in seed_indices]),
        bounds=GROWTH_RATE_BOUNDS,
        names=("amplitude", "decay", "floor"),
    )
    refinement_seconds = time.perf_counter() - refinement_start
    details["refinement"] = {
        "engine": engine,
        "starts": len(seed_indices),
        "seed_diffusions": [float(d) for d in seed_diffusions],
        "start_losses": [float(loss) for loss in multi.start_losses],
        "start_parameters": [
            [float(v) for v in row] for row in multi.start_parameters
        ],
        "best_start": multi.best_start,
        "iterations": multi.iterations,
        "n_evaluations": multi.n_evaluations,
        "seconds": refinement_seconds,
    }

    if multi.best.loss <= grid_loss:
        details["refined"] = True
        return CalibrationResult(
            parameters=make_parameters(
                multi.best.parameters, seed_diffusions[multi.best_start]
            ),
            loss=float(multi.best.loss),
            training_times=tuple(float(t) for t in training.times),
            details={**details, "growth_rate_fit": multi.best},
        )
    details["refined"] = False
    return grid_result


def _select_refinement_seeds(
    candidates: np.ndarray, losses: np.ndarray, refine_starts: int
) -> "list[int]":
    """Pick the grid rows that seed the multi-start refinement.

    The grid winner always comes first; the remaining slots prefer the best
    row of each *distinct diffusion rate* (so the local refinement explores
    different basins of the non-convex loss) before falling back to the next
    best rows overall.  Rows with non-finite losses are never selected.
    """
    if refine_starts < 1:
        raise ValueError(f"refine_starts must be >= 1, got {refine_starts}")
    order = [int(i) for i in np.argsort(losses, kind="stable") if np.isfinite(losses[i])]
    chosen: list[int] = []
    seen_diffusions: set[float] = set()
    for index in order:
        diffusion = float(candidates[index][0])
        if diffusion in seen_diffusions:
            continue
        seen_diffusions.add(diffusion)
        chosen.append(index)
        if len(chosen) >= refine_starts:
            return chosen
    for index in order:
        if len(chosen) >= refine_starts:
            break
        if index not in chosen:
            chosen.append(index)
    return chosen


def growth_rate_grid_result(
    observed: DensitySurface,
    diffusion_rate: float,
    carrying_capacity: float,
    amplitude_grid: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    decay_grid: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    floor_grid: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
    training_times: "Sequence[float] | None" = None,
    points_per_unit: int = 6,
    max_step: float = 0.1,
) -> FitResult:
    """Coarse grid search over (a, b, c) -- used to seed or sanity-check fits.

    Exposed separately because the FIG-6 benchmark reports how close the
    recovered growth-rate curve is to the paper's published Equation 7.
    """
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
    training = _training_surface(observed, training_times)
    initial_density = InitialDensity.from_surface(training)
    target_times = [float(t) for t in training.times[1:]]

    def objective(theta: np.ndarray) -> float:
        amplitude, decay, floor = theta
        parameters = DLParameters(
            diffusion_rate=diffusion_rate,
            growth_rate=ExponentialDecayGrowthRate(
                amplitude=float(amplitude),
                decay=float(decay),
                floor=float(floor),
                reference_time=initial_density.initial_time,
            ),
            carrying_capacity=carrying_capacity,
        )
        residuals = _prediction_residuals(
            parameters, initial_density, training, target_times, points_per_unit, max_step
        )
        return float(0.5 * np.dot(residuals, residuals))

    return grid_search(
        objective,
        {"amplitude": amplitude_grid, "decay": decay_grid, "floor": floor_grid},
    )
