"""Calibration of the DL-model parameters from early observations.

Section II-D of the paper gives guidelines for choosing the parameters
("growth rate r controls the gap between I(x, t) and I(x, t+1) ...; diffusion
rate d controls the slope of I; carrying capacity K controls the upper bound
of I") and the evaluation section then reports hand-chosen values for story
s1.  To make the reproduction usable on arbitrary cascades, this module adds
automated calibration:

* :func:`choose_carrying_capacity` -- the paper's heuristic ("K is set to 25
  since ... the density of s1 is always below 25"), generalised to any
  observed surface.
* :func:`fit_growth_rate` -- least-squares fit of the exponential-decay growth
  rate ``r(t) = a e^{-b (t - 1)} + c`` with d and K held fixed.
* :func:`calibrate_dl_model` -- joint coarse-grid + local-refinement fit of
  (d, a, b, c), with K chosen by the heuristic.

All fits compare DL-model predictions against the observed density surface on
a *training window* of early hours, exactly like the paper's setup where only
the initial phase of the cascade is assumed known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import DLParameters, ExponentialDecayGrowthRate
from repro.numerics.optimization import FitResult, grid_search, least_squares_fit


@dataclass
class CalibrationResult:
    """Outcome of a DL-model calibration.

    Attributes
    ----------
    parameters:
        The calibrated :class:`DLParameters`.
    loss:
        Final sum-of-squares loss on the training window.
    training_times:
        The hours used for fitting.
    details:
        Optimiser diagnostics (grid-search result, local-fit result, ...).
    """

    parameters: DLParameters
    loss: float
    training_times: tuple[float, ...]
    details: dict = field(default_factory=dict)


def choose_carrying_capacity(
    surface: DensitySurface, margin: float = 1.25, minimum: float = 1.0
) -> float:
    """Pick K as a rounded-up multiple of the largest observed density.

    The paper sets K = 25 for story s1 (hop distance) after observing that
    the density never exceeds 25, and K = 60 for the interest metric.  The
    generalisation here takes the maximum observed density, multiplies by a
    safety margin and rounds up to the next multiple of 5 (so the published
    values are recovered on surfaces with maxima just below 20 / 48).
    """
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin}")
    raw = max(surface.max_density * margin, minimum)
    return float(np.ceil(raw / 5.0) * 5.0)


def _training_surface(surface: DensitySurface, training_times: Sequence[float]) -> DensitySurface:
    times = sorted(float(t) for t in training_times)
    if len(times) < 2:
        raise ValueError("at least two training times are required (initial + one target)")
    return surface.restrict_times(times)


def _prediction_residuals(
    parameters: DLParameters,
    initial_density: InitialDensity,
    observed: DensitySurface,
    target_times: Sequence[float],
    points_per_unit: int,
    max_step: float,
) -> np.ndarray:
    """Relative residuals over every (distance, target time) cell.

    Residuals are normalised by the observed value (floored at 5% of the
    surface maximum so near-zero cells do not dominate).  This matches the
    paper's evaluation metric -- Equation 8 scores *relative* error -- so the
    calibration optimises the same quantity the tables report, rather than
    letting the high-density distance-1 cells dominate the fit.
    """
    model = DiffusiveLogisticModel(
        parameters, points_per_unit=points_per_unit, max_step=max_step
    )
    predicted = model.predict(initial_density, list(target_times), observed.distances)
    floor = max(0.05 * observed.max_density, 1e-9)
    residuals = []
    for time in target_times:
        actual = observed.profile(time)
        scale = np.maximum(np.abs(actual), floor)
        residuals.append((predicted.profile(time) - actual) / scale)
    return np.concatenate(residuals)


def fit_growth_rate(
    observed: DensitySurface,
    diffusion_rate: float,
    carrying_capacity: float,
    training_times: "Sequence[float] | None" = None,
    points_per_unit: int = 8,
    max_step: float = 0.05,
) -> CalibrationResult:
    """Fit the exponential-decay growth rate with d and K fixed.

    Parameters
    ----------
    observed:
        The observed density surface (training data is sliced from it).
    diffusion_rate, carrying_capacity:
        Fixed d and K.
    training_times:
        Hours used for fitting; defaults to the first six observed hours
        (hour 1 provides phi, hours 2..6 provide the targets), matching the
        paper's first-six-hours evaluation protocol.
    points_per_unit, max_step:
        Solver resolution during fitting (kept coarse for speed; the final
        prediction can use a finer grid).
    """
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
    training = _training_surface(observed, training_times)
    initial_density = InitialDensity.from_surface(training)
    target_times = [float(t) for t in training.times[1:]]

    def residual(theta: np.ndarray) -> np.ndarray:
        amplitude, decay, floor = theta
        parameters = DLParameters(
            diffusion_rate=diffusion_rate,
            growth_rate=ExponentialDecayGrowthRate(
                amplitude=max(amplitude, 0.0),
                decay=max(decay, 0.0),
                floor=max(floor, 0.0),
                reference_time=initial_density.initial_time,
            ),
            carrying_capacity=carrying_capacity,
        )
        return _prediction_residuals(
            parameters, initial_density, training, target_times, points_per_unit, max_step
        )

    # The bounds encode the paper's qualitative prior on r(t): a decreasing
    # function with a modest long-run floor (the published fits use floors of
    # 0.25 and 0.1).  Leaving the floor unbounded lets short training windows
    # push the long-run growth rate far too high, which wrecks forecasts.
    fit = least_squares_fit(
        residual,
        initial_guess=[1.0, 1.0, 0.1],
        bounds=([0.0, 0.05, 0.0], [6.0, 6.0, 0.6]),
        names=("amplitude", "decay", "floor"),
    )
    amplitude, decay, floor = fit.parameters
    parameters = DLParameters(
        diffusion_rate=diffusion_rate,
        growth_rate=ExponentialDecayGrowthRate(
            amplitude=float(amplitude),
            decay=float(decay),
            floor=float(floor),
            reference_time=initial_density.initial_time,
        ),
        carrying_capacity=carrying_capacity,
    )
    return CalibrationResult(
        parameters=parameters,
        loss=fit.loss,
        training_times=tuple(float(t) for t in training.times),
        details={"growth_rate_fit": fit},
    )


def calibrate_dl_model(
    observed: DensitySurface,
    training_times: "Sequence[float] | None" = None,
    carrying_capacity: "float | None" = None,
    diffusion_candidates: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.1),
    points_per_unit: int = 8,
    max_step: float = 0.05,
) -> CalibrationResult:
    """Joint calibration of (d, r(t)-parameters) with K from the heuristic.

    The diffusion rate is chosen by a coarse grid search (the loss is cheap to
    evaluate once per candidate because the growth-rate fit is nested inside),
    then the growth-rate parameters are refined for the winning d.
    """
    if carrying_capacity is None:
        carrying_capacity = choose_carrying_capacity(observed)
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]

    best: "CalibrationResult | None" = None
    per_candidate: dict[float, float] = {}
    for candidate in diffusion_candidates:
        result = fit_growth_rate(
            observed,
            diffusion_rate=float(candidate),
            carrying_capacity=carrying_capacity,
            training_times=training_times,
            points_per_unit=points_per_unit,
            max_step=max_step,
        )
        per_candidate[float(candidate)] = result.loss
        if best is None or result.loss < best.loss:
            best = result
    assert best is not None  # diffusion_candidates is validated non-empty below
    if not per_candidate:
        raise ValueError("diffusion_candidates must not be empty")
    best.details["diffusion_grid"] = per_candidate
    best.details["carrying_capacity"] = carrying_capacity
    return best


def growth_rate_grid_result(
    observed: DensitySurface,
    diffusion_rate: float,
    carrying_capacity: float,
    amplitude_grid: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    decay_grid: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    floor_grid: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
    training_times: "Sequence[float] | None" = None,
    points_per_unit: int = 6,
    max_step: float = 0.1,
) -> FitResult:
    """Coarse grid search over (a, b, c) -- used to seed or sanity-check fits.

    Exposed separately because the FIG-6 benchmark reports how close the
    recovered growth-rate curve is to the paper's published Equation 7.
    """
    if training_times is None:
        training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
    training = _training_surface(observed, training_times)
    initial_density = InitialDensity.from_surface(training)
    target_times = [float(t) for t in training.times[1:]]

    def objective(theta: np.ndarray) -> float:
        amplitude, decay, floor = theta
        parameters = DLParameters(
            diffusion_rate=diffusion_rate,
            growth_rate=ExponentialDecayGrowthRate(
                amplitude=float(amplitude),
                decay=float(decay),
                floor=float(floor),
                reference_time=initial_density.initial_time,
            ),
            carrying_capacity=carrying_capacity,
        )
        residuals = _prediction_residuals(
            parameters, initial_density, training, target_times, points_per_unit, max_step
        )
        return float(0.5 * np.dot(residuals, residuals))

    return grid_search(
        objective,
        {"amplitude": amplitude_grid, "decay": decay_grid, "floor": floor_grid},
    )
