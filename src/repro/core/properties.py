"""Numeric verification of the DL model's theoretical properties.

Section II-C of the paper proves two properties of the DL equation:

* **Unique property** -- the model has a unique positive solution with
  ``0 <= I(x, t) <= K`` (the equilibria 0 and K are lower/upper solutions).
* **Strictly increasing property** -- if the initial density phi is a lower
  time-independent solution (Equation 5), the solution is strictly increasing
  in time.

These cannot be "proved" numerically, but they *can* be checked on every
computed solution, and the paper explicitly notes that the experiments verify
them.  The functions here perform those checks; they are used by the
test-suite (including property-based tests) and by the prediction pipeline's
self-diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.core.dl_model import DLSolution
from repro.core.parameters import DLParameters
from repro.numerics.finite_difference import second_derivative
from repro.numerics.grid import UniformGrid


def check_solution_bounds(solution: DLSolution, tolerance: float = 1e-6) -> bool:
    """Check the unique property's bounds: ``0 <= I(x, t) <= K`` everywhere.

    ``tolerance`` absorbs discretisation error; the continuous solution is
    strictly inside the bounds whenever phi is.
    """
    states = solution.pde_solution.states
    capacity = solution.parameters.carrying_capacity
    lower_ok = bool(np.all(states >= -tolerance))
    upper_ok = bool(np.all(states <= capacity + tolerance))
    return lower_ok and upper_ok


def check_strictly_increasing(solution: DLSolution, tolerance: float = 1e-9) -> bool:
    """Check the strictly increasing property along the time axis.

    Returns True when, at every grid node, the solution is non-decreasing
    between consecutive output times (up to ``tolerance``).  Strictness is
    deliberately relaxed to non-strict monotonicity because nodes already at
    the carrying capacity stop growing.
    """
    states = solution.pde_solution.states
    if states.shape[0] < 2:
        return True
    increments = np.diff(states, axis=0)
    return bool(np.all(increments >= -tolerance))


def is_lower_time_independent_solution(
    values: np.ndarray,
    grid: UniformGrid,
    parameters: DLParameters,
    time: float = 1.0,
    tolerance: float = 1e-8,
) -> bool:
    """Check Definition 1: ``d u'' + r u (1 - u/K) >= 0`` with flat ends.

    Parameters
    ----------
    values:
        Nodal values of the candidate lower solution u(x) on ``grid``.
    grid:
        The spatial grid.
    parameters:
        DL parameters supplying d, r and K; r is evaluated at ``time``.
    time:
        Time at which to evaluate a time-dependent growth rate.
    tolerance:
        Allowed negative slack from discretisation error.
    """
    values = np.asarray(values, dtype=float)
    if values.shape != (grid.num_points,):
        raise ValueError(
            f"values must have one entry per grid node ({grid.num_points}), got {values.shape}"
        )
    curvature = second_derivative(values, grid.spacing)
    rates = parameters.growth_rate(grid.nodes, time)
    expression = (
        parameters.diffusion_rate * curvature
        + rates * values * (1.0 - values / parameters.carrying_capacity)
    )
    return bool(np.all(expression >= -tolerance))


def equilibrium_residual(
    values: np.ndarray, grid: UniformGrid, parameters: DLParameters, time: float = 1.0
) -> float:
    """Max-norm residual of the steady-state equation ``d u'' + r u (1 - u/K) = 0``.

    Useful for verifying that the constant states 0 and K are equilibria of
    the discretised system (they are the lower and upper solutions used in the
    paper's uniqueness argument).
    """
    values = np.asarray(values, dtype=float)
    curvature = second_derivative(values, grid.spacing)
    rates = parameters.growth_rate(grid.nodes, time)
    residual = (
        parameters.diffusion_rate * curvature
        + rates * values * (1.0 - values / parameters.carrying_capacity)
    )
    return float(np.max(np.abs(residual)))
