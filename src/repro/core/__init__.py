"""The paper's primary contribution: the Diffusive Logistic (DL) model.

The DL model (Equation 4 of the paper) describes the density of influenced
users ``I(x, t)`` at distance ``x`` from the information source at time ``t``::

    dI/dt = d * d2I/dx2 + r(t) * I * (1 - I / K)
    I(x, 1) = phi(x)
    dI/dx(l, t) = dI/dx(L, t) = 0

* :mod:`repro.core.parameters` -- parameter containers and growth-rate
  families, including the paper's published settings for story s1.
* :mod:`repro.core.initial_density` -- construction and validation of phi.
* :mod:`repro.core.dl_model` -- the PDE model itself.
* :mod:`repro.core.properties` -- numeric verification of the unique-solution
  and strictly-increasing properties (Section II-C).
* :mod:`repro.core.calibration` -- fitting r(t), d, K from early observations.
* :mod:`repro.core.prediction` -- the end-to-end predictor used in the
  evaluation (observe hour 1, predict hours 2..6).
* :mod:`repro.core.accuracy` -- the paper's prediction-accuracy metric and the
  machinery regenerating Tables I and II.
"""

from repro.core.config import (
    CalibrationConfig,
    ModelSpec,
    SolverConfig,
)
from repro.core.errors import NotFittedError, UnknownModelError
from repro.core.parameters import (
    PAPER_S1_HOP_PARAMETERS,
    PAPER_S1_INTEREST_PARAMETERS,
    ConstantGrowthRate,
    DLParameters,
    ExponentialDecayGrowthRate,
    GrowthRate,
    SpaceTimeGrowthRate,
)
from repro.core.initial_density import InitialDensity, LowerSolutionReport
from repro.core.dl_model import DiffusiveLogisticModel, DLSolution, solve_dl_batch
from repro.core.properties import (
    check_solution_bounds,
    check_strictly_increasing,
    is_lower_time_independent_solution,
)
from repro.core.calibration import (
    CalibrationResult,
    calibrate_dl_model,
    calibrate_dl_model_batched,
    choose_carrying_capacity,
    fit_growth_rate,
)
from repro.core.extensions import (
    SpatiallyScaledGrowthRate,
    calibrate_spatial_scaling,
    spatially_scaled_parameters,
)
from repro.core.prediction import (
    BatchPredictionResult,
    BatchPredictor,
    DiffusionPredictor,
    PredictionResult,
)
from repro.core.accuracy import (
    AccuracyTable,
    build_accuracy_table,
    prediction_accuracy,
    relative_error,
)

__all__ = [
    "SolverConfig",
    "CalibrationConfig",
    "ModelSpec",
    "NotFittedError",
    "UnknownModelError",
    "DLParameters",
    "GrowthRate",
    "ConstantGrowthRate",
    "ExponentialDecayGrowthRate",
    "SpaceTimeGrowthRate",
    "PAPER_S1_HOP_PARAMETERS",
    "PAPER_S1_INTEREST_PARAMETERS",
    "InitialDensity",
    "LowerSolutionReport",
    "DiffusiveLogisticModel",
    "DLSolution",
    "solve_dl_batch",
    "check_solution_bounds",
    "check_strictly_increasing",
    "is_lower_time_independent_solution",
    "CalibrationResult",
    "calibrate_dl_model",
    "calibrate_dl_model_batched",
    "choose_carrying_capacity",
    "fit_growth_rate",
    "SpatiallyScaledGrowthRate",
    "calibrate_spatial_scaling",
    "spatially_scaled_parameters",
    "DiffusionPredictor",
    "PredictionResult",
    "BatchPredictor",
    "BatchPredictionResult",
    "AccuracyTable",
    "build_accuracy_table",
    "prediction_accuracy",
    "relative_error",
]
