"""Construction and validation of the initial density function phi(x).

Section II-D of the paper imposes three requirements on phi:

1. phi is twice continuously differentiable,
2. phi'(l) = phi'(L) = 0 (compatible with the Neumann boundary condition),
3. d * phi'' + r * phi * (1 - phi / K) >= 0 (phi is a *lower time-independent
   solution*, which by the comparison principle makes I(x, t) strictly
   increasing in time).

Requirements 1 and 2 are satisfied by construction through
:class:`repro.numerics.spline.FlatEndDensityInterpolator` (cubic spline with
clamped zero slopes).  Requirement 3 depends on the chosen parameters; the
paper argues it holds when phi is mostly convex, K is large and d is small
relative to r.  :meth:`InitialDensity.lower_solution_report` evaluates the
inequality on a fine grid and reports where (if anywhere) it fails, so both
the tests and the calibration code can check it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.parameters import DLParameters
from repro.numerics.grid import UniformGrid
from repro.numerics.spline import FlatEndDensityInterpolator


@dataclass(frozen=True)
class LowerSolutionReport:
    """Outcome of checking the lower-solution inequality (Equation 6).

    Attributes
    ----------
    satisfied:
        True when the inequality holds (up to ``tolerance``) at every checked
        point.
    min_value:
        The smallest value of ``d phi'' + r phi (1 - phi/K)`` encountered.
    violating_positions:
        Grid positions where the inequality fails, empty when satisfied.
    tolerance:
        Allowed negative slack.
    """

    satisfied: bool
    min_value: float
    violating_positions: tuple[float, ...]
    tolerance: float


class InitialDensity:
    """The initial density function phi built from an hour-1 snapshot.

    Parameters
    ----------
    distances:
        Integer distances where densities were observed (e.g. 1..5).
    densities:
        Observed densities at those distances at the initial time.
    initial_time:
        The time of the snapshot (the paper uses t = 1 hour).
    """

    def __init__(
        self,
        distances: Sequence[float],
        densities: Sequence[float],
        initial_time: float = 1.0,
    ) -> None:
        distances = np.asarray(list(distances), dtype=float)
        densities = np.asarray(list(densities), dtype=float)
        if distances.size != densities.size:
            raise ValueError("distances and densities must have equal length")
        if distances.size < 2:
            raise ValueError("at least two observation points are required")
        self._distances = distances
        self._densities = densities
        self._initial_time = float(initial_time)
        self._interpolator = FlatEndDensityInterpolator(distances, densities)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_surface(cls, surface: DensitySurface) -> "InitialDensity":
        """Build phi from the earliest snapshot of an observed density surface."""
        return cls(
            distances=surface.distances,
            densities=surface.initial_profile(),
            initial_time=float(surface.times[0]),
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def distances(self) -> np.ndarray:
        """Observation distances (copy)."""
        return self._distances.copy()

    @property
    def densities(self) -> np.ndarray:
        """Observed densities at the observation distances (copy)."""
        return self._densities.copy()

    @property
    def initial_time(self) -> float:
        """The snapshot time t0 (usually 1 hour)."""
        return self._initial_time

    @property
    def lower(self) -> float:
        """Left end l of the distance interval."""
        return float(self._distances[0])

    @property
    def upper(self) -> float:
        """Right end L of the distance interval."""
        return float(self._distances[-1])

    def __call__(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate phi(x)."""
        return self._interpolator(x)

    def derivative(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """phi'(x)."""
        return self._interpolator.derivative(x)

    def second_derivative(self, x: "float | np.ndarray") -> "float | np.ndarray":
        """phi''(x)."""
        return self._interpolator.second_derivative(x)

    def sample(self, grid: UniformGrid) -> np.ndarray:
        """phi evaluated on every node of a grid."""
        return self._interpolator.sample(grid.nodes)

    def default_grid(self, points_per_unit: int = 20) -> UniformGrid:
        """A refined grid spanning the observation interval."""
        return UniformGrid.from_integer_distances(self._distances, points_per_unit)

    # ------------------------------------------------------------------ #
    # Requirement checks
    # ------------------------------------------------------------------ #
    def boundary_slopes(self) -> tuple[float, float]:
        """phi'(l) and phi'(L); both should be (numerically) zero."""
        return (
            float(self.derivative(self.lower)),
            float(self.derivative(self.upper)),
        )

    def lower_solution_report(
        self,
        parameters: DLParameters,
        num_check_points: int = 201,
        tolerance: float = 1e-8,
    ) -> LowerSolutionReport:
        """Check Equation 6: ``d phi'' + r phi (1 - phi/K) >= 0``.

        The growth rate is evaluated at the initial time (the inequality in
        the paper is stated for the time-independent comparison function, so
        the relevant rate is the one active at the start of the prediction).
        """
        positions = np.linspace(self.lower, self.upper, num_check_points)
        phi = np.asarray(self(positions), dtype=float)
        phi_second = np.asarray(self.second_derivative(positions), dtype=float)
        rates = parameters.growth_rate(positions, self._initial_time)
        expression = (
            parameters.diffusion_rate * phi_second
            + rates * phi * (1.0 - phi / parameters.carrying_capacity)
        )
        min_value = float(expression.min())
        violating = tuple(float(x) for x in positions[expression < -tolerance])
        return LowerSolutionReport(
            satisfied=len(violating) == 0,
            min_value=min_value,
            violating_positions=violating,
            tolerance=tolerance,
        )
