"""The paper's prediction-accuracy metric and Tables I / II machinery.

Equation 8 of the paper defines

    prediction accuracy = |predicted - actual| / actual

which, read literally, is the *relative error*; the values reported in
Tables I and II (e.g. 98.27% at distance 1) are clearly ``1 - relative
error``, i.e. the complement.  This module implements both, documents the
discrepancy, and uses the complement (what the paper's tables actually
report) as ``prediction_accuracy``.

:class:`AccuracyTable` reproduces the layout of Tables I and II: one row per
distance, one column per prediction time ``t = 2..6``, plus the per-distance
average and the overall average the paper quotes in the abstract (92.08% /
92.81% for story s1 with friendship hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface


def relative_error(predicted: float, actual: float, epsilon: float = 1e-12) -> float:
    """|predicted - actual| / |actual| -- Equation 8 as literally written."""
    return abs(predicted - actual) / max(abs(actual), epsilon)


def prediction_accuracy(predicted: float, actual: float, epsilon: float = 1e-12) -> float:
    """1 - relative error, clipped below at 0 -- what Tables I/II report."""
    return max(0.0, 1.0 - relative_error(predicted, actual, epsilon))


@dataclass
class AccuracyTable:
    """Per-distance, per-time prediction accuracies in the paper's table layout.

    Attributes
    ----------
    distances:
        Row labels (distance values).
    times:
        Column labels (prediction times, e.g. 2..6 hours).
    accuracies:
        Matrix of shape ``(len(distances), len(times))`` holding accuracies in
        ``[0, 1]``.
    metadata:
        Provenance (story, distance metric, parameters, ...).
    """

    distances: np.ndarray
    times: np.ndarray
    accuracies: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.distances = np.asarray(self.distances, dtype=float)
        self.times = np.asarray(self.times, dtype=float)
        self.accuracies = np.asarray(self.accuracies, dtype=float)
        expected = (self.distances.size, self.times.size)
        if self.accuracies.shape != expected:
            raise ValueError(
                f"accuracies shape {self.accuracies.shape} != (distances, times) {expected}"
            )

    def row_average(self, distance: float) -> float:
        """Average accuracy over all prediction times for one distance."""
        index = self._distance_index(distance)
        return float(self.accuracies[index].mean())

    def column_average(self, time: float) -> float:
        """Average accuracy over all distances for one prediction time."""
        index = self._time_index(time)
        return float(self.accuracies[:, index].mean())

    @property
    def overall_average(self) -> float:
        """Average accuracy over every (distance, time) cell."""
        return float(self.accuracies.mean())

    def accuracy(self, distance: float, time: float) -> float:
        """One cell of the table."""
        return float(self.accuracies[self._distance_index(distance), self._time_index(time)])

    def _distance_index(self, distance: float) -> int:
        matches = np.nonzero(np.isclose(self.distances, distance))[0]
        if matches.size == 0:
            raise KeyError(f"distance {distance} is not in the table")
        return int(matches[0])

    def _time_index(self, time: float) -> int:
        matches = np.nonzero(np.isclose(self.times, time))[0]
        if matches.size == 0:
            raise KeyError(f"time {time} is not in the table")
        return int(matches[0])

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_rows(self) -> list[dict[str, float]]:
        """Rows as dictionaries, one per distance (handy for CSV/JSON export)."""
        rows = []
        for i, distance in enumerate(self.distances):
            row: dict[str, float] = {"distance": float(distance)}
            row["average"] = float(self.accuracies[i].mean())
            for j, time in enumerate(self.times):
                row[f"t={time:g}"] = float(self.accuracies[i, j])
            rows.append(row)
        return rows

    def render(self, title: "str | None" = None) -> str:
        """Render the table in the paper's format (percentages, one row per distance)."""
        lines = []
        if title:
            lines.append(title)
        header = ["Distance", "Average"] + [f"t = {time:g}" for time in self.times]
        lines.append("  ".join(f"{cell:>9}" for cell in header))
        for i, distance in enumerate(self.distances):
            cells = [f"{distance:>9g}", f"{self.accuracies[i].mean() * 100:>8.2f}%"]
            cells += [f"{value * 100:>8.2f}%" for value in self.accuracies[i]]
            lines.append("  ".join(cells))
        lines.append(f"Overall average accuracy: {self.overall_average * 100:.2f}%")
        return "\n".join(lines)


def build_accuracy_table(
    predicted: DensitySurface,
    actual: DensitySurface,
    times: "Sequence[float] | None" = None,
    distances: "Sequence[float] | None" = None,
    metadata: "dict | None" = None,
) -> AccuracyTable:
    """Compare a predicted surface against observations cell by cell.

    Parameters
    ----------
    predicted:
        Model output (e.g. :meth:`DiffusiveLogisticModel.predict`).
    actual:
        Observed density surface from the dataset.
    times:
        Prediction times to score; defaults to every actual time strictly
        after the first (the first snapshot is the initial condition, so
        scoring it would be trivially perfect).
    distances:
        Distances to score; defaults to the actual surface's distances.
    """
    if predicted.unit != actual.unit:
        raise ValueError(
            f"unit mismatch: predicted is in {predicted.unit!r}, actual in {actual.unit!r}"
        )
    if distances is None:
        distances = [float(d) for d in actual.distances]
    if times is None:
        times = [float(t) for t in actual.times[1:]]
    times = [float(t) for t in times]
    distances = [float(d) for d in distances]
    if not times:
        raise ValueError("at least one prediction time is required")
    if not distances:
        raise ValueError("at least one distance is required")

    accuracies = np.zeros((len(distances), len(times)))
    for i, distance in enumerate(distances):
        for j, time in enumerate(times):
            accuracies[i, j] = prediction_accuracy(
                predicted.density(distance, time), actual.density(distance, time)
            )
    table_metadata = dict(actual.metadata)
    if metadata:
        table_metadata.update(metadata)
    return AccuracyTable(
        distances=np.asarray(distances),
        times=np.asarray(times),
        accuracies=accuracies,
        metadata=table_metadata,
    )
