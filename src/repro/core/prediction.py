"""End-to-end prediction pipeline: observe the first hour, predict the rest.

This is the workflow of Section III-C of the paper:

1. take the observed density surface of a story,
2. build the initial density function phi from the hour-1 snapshot,
3. choose (or calibrate) the DL parameters,
4. integrate the DL equation forward,
5. compare the prediction against the actual densities at hours 2..6 with the
   paper's accuracy metric (Tables I and II).

:class:`DiffusionPredictor` packages steps 2-4;
:meth:`DiffusionPredictor.evaluate` adds step 5 and returns a
:class:`PredictionResult` that the benchmarks and examples render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.accuracy import AccuracyTable, build_accuracy_table
from repro.core.calibration import calibrate_dl_model
from repro.core.dl_model import DiffusiveLogisticModel, DLSolution
from repro.core.initial_density import InitialDensity
from repro.core.parameters import DLParameters
from repro.core.properties import check_solution_bounds, check_strictly_increasing


@dataclass
class PredictionResult:
    """Everything produced by one prediction run.

    Attributes
    ----------
    predicted:
        The DL model's predicted density surface at the evaluation times.
    actual:
        The observed surface restricted to the same times.
    accuracy_table:
        Per-distance, per-time accuracies (the paper's Tables I / II).
    parameters:
        The DL parameters used.
    initial_density:
        The phi the prediction started from.
    solution:
        The full DL solution (dense in space), for plotting Figure 7.
    diagnostics:
        Self-checks: bounds / monotonicity of the computed solution.
    """

    predicted: DensitySurface
    actual: DensitySurface
    accuracy_table: AccuracyTable
    parameters: DLParameters
    initial_density: InitialDensity
    solution: DLSolution
    diagnostics: dict = field(default_factory=dict)

    @property
    def overall_accuracy(self) -> float:
        """Average accuracy over all scored cells (the paper's headline number)."""
        return self.accuracy_table.overall_average

    def accuracy_at_distance(self, distance: float) -> float:
        """Average accuracy over the prediction times for one distance."""
        return self.accuracy_table.row_average(distance)


class DiffusionPredictor:
    """Predict a story's density surface from its initial spreading phase.

    Parameters
    ----------
    parameters:
        DL parameters to use.  When omitted, :meth:`fit` calibrates them from
        the training window.
    points_per_unit:
        Spatial resolution of the final prediction solve.
    max_step:
        Maximum internal time step (hours) of the final solve.
    backend:
        PDE solver backend (``"internal"`` or ``"scipy"``).
    """

    def __init__(
        self,
        parameters: "DLParameters | None" = None,
        points_per_unit: int = 20,
        max_step: float = 0.02,
        backend: str = "internal",
    ) -> None:
        self._configured_parameters = parameters
        self._points_per_unit = points_per_unit
        self._max_step = max_step
        self._backend = backend
        self._fitted_parameters: "DLParameters | None" = None
        self._initial_density: "InitialDensity | None" = None
        self._calibration_details: dict = {}

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "DiffusionPredictor":
        """Build phi from the first observed hour and resolve the parameters.

        When the predictor was constructed without explicit parameters, the
        training window (default: the first six observed hours) is used to
        calibrate them; otherwise the supplied parameters are kept and only
        phi is (re)built.
        """
        if training_times is None:
            training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
        training_times = sorted(float(t) for t in training_times)
        if not training_times:
            raise ValueError("at least one training time is required")

        initial_time = training_times[0]
        initial_profile = observed.profile(initial_time)
        self._initial_density = InitialDensity(
            distances=observed.distances,
            densities=initial_profile,
            initial_time=initial_time,
        )

        if self._configured_parameters is not None:
            self._fitted_parameters = self._configured_parameters
            self._calibration_details = {"calibrated": False}
        else:
            calibration = calibrate_dl_model(observed, training_times=training_times)
            self._fitted_parameters = calibration.parameters
            self._calibration_details = {
                "calibrated": True,
                "loss": calibration.loss,
                "details": calibration.details,
            }
        return self

    @property
    def parameters(self) -> DLParameters:
        """The parameters that will be used for prediction (after :meth:`fit`)."""
        if self._fitted_parameters is None:
            raise RuntimeError("the predictor has not been fitted yet; call fit() first")
        return self._fitted_parameters

    @property
    def initial_density(self) -> InitialDensity:
        """The phi built by :meth:`fit`."""
        if self._initial_density is None:
            raise RuntimeError("the predictor has not been fitted yet; call fit() first")
        return self._initial_density

    @property
    def calibration_details(self) -> dict:
        """Diagnostics from the calibration step (empty before fit)."""
        return dict(self._calibration_details)

    # ------------------------------------------------------------------ #
    # Prediction & evaluation
    # ------------------------------------------------------------------ #
    def _build_model(self) -> DiffusiveLogisticModel:
        return DiffusiveLogisticModel(
            self.parameters,
            points_per_unit=self._points_per_unit,
            max_step=self._max_step,
            backend=self._backend,
        )

    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> DensitySurface:
        """Predict densities at the requested times (and integer distances)."""
        solution = self.solve(times)
        target = distances if distances is not None else self.initial_density.distances
        return solution.to_surface(np.asarray(target, dtype=float))

    def solve(self, times: Sequence[float]) -> DLSolution:
        """Run the DL solve and return the dense solution."""
        model = self._build_model()
        return model.solve(self.initial_density, list(times))

    def evaluate(
        self,
        actual: DensitySurface,
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> PredictionResult:
        """Predict and score against the observed surface.

        Parameters
        ----------
        actual:
            The full observed surface (must contain the evaluation times).
        times:
            Evaluation times; default is hours 2..6 relative to the first
            observed hour, the window the paper reports.
        distances:
            Distances to score; default is every distance of the observed
            surface.
        """
        if times is None:
            start = float(actual.times[0])
            candidates = [start + offset for offset in range(1, 6)]
            times = [t for t in candidates if np.any(np.isclose(actual.times, t))]
            if not times:
                raise ValueError("the observed surface has no evaluation times after the first hour")
        times = sorted(float(t) for t in times)

        solution = self.solve(times)
        target_distances = (
            np.asarray(distances, dtype=float) if distances is not None else actual.distances
        )
        predicted = solution.to_surface(target_distances, unit=actual.unit)
        actual_restricted = actual.restrict_times(
            [self.initial_density.initial_time] + times
        ).restrict_distances(target_distances)

        table = build_accuracy_table(
            predicted,
            actual_restricted,
            times=times,
            distances=target_distances,
            metadata={"parameters": repr(self.parameters)},
        )
        diagnostics = {
            "bounds_ok": check_solution_bounds(solution),
            "monotone_in_time": check_strictly_increasing(solution),
            "calibration": self.calibration_details,
        }
        return PredictionResult(
            predicted=predicted,
            actual=actual_restricted,
            accuracy_table=table,
            parameters=self.parameters,
            initial_density=self.initial_density,
            solution=solution,
            diagnostics=diagnostics,
        )
