"""End-to-end prediction pipeline: observe the first hour, predict the rest.

This is the workflow of Section III-C of the paper:

1. take the observed density surface of a story,
2. build the initial density function phi from the hour-1 snapshot,
3. choose (or calibrate) the DL parameters,
4. integrate the DL equation forward,
5. compare the prediction against the actual densities at hours 2..6 with the
   paper's accuracy metric (Tables I and II).

:class:`DiffusionPredictor` packages steps 2-4;
:meth:`DiffusionPredictor.evaluate` adds step 5 and returns a
:class:`PredictionResult` that the benchmarks and examples render.

:class:`BatchPredictor` runs the same workflow for *many* stories in one
call: phi is built per story, parameters are supplied or calibrated per
story, and the forward solves of all stories sharing a spatial setup are
advanced together as columns of one batched PDE solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.accuracy import AccuracyTable, build_accuracy_table
from repro.core.calibration import calibrate_dl_model
from repro.core.config import (
    CalibrationConfig,
    SolverConfig,
    merge_calibration_config,
    merge_solver_config,
)
from repro.core.dl_model import DiffusiveLogisticModel, DLSolution, solve_dl_batch
from repro.core.errors import NotFittedError
from repro.core.initial_density import InitialDensity
from repro.core.parameters import DLParameters
from repro.core.properties import check_solution_bounds, check_strictly_increasing


@dataclass
class PredictionResult:
    """Everything produced by one prediction run.

    Attributes
    ----------
    predicted:
        The model's predicted density surface at the evaluation times.
    actual:
        The observed surface restricted to the same times.
    accuracy_table:
        Per-distance, per-time accuracies (the paper's Tables I / II).
    parameters:
        The parameters used: :class:`DLParameters` for the DL model, any
        object with ``to_json_dict()`` (e.g.
        :class:`repro.models.ModelParameters`) for registry baselines.
    initial_density:
        The phi the prediction started from (DL model only; ``None`` for
        models without an initial-density construction).
    solution:
        The full DL solution (dense in space), for plotting Figure 7;
        ``None`` for non-PDE models.
    diagnostics:
        Self-checks: bounds / monotonicity of the computed solution.
    model:
        Registry name of the model that produced the result (``"dl"`` for
        the classic predictor path).
    """

    predicted: DensitySurface
    actual: DensitySurface
    accuracy_table: AccuracyTable
    parameters: "DLParameters | object"
    initial_density: "InitialDensity | None" = None
    solution: "DLSolution | None" = None
    diagnostics: dict = field(default_factory=dict)
    model: str = "dl"

    @property
    def overall_accuracy(self) -> float:
        """Average accuracy over all scored cells (the paper's headline number)."""
        return self.accuracy_table.overall_average

    def accuracy_at_distance(self, distance: float) -> float:
        """Average accuracy over the prediction times for one distance."""
        return self.accuracy_table.row_average(distance)


class DiffusionPredictor:
    """Predict a story's density surface from its initial spreading phase.

    Parameters
    ----------
    parameters:
        DL parameters to use.  When omitted, :meth:`fit` calibrates them from
        the training window.
    solver:
        A :class:`~repro.core.config.SolverConfig` describing the grid
        resolution, time step, backend and operator mode of every solve.
        The individual legacy knobs below remain accepted as a thin shim
        (passing both forms raises).
    calibration:
        A :class:`~repro.core.config.CalibrationConfig`; the legacy
        ``calibration_batch`` flag remains accepted as a shim.
    points_per_unit, max_step, backend, operator:
        Legacy solver knobs; prefer ``solver=SolverConfig(...)``.
    calibration_batch:
        Legacy calibration flag; prefer ``calibration=CalibrationConfig(...)``.
        When True, :meth:`fit` calibrates through the batched grid-then-refine
        path (``calibrate_dl_model(batch=True)``) instead of the sequential
        per-candidate protocol (the default here).
    """

    def __init__(
        self,
        parameters: "DLParameters | None" = None,
        points_per_unit: "int | None" = None,
        max_step: "float | None" = None,
        backend: "str | None" = None,
        operator: "str | None" = None,
        calibration_batch: "bool | None" = None,
        *,
        solver: "SolverConfig | None" = None,
        calibration: "CalibrationConfig | None" = None,
    ) -> None:
        self._configured_parameters = parameters
        self._solver = merge_solver_config(
            solver, points_per_unit, max_step, backend, operator
        )
        self._calibration = merge_calibration_config(
            calibration, calibration_batch, default_batch=False
        )
        self._fitted_parameters: "DLParameters | None" = None
        self._initial_density: "InitialDensity | None" = None
        self._calibration_details: dict = {}

    @property
    def solver_config(self) -> SolverConfig:
        """The solver configuration every solve of this predictor uses."""
        return self._solver

    @property
    def calibration_config(self) -> CalibrationConfig:
        """The calibration configuration :meth:`fit` uses."""
        return self._calibration

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "DiffusionPredictor":
        """Build phi from the first observed hour and resolve the parameters.

        When the predictor was constructed without explicit parameters, the
        training window (default: the first six observed hours) is used to
        calibrate them; otherwise the supplied parameters are kept and only
        phi is (re)built.
        """
        if training_times is None:
            training_times = [float(t) for t in observed.times[: min(6, observed.times.size)]]
        training_times = sorted(float(t) for t in training_times)
        if not training_times:
            raise ValueError("at least one training time is required")

        initial_time = training_times[0]
        initial_profile = observed.profile(initial_time)
        self._initial_density = InitialDensity(
            distances=observed.distances,
            densities=initial_profile,
            initial_time=initial_time,
        )

        if self._configured_parameters is not None:
            self._fitted_parameters = self._configured_parameters
            self._calibration_details = {"calibrated": False}
        else:
            calibration = calibrate_dl_model(
                observed,
                training_times=training_times,
                batch=self._calibration.batch,
                backend=self._solver.backend,
                operator=self._solver.operator,
            )
            self._fitted_parameters = calibration.parameters
            self._calibration_details = {
                "calibrated": True,
                "loss": calibration.loss,
                "details": calibration.details,
            }
        return self

    @property
    def parameters(self) -> DLParameters:
        """The parameters that will be used for prediction (after :meth:`fit`)."""
        if self._fitted_parameters is None:
            raise NotFittedError.for_model("the predictor")
        return self._fitted_parameters

    @property
    def initial_density(self) -> InitialDensity:
        """The phi built by :meth:`fit`."""
        if self._initial_density is None:
            raise NotFittedError.for_model("the predictor")
        return self._initial_density

    @property
    def calibration_details(self) -> dict:
        """Diagnostics from the calibration step (empty before fit)."""
        return dict(self._calibration_details)

    # ------------------------------------------------------------------ #
    # Prediction & evaluation
    # ------------------------------------------------------------------ #
    def _build_model(self) -> DiffusiveLogisticModel:
        return DiffusiveLogisticModel(
            self.parameters,
            points_per_unit=self._solver.points_per_unit,
            max_step=self._solver.max_step,
            backend=self._solver.backend,
            operator=self._solver.operator,
        )

    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> DensitySurface:
        """Predict densities at the requested times (and integer distances)."""
        solution = self.solve(times)
        target = distances if distances is not None else self.initial_density.distances
        return solution.to_surface(np.asarray(target, dtype=float))

    def solve(self, times: Sequence[float]) -> DLSolution:
        """Run the DL solve and return the dense solution."""
        model = self._build_model()
        return model.solve(self.initial_density, list(times))

    def evaluate(
        self,
        actual: DensitySurface,
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> PredictionResult:
        """Predict and score against the observed surface.

        Parameters
        ----------
        actual:
            The full observed surface (must contain the evaluation times).
        times:
            Evaluation times; default is hours 2..6 relative to the first
            observed hour, the window the paper reports.
        distances:
            Distances to score; default is every distance of the observed
            surface.
        """
        times = _resolve_evaluation_times(actual, times)
        solution = self.solve(times)
        return _score_solution(
            solution, actual, times, distances, self.calibration_details
        )


def _resolve_evaluation_times(
    actual: DensitySurface, times: "Sequence[float] | None"
) -> "list[float]":
    """Default to hours 2..6 relative to the first observed hour (the paper's window)."""
    if times is None:
        start = float(actual.times[0])
        candidates = [start + offset for offset in range(1, 6)]
        times = [t for t in candidates if np.any(np.isclose(actual.times, t))]
        if not times:
            raise ValueError("the observed surface has no evaluation times after the first hour")
    return sorted(float(t) for t in times)


def _score_solution(
    solution: DLSolution,
    actual: DensitySurface,
    times: "list[float]",
    distances: "Sequence[float] | None",
    calibration_details: dict,
) -> PredictionResult:
    """Score one solved story against its observed surface (paper Equation 8)."""
    target_distances = (
        np.asarray(distances, dtype=float) if distances is not None else actual.distances
    )
    predicted = solution.to_surface(target_distances, unit=actual.unit)
    actual_restricted = actual.restrict_times(
        [solution.initial_density.initial_time] + times
    ).restrict_distances(target_distances)

    table = build_accuracy_table(
        predicted,
        actual_restricted,
        times=times,
        distances=target_distances,
        metadata={"parameters": repr(solution.parameters)},
    )
    diagnostics = {
        "bounds_ok": check_solution_bounds(solution),
        "monotone_in_time": check_strictly_increasing(solution),
        "calibration": calibration_details,
    }
    return PredictionResult(
        predicted=predicted,
        actual=actual_restricted,
        accuracy_table=table,
        parameters=solution.parameters,
        initial_density=solution.initial_density,
        solution=solution,
        diagnostics=diagnostics,
    )


# ---------------------------------------------------------------------- #
# Batched multi-story prediction
# ---------------------------------------------------------------------- #
@dataclass
class BatchPredictionResult:
    """Per-story :class:`PredictionResult` objects plus fleet-level summaries.

    Attributes
    ----------
    results:
        Mapping from story name to its :class:`PredictionResult`.
    """

    results: "dict[str, PredictionResult]"

    def __getitem__(self, name: str) -> PredictionResult:
        return self.results[name]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def story_names(self) -> tuple[str, ...]:
        """Names of every scored story, in insertion order."""
        return tuple(self.results)

    @property
    def overall_accuracy(self) -> float:
        """Mean of the per-story overall accuracies."""
        if not self.results:
            raise ValueError("no stories were scored")
        return float(
            np.mean([result.overall_accuracy for result in self.results.values()])
        )

    def summary_rows(self) -> "list[dict]":
        """One row per story, ready for :func:`repro.io.tables.format_table`."""
        return [
            {"story": name, "overall_accuracy": result.overall_accuracy}
            for name, result in self.results.items()
        ]


class BatchPredictor:
    """Fit and score many stories in one call, with batched forward solves.

    The per-story workflow is identical to :class:`DiffusionPredictor` --
    phi from the first observed hour, parameters supplied or calibrated from
    the training window, DL equation integrated forward -- but the forward
    solves of every story sharing a spatial setup (same distance interval and
    initial time) are advanced together as the columns of one batched PDE
    solve, and calibration defaults to the batched grid-then-refine path.

    Parameters
    ----------
    parameters:
        ``None`` to calibrate each story from its own training window, one
        :class:`DLParameters` shared by every story, or a mapping from story
        name to its parameters.
    solver, calibration:
        Typed configs, as for :class:`DiffusionPredictor`; the legacy knobs
        below remain accepted as a thin shim (passing both forms raises).
    points_per_unit, max_step, backend, operator:
        Legacy solver knobs; prefer ``solver=SolverConfig(...)``.
    calibration_batch:
        Legacy flag: calibrate through the batched grid evaluation (the
        default here) or the sequential per-candidate protocol.
    """

    def __init__(
        self,
        parameters: "DLParameters | Mapping[str, DLParameters] | None" = None,
        points_per_unit: "int | None" = None,
        max_step: "float | None" = None,
        backend: "str | None" = None,
        operator: "str | None" = None,
        calibration_batch: "bool | None" = None,
        *,
        solver: "SolverConfig | None" = None,
        calibration: "CalibrationConfig | None" = None,
    ) -> None:
        self._configured_parameters = parameters
        self._solver = merge_solver_config(
            solver, points_per_unit, max_step, backend, operator
        )
        self._calibration = merge_calibration_config(
            calibration, calibration_batch, default_batch=True
        )
        self._initial_densities: "dict[str, InitialDensity]" = {}
        self._parameters: "dict[str, DLParameters]" = {}
        self._calibration_details: "dict[str, dict]" = {}

    @property
    def solver_config(self) -> SolverConfig:
        """The solver configuration every batched solve uses."""
        return self._solver

    @property
    def calibration_config(self) -> CalibrationConfig:
        """The calibration configuration :meth:`fit_story` uses."""
        return self._calibration

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _resolve_parameters(
        self, name: str, observed: DensitySurface, training_times: "list[float]"
    ) -> "tuple[DLParameters, dict]":
        configured = self._configured_parameters
        if isinstance(configured, DLParameters):
            return configured, {"calibrated": False}
        if isinstance(configured, Mapping):
            if name not in configured:
                raise KeyError(
                    f"no parameters supplied for story {name!r}; the mapping has "
                    f"{sorted(configured)}"
                )
            return configured[name], {"calibrated": False}
        calibration = calibrate_dl_model(
            observed,
            training_times=training_times,
            batch=self._calibration.batch,
            backend=self._solver.backend,
            operator=self._solver.operator,
        )
        details = {
            "calibrated": True,
            "loss": calibration.loss,
            "details": calibration.details,
        }
        return calibration.parameters, details

    def fit_story(
        self,
        name: str,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> "BatchPredictor":
        """Build phi and resolve parameters for one story, incrementally.

        This is the per-story stage of :meth:`fit`; the service layer uses it
        to fill a predictor shard by shard.  Re-fitting an existing story name
        replaces its state.  ``training_times=None`` defaults to the story's
        own first six observed hours.
        """
        if training_times is None:
            story_times = [
                float(t) for t in observed.times[: min(6, observed.times.size)]
            ]
        else:
            story_times = sorted(float(t) for t in training_times)
        if not story_times:
            raise ValueError(f"story {name!r} has no training times")
        initial_time = story_times[0]
        phi = InitialDensity(
            distances=observed.distances,
            densities=observed.profile(initial_time),
            initial_time=initial_time,
        )
        parameters, details = self._resolve_parameters(name, observed, story_times)
        # Commit only after every stage succeeded, so a failed fit (e.g. a
        # calibration error) leaves no half-fitted story behind and the
        # predictor remains usable for its other stories.
        self._initial_densities[name] = phi
        self._parameters[name] = parameters
        self._calibration_details[name] = details
        return self

    def fit(
        self,
        surfaces: "Mapping[str, DensitySurface]",
        training_times: "Sequence[float] | None" = None,
    ) -> "BatchPredictor":
        """Build phi and resolve parameters for every story.

        ``training_times`` applies to every story; when omitted, each story
        defaults to its own first six observed hours.
        """
        if not surfaces:
            raise ValueError("at least one story surface is required")
        self._initial_densities = {}
        self._parameters = {}
        self._calibration_details = {}
        for name, observed in surfaces.items():
            self.fit_story(name, observed, training_times)
        return self

    @property
    def story_names(self) -> tuple[str, ...]:
        """Names of every fitted story."""
        return tuple(self._initial_densities)

    def parameters_for(self, name: str) -> DLParameters:
        """Resolved parameters of one story (after :meth:`fit`)."""
        self._require_fitted()
        return self._parameters[name]

    def calibration_details_for(self, name: str) -> dict:
        """Calibration diagnostics of one story (after :meth:`fit`)."""
        self._require_fitted()
        return dict(self._calibration_details[name])

    def _require_fitted(self) -> None:
        if not self._initial_densities:
            raise NotFittedError.for_model("the predictor")

    # ------------------------------------------------------------------ #
    # Prediction & evaluation
    # ------------------------------------------------------------------ #
    def spatial_groups(self) -> "dict[tuple, list[str]]":
        """Fitted stories grouped by spatial signature (interval, initial time).

        Each group's stories can be advanced as columns of one batched solve
        sharing every cached operator factorization; this is also the
        signature :class:`repro.service.CorpusSharder` shards a corpus by.
        """
        self._require_fitted()
        groups: "dict[tuple, list[str]]" = {}
        for name, phi in self._initial_densities.items():
            key = (phi.lower, phi.upper, phi.initial_time)
            groups.setdefault(key, []).append(name)
        return groups

    def solve(self, times: Sequence[float]) -> "dict[str, DLSolution]":
        """Integrate every story forward, batching compatible stories together.

        Stories are grouped by (distance interval, initial time); each group
        becomes one batched solve whose columns share every cached operator
        factorization.  Solutions come back keyed by story name.
        """
        solutions: "dict[str, DLSolution]" = {}
        for names in self.spatial_groups().values():
            solved = solve_dl_batch(
                [self._parameters[name] for name in names],
                [self._initial_densities[name] for name in names],
                list(times),
                points_per_unit=self._solver.points_per_unit,
                max_step=self._solver.max_step,
                backend=self._solver.backend,
                operator=self._solver.operator,
            )
            solutions.update(zip(names, solved))
        return {name: solutions[name] for name in self._initial_densities}

    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> "dict[str, DensitySurface]":
        """Predicted density surfaces for every story at the requested times."""
        solutions = self.solve(times)
        return {
            name: solution.to_surface(
                np.asarray(distances, dtype=float) if distances is not None else None
            )
            for name, solution in solutions.items()
        }

    def evaluate(
        self,
        actuals: "Mapping[str, DensitySurface]",
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> BatchPredictionResult:
        """Predict and score every story against its observed surface.

        ``times=None`` defaults to each story's hours 2..6 (relative to its
        first observed hour); stories in the same spatial group are solved on
        the union of their evaluation times, in one batched solve per group.
        """
        self._require_fitted()
        missing = [name for name in self._initial_densities if name not in actuals]
        if missing:
            raise KeyError(f"no observed surface supplied for stories {missing}")

        story_times = {
            name: _resolve_evaluation_times(actuals[name], times)
            for name in self._initial_densities
        }
        union_times = sorted({t for values in story_times.values() for t in values})
        solutions = self.solve(union_times)

        results = {
            name: _score_solution(
                solutions[name],
                actuals[name],
                story_times[name],
                distances,
                self._calibration_details[name],
            )
            for name in self._initial_densities
        }
        return BatchPredictionResult(results=results)
