"""Future-work extension: parameters that vary with distance (Section V).

The paper's conclusions propose "developing new models that consider
diffusion rate, growth rate and carrying capacity as functions of time and
distance", motivated by the poor prediction of the interest-distance-5 group
in Table II.  This module implements the growth-rate half of that programme:

* :class:`SpatiallyScaledGrowthRate` -- wraps any temporal growth rate
  r(t) with a smooth, distance-dependent multiplier s(x), giving
  ``r(x, t) = s(x) * r(t)``.
* :func:`calibrate_spatial_scaling` -- fits the per-distance multipliers (one
  per observation distance, interpolated in between) on the training window,
  starting from an already calibrated spatially uniform model.

The EXT-1 benchmark (``benchmarks/bench_ext_spatial_parameters.py``) uses
these to quantify how much the extension helps on exactly the case the paper
calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.calibration import CalibrationResult, _prediction_residuals
from repro.core.initial_density import InitialDensity
from repro.core.parameters import DLParameters, GrowthRate
from repro.numerics.optimization import least_squares_fit
from repro.numerics.spline import CubicSpline


@dataclass(frozen=True)
class SpatiallyScaledGrowthRate(GrowthRate):
    """A growth rate ``r(x, t) = s(x) * r_base(t)``.

    The spatial multiplier ``s`` is a clamped cubic spline through
    ``(distances, scales)`` with flat ends, clipped to be non-negative, so it
    satisfies the same smoothness requirements as the initial density
    function.

    Attributes
    ----------
    base:
        The temporal growth rate being scaled (typically an
        :class:`~repro.core.parameters.ExponentialDecayGrowthRate`).
    distances:
        Observation distances where multipliers are specified.
    scales:
        Non-negative multipliers, one per distance; 1.0 reproduces the base
        rate at that distance.
    """

    base: GrowthRate
    distances: tuple[float, ...]
    scales: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.distances) != len(self.scales):
            raise ValueError("distances and scales must have equal length")
        if len(self.distances) < 2:
            raise ValueError("at least two distances are required")
        if any(s < 0 for s in self.scales):
            raise ValueError("scales must be non-negative")

    def _spline(self) -> CubicSpline:
        return CubicSpline(
            self.distances, self.scales, end_condition="clamped", start_slope=0.0, end_slope=0.0
        )

    def scaling(self, positions: np.ndarray) -> np.ndarray:
        """The spatial multiplier s(x), clipped to be non-negative."""
        values = np.asarray(self._spline()(np.asarray(positions, dtype=float)), dtype=float)
        return np.maximum(values, 0.0)

    def __call__(self, positions: np.ndarray, time: float) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        return self.scaling(positions) * self.base(positions, time)


def spatially_scaled_parameters(
    parameters: DLParameters,
    distances: Sequence[float],
    scales: Sequence[float],
) -> DLParameters:
    """Return a copy of ``parameters`` whose growth rate is scaled per distance."""
    scaled = SpatiallyScaledGrowthRate(
        base=parameters.growth_rate,
        distances=tuple(float(d) for d in distances),
        scales=tuple(float(s) for s in scales),
    )
    return DLParameters(
        diffusion_rate=parameters.diffusion_rate,
        growth_rate=scaled,
        carrying_capacity=parameters.carrying_capacity,
    )


def calibrate_spatial_scaling(
    observed: DensitySurface,
    base_result: CalibrationResult,
    training_times: "Sequence[float] | None" = None,
    scale_bounds: tuple[float, float] = (0.2, 3.0),
    points_per_unit: int = 8,
    max_step: float = 0.05,
) -> CalibrationResult:
    """Fit per-distance growth multipliers on top of a uniform calibration.

    Parameters
    ----------
    observed:
        The observed density surface.
    base_result:
        Output of :func:`repro.core.calibration.calibrate_dl_model` (or
        :func:`fit_growth_rate`): supplies the temporal growth rate, the
        diffusion rate and the carrying capacity, all of which are kept fixed.
    training_times:
        Hours used for fitting; defaults to the base result's window.
    scale_bounds:
        Per-distance bounds on the multipliers (kept away from zero so the
        scaled model remains a proper DL equation everywhere).
    """
    if training_times is None:
        training_times = list(base_result.training_times)
    training_times = sorted(float(t) for t in training_times)
    if len(training_times) < 2:
        raise ValueError("at least two training times are required")
    training = observed.restrict_times(training_times)
    initial_density = InitialDensity.from_surface(training)
    target_times = [float(t) for t in training.times[1:]]
    distances = [float(d) for d in observed.distances]
    base_parameters = base_result.parameters

    def residual(scales: np.ndarray) -> np.ndarray:
        candidate = spatially_scaled_parameters(base_parameters, distances, scales)
        return _prediction_residuals(
            candidate, initial_density, training, target_times, points_per_unit, max_step
        )

    fit = least_squares_fit(
        residual,
        initial_guess=np.ones(len(distances)),
        bounds=(
            np.full(len(distances), scale_bounds[0]),
            np.full(len(distances), scale_bounds[1]),
        ),
        names=tuple(f"scale_x{d:g}" for d in distances),
    )
    parameters = spatially_scaled_parameters(base_parameters, distances, fit.parameters)
    return CalibrationResult(
        parameters=parameters,
        loss=fit.loss,
        training_times=tuple(training_times),
        details={"spatial_scaling_fit": fit, "base_loss": base_result.loss},
    )
