"""Typed, frozen configuration objects for the prediction stack.

Historically every layer of the stack (predictors, sharder, service,
daemon, CLI) re-declared the same four solver knobs as positional keyword
arguments -- ``points_per_unit``, ``max_step``, ``backend``, ``operator`` --
plus a ``calibration_batch`` flag, and adding a knob meant touching every
signature.  This module replaces the scattered knobs with three frozen
dataclasses that are threaded through the whole stack:

* :class:`SolverConfig` -- the spatial/temporal discretisation and the
  solver backend/operator pair.  Hashable, so it can join shard keys.
* :class:`CalibrationConfig` -- how DL parameters are calibrated from a
  training window (batched grid-then-refine vs sequential).
* :class:`ModelSpec` -- the full description of one model workload:
  registry name, model-specific parameters, solver and calibration config.

Every constructor that grew a config object keeps accepting the legacy
keyword knobs (``points_per_unit=...`` etc.) as thin shims --
:func:`merge_solver_config` folds them into a :class:`SolverConfig` and
rejects ambiguous calls that pass both forms.  The shims are deprecated:
passing any legacy knob emits a :class:`DeprecationWarning` naming the
typed-config replacement.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

#: The historical defaults of the scattered keyword knobs; SolverConfig()
#: reproduces them exactly so old and new call sites mean the same solve.
DEFAULT_POINTS_PER_UNIT = 20
DEFAULT_MAX_STEP = 0.02
DEFAULT_BACKEND = "internal"
DEFAULT_OPERATOR = "auto"


@dataclass(frozen=True)
class SolverConfig:
    """Discretisation and solver selection for every PDE solve.

    Attributes
    ----------
    points_per_unit:
        Spatial grid resolution (points per unit distance).
    max_step:
        Maximum internal time step (hours).
    backend:
        Name of a registered PDE solver backend
        (:func:`repro.numerics.backends.register_backend`).
    operator:
        Crank-Nicolson operator factorization mode
        (``auto`` | ``banded`` | ``thomas`` | ``dense``).
    """

    points_per_unit: int = DEFAULT_POINTS_PER_UNIT
    max_step: float = DEFAULT_MAX_STEP
    backend: str = DEFAULT_BACKEND
    operator: str = DEFAULT_OPERATOR

    def __post_init__(self) -> None:
        if self.points_per_unit < 1:
            raise ValueError(
                f"points_per_unit must be >= 1, got {self.points_per_unit}"
            )
        if self.max_step <= 0:
            raise ValueError(f"max_step must be > 0, got {self.max_step}")

    def replace(self, **changes: Any) -> "SolverConfig":
        """A copy with the given fields changed (frozen-dataclass update)."""
        return replace(self, **changes)

    def to_json_dict(self) -> dict:
        """Plain JSON-able form (CLI payloads, manifests, stats)."""
        return {
            "points_per_unit": self.points_per_unit,
            "max_step": self.max_step,
            "backend": self.backend,
            "operator": self.operator,
        }


@dataclass(frozen=True)
class CalibrationConfig:
    """How DL parameters are fitted from the training window.

    Attributes
    ----------
    batch:
        ``True`` calibrates through the batched grid-then-refine path
        (``calibrate_dl_model(batch=True)``); ``False`` runs the sequential
        per-candidate protocol.  Models without a calibration stage ignore
        this config.
    """

    batch: bool = True

    def replace(self, **changes: Any) -> "CalibrationConfig":
        return replace(self, **changes)

    def to_json_dict(self) -> dict:
        return {"batch": self.batch}


def merge_solver_config(
    solver: "SolverConfig | None",
    points_per_unit: "int | None" = None,
    max_step: "float | None" = None,
    backend: "str | None" = None,
    operator: "str | None" = None,
) -> SolverConfig:
    """Fold legacy keyword knobs and a :class:`SolverConfig` into one config.

    The deprecation shim behind every constructor that grew a ``solver=``
    parameter: when ``solver`` is given, no legacy knob may be passed
    alongside it (the call would be ambiguous); when it is omitted, the
    legacy knobs (with the historical defaults) build the config.
    """
    legacy = {
        "points_per_unit": points_per_unit,
        "max_step": max_step,
        "backend": backend,
        "operator": operator,
    }
    given = {name: value for name, value in legacy.items() if value is not None}
    if solver is not None:
        if given:
            raise ValueError(
                f"pass either solver=SolverConfig(...) or the individual "
                f"knobs {sorted(given)}, not both"
            )
        return solver
    if given:
        warnings.warn(
            f"the scattered solver knobs {sorted(given)} are deprecated; "
            f"pass solver=SolverConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return SolverConfig(**given)


def merge_calibration_config(
    calibration: "CalibrationConfig | None",
    calibration_batch: "bool | None",
    default_batch: bool,
) -> CalibrationConfig:
    """Fold the legacy ``calibration_batch`` flag into a :class:`CalibrationConfig`."""
    if calibration is not None:
        if calibration_batch is not None:
            raise ValueError(
                "pass either calibration=CalibrationConfig(...) or "
                "calibration_batch=..., not both"
            )
        return calibration
    if calibration_batch is None:
        return CalibrationConfig(batch=default_batch)
    warnings.warn(
        "the calibration_batch flag is deprecated; pass "
        "calibration=CalibrationConfig(batch=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return CalibrationConfig(batch=bool(calibration_batch))


@dataclass(frozen=True)
class ModelSpec:
    """One model workload: registry name, parameters, solver, calibration.

    Attributes
    ----------
    name:
        The model's :mod:`repro.models` registry name (``"dl"``,
        ``"logistic"``, ``"sis"``, ``"linear-influence"``, or anything
        registered at runtime).
    params:
        Model-specific options; the ``dl`` model understands
        ``{"parameters": DLParameters | mapping}``, the baselines accept
        their constructor knobs (e.g. ``{"ridge": 1e-3}``).  Unknown keys
        are rejected by the model adapter, not silently dropped.
    solver:
        The :class:`SolverConfig` for models that run PDE solves; models
        without a spatial solve carry it for shard-signature purposes only.
    calibration:
        The :class:`CalibrationConfig`; only meaningful for ``dl``.
    """

    name: str = "dl"
    params: Mapping[str, Any] = field(default_factory=dict)
    solver: SolverConfig = field(default_factory=SolverConfig)
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a model spec needs a non-empty model name")
        # Freeze the params mapping into a plain dict copy so a caller
        # mutating their dict afterwards cannot change the spec.
        object.__setattr__(self, "params", dict(self.params))

    def replace(self, **changes: Any) -> "ModelSpec":
        return replace(self, **changes)

    def to_json_dict(self) -> dict:
        """JSON-able form; model params are included only when JSON-able."""
        params = {
            key: value
            for key, value in self.params.items()
            if isinstance(value, (int, float, str, bool, type(None)))
        }
        return {
            "name": self.name,
            "params": params,
            "solver": self.solver.to_json_dict(),
            "calibration": self.calibration.to_json_dict(),
        }
