"""Temporal-only baselines behind the unified model protocol.

Adapters over the density-surface baselines of :mod:`repro.baselines` --
the per-distance logistic model, the SIS epidemic model and the
Linear-Influence-style counting model -- so every baseline the paper
compares the DL model against is a first-class, servable workload:
registrable, shardable, scoreable through ``PredictionService`` and the
daemon, and comparable head-to-head via ``repro compare``.

Each adapter wraps its baseline's ``fit(observed) / predict(times)`` pair
in a :class:`~repro.models.base.FittedModel` and scores through the shared
generic ``evaluate`` (the paper's accuracy metric on the same hour-2..6
cells the DL model reports).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.baselines.linear_influence import LinearInfluenceBaseline
from repro.baselines.logistic import PerDistanceLogisticBaseline
from repro.baselines.sis import SISBaseline
from repro.cascade.density import DensitySurface
from repro.core.calibration import choose_carrying_capacity
from repro.core.config import ModelSpec
from repro.models.base import (
    FittedModel,
    ModelParameters,
    PredictionModel,
    coerce_spec,
)


class SurfaceFittedModel(FittedModel):
    """Generic fitted wrapper over an estimator with ``predict(times)``."""

    def __init__(
        self,
        model_name: str,
        predict_surface: "Callable[[Sequence[float]], DensitySurface]",
        parameters: ModelParameters,
        calibration_details: "dict | None" = None,
    ) -> None:
        self.model_name = model_name
        self._predict_surface = predict_surface
        self._parameters = parameters
        self._calibration_details = dict(calibration_details or {})

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    @property
    def calibration_details(self) -> dict:
        return dict(self._calibration_details)

    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> DensitySurface:
        surface = self._predict_surface(times)
        if distances is not None:
            surface = surface.restrict_distances(np.asarray(distances, dtype=float))
        return surface


class PerDistanceLogisticModel(PredictionModel):
    """The ``logistic`` registry model: independent logistic curve per distance."""

    name = "logistic"
    description = (
        "per-distance independent logistic curves (temporal-only ablation of "
        "the DL model: growth without spatial diffusion)"
    )
    _PARAMS = ("carrying_capacity_cap",)

    def fit(
        self,
        observed: DensitySurface,
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> SurfaceFittedModel:
        spec = coerce_spec(spec, self.name, self._PARAMS)
        cap = float(spec.params.get("carrying_capacity_cap", 200.0))
        baseline = PerDistanceLogisticBaseline(carrying_capacity_cap=cap).fit(
            observed, training_times
        )
        curves = baseline.curve_parameters()
        parameters = ModelParameters(
            self.name,
            carrying_capacity_cap=cap,
            curves={f"{distance:g}": values for distance, values in curves.items()},
        )
        details = {
            "calibrated": True,
            "fitted_distances": sum(
                1 for values in curves.values() if "constant" not in values
            ),
            "constant_fallbacks": sum(
                1 for values in curves.values() if "constant" in values
            ),
        }
        return SurfaceFittedModel(self.name, baseline.predict, parameters, details)


class SISModel(PredictionModel):
    """The ``sis`` registry model: SIS epidemic dynamics per distance group."""

    name = "sis"
    description = (
        "SIS epidemic model fitted per distance group (related-work baseline; "
        "recovery term allows die-out, structurally wrong for vote densities)"
    )
    _PARAMS = ("pool_percent",)

    def fit(
        self,
        observed: DensitySurface,
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> SurfaceFittedModel:
        spec = coerce_spec(spec, self.name, self._PARAMS)
        pool = spec.params.get("pool_percent")
        if pool is None:
            # The ablation experiment's convention: size the susceptible pool
            # from the observed carrying capacity so densities normalise to
            # sensible fractions.
            pool = max(choose_carrying_capacity(observed), 1.0)
        baseline = SISBaseline(pool_percent=float(pool)).fit(observed, training_times)
        fits = baseline.fitted_parameters()
        parameters = ModelParameters(
            self.name,
            pool_percent=float(pool),
            rates={f"{distance:g}": values for distance, values in fits.items()},
        )
        details = {"calibrated": True, "pool_percent": float(pool)}
        return SurfaceFittedModel(self.name, baseline.predict, parameters, details)


class LinearInfluenceModel(PredictionModel):
    """The ``linear-influence`` registry model: autoregressive increments."""

    name = "linear-influence"
    description = (
        "Linear-Influence-style counting model: non-negative autoregression "
        "on per-hour density increments across distance groups (no saturation)"
    )
    _PARAMS = ("ridge",)

    def fit(
        self,
        observed: DensitySurface,
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> SurfaceFittedModel:
        spec = coerce_spec(spec, self.name, self._PARAMS)
        ridge = float(spec.params.get("ridge", 1e-3))
        baseline = LinearInfluenceBaseline(ridge=ridge).fit(observed, training_times)
        influence = baseline.influence_matrix
        parameters = ModelParameters(
            self.name,
            ridge=ridge,
            num_distances=int(influence.shape[0]),
            influence_spectral_radius=float(
                np.max(np.abs(np.linalg.eigvals(influence)))
            ),
        )
        details = {"calibrated": True, "ridge": ridge}
        return SurfaceFittedModel(self.name, baseline.predict, parameters, details)
