"""The Diffusive Logistic model behind the unified model protocol.

A thin adapter over the classic predictor pair: single stories go through
:class:`~repro.core.prediction.DiffusionPredictor`, corpora through
:class:`~repro.core.prediction.BatchPredictor` -- so results through the
registry are **bit-identical** to the pre-registry code paths, and the
corpus path keeps the batched spatial-group solve (stories sharing a
distance interval and initial time advance as columns of one batched PDE
solve with shared cached operator factorizations).

Spec params understood (``ModelSpec.params``):

``parameters``
    ``None`` to calibrate each story from its training window, one
    :class:`~repro.core.parameters.DLParameters` shared by every story, or
    a mapping from story name to its parameters.
"""

from __future__ import annotations

from typing import Sequence

from repro.cascade.density import DensitySurface
from repro.core.config import ModelSpec
from repro.core.prediction import (
    BatchPredictor,
    DiffusionPredictor,
    PredictionResult,
)
from repro.models.base import BatchFitter, FittedModel, PredictionModel, coerce_spec

_DL_PARAMS = ("parameters",)


class DLFittedModel(FittedModel):
    """One fitted story, wrapping a :class:`DiffusionPredictor`."""

    model_name = "dl"

    def __init__(self, predictor: DiffusionPredictor) -> None:
        self._predictor = predictor

    @property
    def parameters(self):
        return self._predictor.parameters

    @property
    def calibration_details(self) -> dict:
        return self._predictor.calibration_details

    @property
    def initial_density(self):
        """The phi the predictor built from the first training hour."""
        return self._predictor.initial_density

    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> DensitySurface:
        return self._predictor.predict(times, distances)

    def evaluate(
        self,
        actual: DensitySurface,
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> PredictionResult:
        # Delegate to the classic evaluate (full DL diagnostics, dense
        # solution for Figure 7) instead of the generic surface scoring.
        return self._predictor.evaluate(actual, times, distances)


class DLBatchFitter(BatchFitter):
    """Corpus fitter wrapping a :class:`BatchPredictor` verbatim.

    Every call forwards to the classic batched path, so shard solves
    through the registry stay bit-identical to ``BatchPredictor`` and keep
    its spatial-group batching.
    """

    model_name = "dl"

    def __init__(self, predictor: BatchPredictor) -> None:
        self._predictor = predictor

    @property
    def predictor(self) -> BatchPredictor:
        """The underlying classic predictor (for spatial-group introspection)."""
        return self._predictor

    def fit_story(
        self,
        name: str,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> None:
        self._predictor.fit_story(name, observed, training_times)

    @property
    def story_names(self) -> tuple[str, ...]:
        return self._predictor.story_names

    def parameters_for(self, name: str):
        return self._predictor.parameters_for(name)

    def evaluate(
        self,
        actuals,
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> "dict[str, PredictionResult]":
        return self._predictor.evaluate(actuals, times, distances).results


class DiffusiveLogisticPredictionModel(PredictionModel):
    """Registry adapter for the paper's Diffusive Logistic model."""

    name = "dl"
    description = (
        "Diffusive Logistic PDE model (the paper's model): logistic growth "
        "plus spatial diffusion, calibrated per story, batched corpus solves"
    )

    def fit(
        self,
        observed: DensitySurface,
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> DLFittedModel:
        spec = coerce_spec(spec, self.name, _DL_PARAMS)
        predictor = DiffusionPredictor(
            parameters=spec.params.get("parameters"),
            solver=spec.solver,
            calibration=spec.calibration,
        )
        return DLFittedModel(predictor.fit(observed, training_times))

    def batch_fitter(self, spec: "ModelSpec | None" = None) -> DLBatchFitter:
        spec = coerce_spec(spec, self.name, _DL_PARAMS)
        return DLBatchFitter(
            BatchPredictor(
                parameters=spec.params.get("parameters"),
                solver=spec.solver,
                calibration=spec.calibration,
            )
        )
