"""The model registry: named factories for every registered predictor.

Mirrors the solver-backend registry in :mod:`repro.numerics.backends`: a
flat name -> factory mapping, runtime-extensible, with unknown names
rejected by an error that lists everything registered
(:class:`~repro.core.errors.UnknownModelError`).  The package registers
``dl``, ``logistic``, ``sis`` and ``linear-influence`` on import of
:mod:`repro.models`; graph-seeded IC/LT adapters are registered per graph
via :func:`repro.models.graph.register_graph_models`.

Factories (not instances) are stored so every :func:`get_model` call
returns a fresh, stateless model object -- shard solves on worker threads
never share fitted state through the registry.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import UnknownModelError
from repro.models.base import PredictionModel

_REGISTRY: "dict[str, Callable[[], PredictionModel]]" = {}


def register_model(
    name: str,
    factory: "Callable[[], PredictionModel]",
    overwrite: bool = False,
) -> None:
    """Register a model factory under ``name``.

    Parameters
    ----------
    name:
        The name users pass as ``--model`` / ``model=`` throughout the
        library.
    factory:
        A zero-argument callable returning a fresh
        :class:`~repro.models.base.PredictionModel` (a model class itself
        works).
    overwrite:
        Allow replacing an existing registration; without it a duplicate
        name raises ``ValueError`` (catching accidental double registration).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"a model needs a non-empty string name, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"a model named {name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    _REGISTRY[name] = factory


def unregister_model(name: str) -> None:
    """Remove a registration (mainly for tests); unknown names raise."""
    if name not in _REGISTRY:
        raise UnknownModelError(name, available_models())
    del _REGISTRY[name]


def get_model(name: str) -> PredictionModel:
    """Resolve a registered model name into a fresh model instance."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise UnknownModelError(name, available_models())
    return factory()


def available_models() -> tuple[str, ...]:
    """Every registered model name, sorted."""
    return tuple(sorted(_REGISTRY))


def model_descriptions() -> "dict[str, str]":
    """Name -> one-line description of every registered model."""
    return {name: get_model(name).description for name in available_models()}
