"""The unified prediction-model protocol.

Every predictor in the package -- the paper's Diffusive Logistic model and
each of its baselines -- speaks the same three-stage protocol:

* :meth:`PredictionModel.fit` turns one observed
  :class:`~repro.cascade.density.DensitySurface` (plus a
  :class:`~repro.core.config.ModelSpec`) into a :class:`FittedModel`;
* :meth:`FittedModel.predict` produces a predicted ``DensitySurface`` at
  requested times;
* :meth:`FittedModel.evaluate` scores the prediction against the observed
  surface with the paper's accuracy metric and returns a
  :class:`~repro.core.prediction.PredictionResult`.

For corpus workloads :meth:`PredictionModel.batch_fitter` returns a
:class:`BatchFitter` that accumulates stories incrementally (the shape the
service layer's shard solver needs: per-story fit failures must not poison
shard-mates) and evaluates them together; :meth:`PredictionModel.fit_batch`
is the convenience wrapper over it.  The default :class:`SequentialBatchFitter`
simply loops; models with a genuinely batched path (the DL model's
spatial-group solve) override :meth:`PredictionModel.batch_fitter`.

All models raise the same typed errors:
:class:`~repro.core.errors.NotFittedError` on predict-before-fit and
``ValueError`` on spec mismatches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.accuracy import build_accuracy_table
from repro.core.config import ModelSpec
from repro.core.errors import NotFittedError
from repro.core.prediction import PredictionResult, _resolve_evaluation_times


def _jsonify(value):
    """Coerce numpy scalars (and containers of them) into plain JSON types."""
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(key): _jsonify(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


class ModelParameters:
    """Generic fitted-parameter container for non-DL models.

    Mirrors the two capabilities the result pipeline relies on from
    :class:`~repro.core.parameters.DLParameters`: a readable ``repr`` for
    human summaries and :meth:`to_json_dict` for machine-readable payloads
    (``predict-batch --json``, serve-batch / daemon result events).
    """

    def __init__(self, model: str, **values) -> None:
        self.model = model
        self._values = dict(values)

    def __getitem__(self, key: str):
        return self._values[key]

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def to_json_dict(self) -> dict:
        """Plain JSON-able form: the model name plus every fitted value."""
        return {"model": self.model, **_jsonify(self._values)}

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ModelParameters)
            and self.model == other.model
            and self.to_json_dict() == other.to_json_dict()
        )

    def __repr__(self) -> str:
        summary = ", ".join(
            f"{key}={value!r}"
            for key, value in self._values.items()
            if isinstance(value, (int, float, str, bool))
        )
        prefix = f"ModelParameters(model={self.model!r}"
        return f"{prefix}, {summary})" if summary else f"{prefix})"


def coerce_spec(
    spec: "ModelSpec | None",
    model_name: str,
    allowed_params: "tuple[str, ...]" = (),
) -> ModelSpec:
    """Validate / default the spec every model adapter receives.

    ``None`` becomes the model's default spec; a spec naming a *different*
    model is rejected (the registry dispatched it to the wrong adapter);
    unknown ``params`` keys are rejected rather than silently dropped.
    """
    if spec is None:
        return ModelSpec(name=model_name)
    if spec.name != model_name:
        raise ValueError(
            f"spec is for model {spec.name!r}, but it was passed to the "
            f"{model_name!r} model"
        )
    unknown = sorted(set(spec.params) - set(allowed_params))
    if unknown:
        raise ValueError(
            f"model {model_name!r} does not understand params {unknown}; "
            f"expected a subset of {sorted(allowed_params)}"
        )
    return spec


class FittedModel(ABC):
    """One story's fitted state: predicts forward and scores itself."""

    #: Registry name of the model that produced this fit.
    model_name: str = "abstract"

    @property
    @abstractmethod
    def parameters(self):
        """The fitted parameters (``to_json_dict``-capable)."""

    @property
    def calibration_details(self) -> dict:
        """Diagnostics from the fitting stage (empty when not applicable)."""
        return {}

    @abstractmethod
    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> DensitySurface:
        """Predicted density surface at the requested times (and distances)."""

    def evaluate(
        self,
        actual: DensitySurface,
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> PredictionResult:
        """Predict and score against the observed surface (paper Equation 8).

        ``times=None`` defaults to hours 2..6 relative to the first observed
        hour, the window the paper reports -- identical to the DL predictor's
        convention, so every model is scored on the same cells.
        """
        times = _resolve_evaluation_times(actual, times)
        target = (
            np.asarray(distances, dtype=float)
            if distances is not None
            else actual.distances
        )
        predicted = self.predict(times, distances=target)
        actual_restricted = actual.restrict_times(times).restrict_distances(target)
        table = build_accuracy_table(
            predicted,
            actual_restricted,
            times=times,
            distances=[float(d) for d in target],
            metadata={"model": self.model_name, "parameters": repr(self.parameters)},
        )
        return PredictionResult(
            predicted=predicted,
            actual=actual_restricted,
            accuracy_table=table,
            parameters=self.parameters,
            diagnostics={"calibration": self.calibration_details},
            model=self.model_name,
        )


class BatchFitter(ABC):
    """Accumulates story fits and evaluates them together.

    The incremental shape the service layer needs: ``fit_story`` may raise
    per story (isolating bad surfaces from shard-mates), then ``evaluate``
    scores every successfully fitted story -- in one joint batched solve
    when the model supports it.
    """

    #: Registry name of the model this fitter belongs to.
    model_name: str = "abstract"

    @abstractmethod
    def fit_story(
        self,
        name: str,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> None:
        """Fit one story; re-fitting an existing name replaces its state."""

    @property
    @abstractmethod
    def story_names(self) -> tuple[str, ...]:
        """Names of every fitted story, in insertion order."""

    @abstractmethod
    def parameters_for(self, name: str):
        """Fitted parameters of one story (after :meth:`fit_story`)."""

    @abstractmethod
    def evaluate(
        self,
        actuals: "Mapping[str, DensitySurface]",
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> "dict[str, PredictionResult]":
        """Score every fitted story against its observed surface."""


class SequentialBatchFitter(BatchFitter):
    """Default corpus path: one :meth:`PredictionModel.fit` per story.

    Models without a cross-story batched solve get corpus scoring for free
    through this fitter; each story is fitted and evaluated independently,
    which makes service results trivially bit-identical to the direct
    ``fit`` + ``evaluate`` path.
    """

    def __init__(self, model: "PredictionModel", spec: "ModelSpec | None") -> None:
        self._model = model
        self._spec = spec
        self.model_name = model.name
        self._fitted: "dict[str, FittedModel]" = {}

    def fit_story(
        self,
        name: str,
        observed: DensitySurface,
        training_times: "Sequence[float] | None" = None,
    ) -> None:
        self._fitted[name] = self._model.fit(observed, self._spec, training_times)

    @property
    def story_names(self) -> tuple[str, ...]:
        return tuple(self._fitted)

    def parameters_for(self, name: str):
        self._require_fitted()
        return self._fitted[name].parameters

    def fitted_for(self, name: str) -> FittedModel:
        """The per-story :class:`FittedModel` (after :meth:`fit_story`)."""
        self._require_fitted()
        return self._fitted[name]

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError.for_model(f"the {self.model_name!r} batch fitter")

    def evaluate(
        self,
        actuals: "Mapping[str, DensitySurface]",
        times: "Sequence[float] | None" = None,
        distances: "Sequence[float] | None" = None,
    ) -> "dict[str, PredictionResult]":
        self._require_fitted()
        missing = [name for name in self._fitted if name not in actuals]
        if missing:
            raise KeyError(f"no observed surface supplied for stories {missing}")
        return {
            name: fitted.evaluate(actuals[name], times, distances)
            for name, fitted in self._fitted.items()
        }


class PredictionModel(ABC):
    """A named, registrable prediction model.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`fit`; models with a batched corpus path additionally override
    :meth:`batch_fitter`.
    """

    #: Registry name (``repro models`` lists it; ``--model`` selects it).
    name: str = "abstract"
    #: One-line summary shown by ``repro models``.
    description: str = ""

    @abstractmethod
    def fit(
        self,
        observed: DensitySurface,
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> FittedModel:
        """Fit one story from its training window; returns the fitted state.

        ``training_times=None`` defaults to the story's first six observed
        hours (every model shares the DL predictor's convention).
        """

    def batch_fitter(self, spec: "ModelSpec | None" = None) -> BatchFitter:
        """A fresh corpus fitter; override for a genuinely batched fast path."""
        return SequentialBatchFitter(self, spec)

    def fit_batch(
        self,
        surfaces: "Mapping[str, DensitySurface]",
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> BatchFitter:
        """Fit every story of a corpus; the optional fast path of the protocol.

        Returns the populated :class:`BatchFitter`, ready to ``evaluate``.
        """
        if not surfaces:
            raise ValueError("at least one story surface is required")
        fitter = self.batch_fitter(spec)
        for name, observed in surfaces.items():
            fitter.fit_story(name, observed, training_times)
        return fitter
