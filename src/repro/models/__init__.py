"""The unified model API: protocol, registry and the built-in models.

Any predictor -- the paper's Diffusive Logistic model, each of its
baselines, or a model registered at runtime -- is addressed by name
through one registry and speaks one protocol
(:class:`~repro.models.base.PredictionModel` /
:class:`~repro.models.base.FittedModel`), so the whole serving stack
(:class:`~repro.service.service.PredictionService`, the daemon, the CLI)
is model-agnostic:

>>> from repro.models import get_model
>>> fitted = get_model("logistic").fit(observed)            # doctest: +SKIP
>>> fitted.evaluate(observed).overall_accuracy              # doctest: +SKIP

Registered on import:

* ``dl`` -- the Diffusive Logistic PDE model (bit-identical to the classic
  ``DiffusionPredictor`` / ``BatchPredictor`` paths, batched corpus solves).
* ``logistic`` -- per-distance independent logistic curves.
* ``sis`` -- the SIS epidemic baseline.
* ``linear-influence`` -- the Linear-Influence-style counting baseline.

Graph-seeded IC / LT adapters need a graph, so they register per graph via
:func:`~repro.models.graph.register_graph_models`.  Third-party models
register with :func:`register_model`; :func:`~repro.models.compare.compare_models`
scores one corpus under several models (``repro compare``).
"""

from repro.core.config import CalibrationConfig, ModelSpec, SolverConfig
from repro.core.errors import NotFittedError, UnknownModelError
from repro.models.base import (
    BatchFitter,
    FittedModel,
    ModelParameters,
    PredictionModel,
    SequentialBatchFitter,
)
from repro.models.compare import ModelComparison, compare_models
from repro.models.dl import DiffusiveLogisticPredictionModel
from repro.models.graph import GraphSeededModel, register_graph_models
from repro.models.registry import (
    available_models,
    get_model,
    model_descriptions,
    register_model,
    unregister_model,
)
from repro.models.temporal import (
    LinearInfluenceModel,
    PerDistanceLogisticModel,
    SISModel,
)

# Built-in registrations.  overwrite=True keeps module re-imports (e.g.
# importlib.reload in tests) from tripping the duplicate guard.
register_model("dl", DiffusiveLogisticPredictionModel, overwrite=True)
register_model("logistic", PerDistanceLogisticModel, overwrite=True)
register_model("sis", SISModel, overwrite=True)
register_model("linear-influence", LinearInfluenceModel, overwrite=True)

__all__ = [
    "PredictionModel",
    "FittedModel",
    "BatchFitter",
    "SequentialBatchFitter",
    "ModelParameters",
    "ModelSpec",
    "SolverConfig",
    "CalibrationConfig",
    "NotFittedError",
    "UnknownModelError",
    "register_model",
    "unregister_model",
    "get_model",
    "available_models",
    "model_descriptions",
    "DiffusiveLogisticPredictionModel",
    "PerDistanceLogisticModel",
    "SISModel",
    "LinearInfluenceModel",
    "GraphSeededModel",
    "register_graph_models",
    "ModelComparison",
    "compare_models",
]
