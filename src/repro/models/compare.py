"""Head-to-head model comparison: one corpus, several models, one table.

The paper's headline claim is the DL model beating its baselines on
hour-2..6 prediction accuracy (Tables I / II show the DL model; the
ablation compares it against the temporal-only models).
:func:`compare_models` reproduces that comparison for any corpus and any
set of registered models: every model fits and scores the same stories on
the same evaluation cells, and the result renders as a Table-II-style
accuracy table -- one row per model, the mean overall accuracy, and the
per-story accuracies side by side.  ``repro compare`` is the CLI wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.config import CalibrationConfig, ModelSpec, SolverConfig
from repro.core.prediction import PredictionResult
from repro.models.registry import get_model


@dataclass
class ModelComparison:
    """Per-model, per-story results of one head-to-head comparison.

    Attributes
    ----------
    results:
        ``model name -> story name -> PredictionResult`` for every story
        the model scored.
    failures:
        ``model name -> story name -> error message`` for stories a model
        could not fit or score (e.g. the Linear Influence model on a
        two-hour training window); failures never abort the comparison.
    """

    results: "dict[str, dict[str, PredictionResult]]" = field(default_factory=dict)
    failures: "dict[str, dict[str, str]]" = field(default_factory=dict)

    @property
    def model_names(self) -> tuple[str, ...]:
        """Models in the comparison, in the order they were requested."""
        return tuple(self.results)

    @property
    def story_names(self) -> tuple[str, ...]:
        """Every story scored by at least one model."""
        seen: "dict[str, None]" = {}
        for per_story in self.results.values():
            for name in per_story:
                seen.setdefault(name)
        return tuple(seen)

    def overall_accuracy(self, model: str) -> float:
        """Mean of the model's per-story overall accuracies."""
        per_story = self.results[model]
        if not per_story:
            raise ValueError(f"model {model!r} scored no stories")
        return float(
            np.mean([result.overall_accuracy for result in per_story.values()])
        )

    def summary_rows(self) -> "list[dict]":
        """One row per model, best overall accuracy first (Table-II style)."""

        def sort_key(model: str) -> float:
            return self.overall_accuracy(model) if self.results[model] else -1.0

        rows = []
        for model in sorted(self.results, key=sort_key, reverse=True):
            per_story = self.results[model]
            row: dict = {"model": model}
            row["overall_accuracy"] = (
                self.overall_accuracy(model) if per_story else float("nan")
            )
            for story in self.story_names:
                result = per_story.get(story)
                row[story] = result.overall_accuracy if result is not None else None
            rows.append(row)
        return rows

    def to_json_dict(self) -> dict:
        """Machine-readable comparison (``repro compare --json``)."""
        payload: dict = {"models": {}, "failures": self.failures}
        for model, per_story in self.results.items():
            payload["models"][model] = {
                "overall_accuracy": (
                    self.overall_accuracy(model) if per_story else None
                ),
                "stories": {
                    story: {
                        "overall_accuracy": result.overall_accuracy,
                        "parameters": result.parameters.to_json_dict(),
                    }
                    for story, result in per_story.items()
                },
            }
        return payload


def compare_models(
    surfaces: "Mapping[str, DensitySurface]",
    models: Sequence[str] = ("dl", "logistic", "sis"),
    training_times: "Sequence[float] | None" = None,
    evaluation_times: "Sequence[float] | None" = None,
    solver: "SolverConfig | None" = None,
    calibration: "CalibrationConfig | None" = None,
    specs: "Mapping[str, ModelSpec] | None" = None,
) -> ModelComparison:
    """Score one corpus under several registered models.

    Every model sees the same surfaces, training window and evaluation
    times (each model's corpus fast path is used, so the ``dl`` entry runs
    its batched spatial-group solve).  Per-story failures of one model are
    recorded in :attr:`ModelComparison.failures` without disturbing the
    other models.

    Parameters
    ----------
    surfaces:
        Story name -> observed density surface.
    models:
        Registry names to compare (unknown names raise
        :class:`~repro.core.errors.UnknownModelError`).
    training_times, evaluation_times:
        The shared windows; defaults mirror the predictors (first six
        observed hours / hours 2..6).
    solver, calibration:
        Configs applied to every model without an explicit spec.
    specs:
        Optional per-model :class:`ModelSpec` overrides (e.g. explicit DL
        parameters).
    """
    if not surfaces:
        raise ValueError("at least one story surface is required")
    comparison = ModelComparison()
    for name in dict.fromkeys(models):  # dedup, preserve order
        model = get_model(name)
        if specs is not None and name in specs:
            spec = specs[name]
        else:
            spec = ModelSpec(
                name=name,
                solver=solver if solver is not None else SolverConfig(),
                calibration=(
                    calibration if calibration is not None else CalibrationConfig()
                ),
            )
        comparison.results[name] = {}
        failures = comparison.failures.setdefault(name, {})
        fitter = model.batch_fitter(spec)
        for story, surface in surfaces.items():
            try:
                fitter.fit_story(story, surface, training_times)
            except Exception as error:  # noqa: BLE001 - per-story failure
                failures[story] = str(error)
        fitted = fitter.story_names
        if not fitted:
            continue
        try:
            comparison.results[name] = fitter.evaluate(
                {story: surfaces[story] for story in fitted},
                times=evaluation_times,
            )
        except Exception as error:  # noqa: BLE001 - model-wide failure
            for story in fitted:
                failures[story] = str(error)
        if not failures:
            del comparison.failures[name]
    return comparison
