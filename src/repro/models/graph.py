"""Graph-seeded IC / LT adapters: deriving density surfaces from cascades.

The Independent Cascade and Linear Threshold models
(:mod:`repro.baselines.independent_cascade`,
:mod:`repro.baselines.linear_threshold`) operate on the follower graph, not
on density surfaces, so they cannot implement the protocol's
surface-in/surface-out shape directly.  :class:`GraphSeededModel` bridges
them: bound to a graph and a seed user, it runs the cascade process once,
converts the activation rounds into a per-distance-group density surface
(round index standing in for elapsed hours, cumulative activated fraction
of each hop-distance group as the density), and serves that surface
through the standard ``predict`` / ``evaluate`` protocol.

Because the adapters need a graph, they are not registered by default;
:func:`register_graph_models` registers ``ic`` and ``lt`` bound to a given
graph and seed, after which they are selectable everywhere a model name
goes (``--model``, manifests, ``repro compare``, the service).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.baselines.independent_cascade import independent_cascade
from repro.baselines.linear_threshold import linear_threshold
from repro.cascade.density import DensitySurface
from repro.core.config import ModelSpec
from repro.models.base import (
    FittedModel,
    ModelParameters,
    PredictionModel,
    coerce_spec,
)
from repro.models.registry import register_model
from repro.network.distance import friendship_hop_distances
from repro.network.graph import SocialGraph

_PROCESSES = ("ic", "lt")


class GraphSeededFittedModel(FittedModel):
    """A simulated cascade sampled as a per-distance density surface."""

    def __init__(
        self,
        model_name: str,
        parameters: ModelParameters,
        distances: np.ndarray,
        initial_time: float,
        round_densities: np.ndarray,
        rounds_per_hour: float,
        unit: str,
    ) -> None:
        self.model_name = model_name
        self._parameters = parameters
        self._distances = distances
        self._initial_time = initial_time
        #: ``(rounds + 1, distances)`` cumulative densities; row 0 is round 0.
        self._round_densities = round_densities
        self._rounds_per_hour = rounds_per_hour
        self._unit = unit

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    @property
    def calibration_details(self) -> dict:
        return {
            "calibrated": False,
            "rounds": int(self._round_densities.shape[0] - 1),
        }

    def predict(
        self,
        times: Sequence[float],
        distances: "Sequence[float] | None" = None,
    ) -> DensitySurface:
        times = sorted(float(t) for t in times)
        max_round = self._round_densities.shape[0] - 1
        rounds = np.clip(
            np.floor(
                (np.asarray(times) - self._initial_time) * self._rounds_per_hour
                + 1e-9
            ).astype(int),
            0,
            max_round,
        )
        values = self._round_densities[rounds]
        surface = DensitySurface(
            distances=self._distances.copy(),
            times=np.asarray(times),
            values=values,
            group_sizes=np.ones(self._distances.size),
            unit=self._unit,
            metadata={"source": f"{self.model_name}_graph_seeded"},
        )
        if distances is not None:
            surface = surface.restrict_distances(np.asarray(distances, dtype=float))
        return surface


class GraphSeededModel(PredictionModel):
    """Adapt a graph-level cascade process (IC or LT) to the model protocol.

    Parameters
    ----------
    process:
        ``"ic"`` (Independent Cascade) or ``"lt"`` (Linear Threshold).
    graph:
        The follower graph the process runs on.
    seed_user:
        The initially active user (the story's initiator).
    activation_probability:
        IC edge activation probability (ignored by LT).
    rounds_per_hour:
        How many process rounds correspond to one observed hour; the
        activation rounds are mapped onto the time axis with this rate.
    rng_seed:
        Seed of the process' random generator -- fixed so ``fit`` is
        deterministic and service results match the direct path bit for bit.
    name:
        Registry name; defaults to the process name.
    """

    _PARAMS = ("activation_probability", "rounds_per_hour", "rng_seed")

    def __init__(
        self,
        process: str,
        graph: SocialGraph,
        seed_user: int,
        activation_probability: float = 0.1,
        rounds_per_hour: float = 1.0,
        rng_seed: int = 0,
        name: "str | None" = None,
    ) -> None:
        if process not in _PROCESSES:
            raise ValueError(
                f"unknown process {process!r}; expected one of {_PROCESSES}"
            )
        if rounds_per_hour <= 0:
            raise ValueError(f"rounds_per_hour must be > 0, got {rounds_per_hour}")
        self._process = process
        self._graph = graph
        self._seed_user = int(seed_user)
        self._activation_probability = float(activation_probability)
        self._rounds_per_hour = float(rounds_per_hour)
        self._rng_seed = int(rng_seed)
        self.name = name if name is not None else process
        self.description = (
            f"graph-seeded {'Independent Cascade' if process == 'ic' else 'Linear Threshold'} "
            f"model (Kempe et al.), activation rounds mapped to a density surface"
        )

    def fit(
        self,
        observed: DensitySurface,
        spec: "ModelSpec | None" = None,
        training_times: "Sequence[float] | None" = None,
    ) -> GraphSeededFittedModel:
        spec = coerce_spec(spec, self.name, self._PARAMS)
        probability = float(
            spec.params.get("activation_probability", self._activation_probability)
        )
        rounds_per_hour = float(
            spec.params.get("rounds_per_hour", self._rounds_per_hour)
        )
        rng_seed = int(spec.params.get("rng_seed", self._rng_seed))
        if training_times is not None and len(list(training_times)) > 0:
            initial_time = sorted(float(t) for t in training_times)[0]
        else:
            if observed.times.size == 0:
                raise ValueError("the observed surface has no times")
            initial_time = float(observed.times[0])

        hops = friendship_hop_distances(self._graph, self._seed_user)
        rng = np.random.default_rng(rng_seed)
        if self._process == "ic":
            activation = independent_cascade(
                self._graph, {self._seed_user}, probability, rng
            )
        else:
            activation = linear_threshold(self._graph, {self._seed_user}, rng=rng)

        distances = observed.distances.astype(float)
        max_round = max(activation.values(), default=0)
        counts = np.zeros((max_round + 1, distances.size))
        group_sizes = np.zeros(distances.size)
        for j, distance in enumerate(distances):
            group = [user for user, hop in hops.items() if hop == int(round(distance))]
            group_sizes[j] = len(group)
            for user in group:
                activated_round = activation.get(user)
                if activated_round is not None:
                    counts[min(activated_round, max_round):, j] += 1
        scale = 100.0 if observed.unit == "percent" else 1.0
        densities = counts / np.maximum(group_sizes, 1.0) * scale
        parameters = ModelParameters(
            self.name,
            process=self._process,
            seed_user=self._seed_user,
            activation_probability=probability,
            rounds_per_hour=rounds_per_hour,
            rng_seed=rng_seed,
            activated_users=len(activation),
        )
        return GraphSeededFittedModel(
            self.name,
            parameters,
            distances,
            initial_time,
            densities,
            rounds_per_hour,
            observed.unit,
        )


def register_graph_models(
    graph: SocialGraph,
    seed_user: int,
    activation_probability: float = 0.1,
    rounds_per_hour: float = 1.0,
    rng_seed: int = 0,
    overwrite: bool = True,
    params: "Mapping[str, object] | None" = None,
) -> tuple[str, str]:
    """Register ``ic`` and ``lt`` models bound to a graph and seed user.

    Returns the two registered names.  ``overwrite=True`` (the default)
    replaces previous bindings, since re-binding to a new graph is the
    common workflow.
    """
    del params  # reserved for future per-process options

    def make(process: str):
        def factory() -> GraphSeededModel:
            return GraphSeededModel(
                process,
                graph,
                seed_user,
                activation_probability=activation_probability,
                rounds_per_hour=rounds_per_hour,
                rng_seed=rng_seed,
            )

        return factory

    for process in _PROCESSES:
        register_model(process, make(process), overwrite=overwrite)
    return _PROCESSES
