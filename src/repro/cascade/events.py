"""Event and story record types for the cascade layer.

These mirror the structure of the Digg 2009 dataset described in Section
III-A of the paper: each story has an initiator (the first voter who brought
the news to the site) and a list of timestamped votes; timestamps are
reported in hours since submission (the paper's dataset has one-second
granularity; hours are what the density surface is computed on).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Vote:
    """A single vote (a "digg") on a story.

    Attributes
    ----------
    time:
        Hours since the story was submitted; non-negative.  The initiator's
        own vote is at time 0.0.
    user:
        Id of the voting user.
    """

    time: float
    user: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"vote time must be non-negative, got {self.time}")
        if self.user < 0:
            raise ValueError(f"user id must be non-negative, got {self.user}")


@dataclass
class Story:
    """A news story and its cascade of votes.

    Attributes
    ----------
    story_id:
        Unique identifier of the story.
    initiator:
        User id of the submitter (the information source ``s``).
    votes:
        All votes, including the initiator's vote at time 0; kept sorted by
        time by :meth:`add_vote`.
    """

    story_id: int
    initiator: int
    votes: list[Vote] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.story_id < 0:
            raise ValueError(f"story_id must be non-negative, got {self.story_id}")
        if self.initiator < 0:
            raise ValueError(f"initiator id must be non-negative, got {self.initiator}")
        self.votes = sorted(self.votes)

    def add_vote(self, vote: Vote) -> None:
        """Append a vote, keeping the vote list sorted by time."""
        self.votes.append(vote)
        if len(self.votes) > 1 and vote.time < self.votes[-2].time:
            self.votes.sort()

    @property
    def num_votes(self) -> int:
        """Total number of votes, including the initiator's."""
        return len(self.votes)

    @property
    def voters(self) -> set[int]:
        """Set of distinct users who voted on this story."""
        return {vote.user for vote in self.votes}

    def votes_until(self, time: float) -> list[Vote]:
        """All votes cast at or before ``time`` (hours)."""
        return [vote for vote in self.votes if vote.time <= time]

    def voters_until(self, time: float) -> set[int]:
        """Distinct voters up to and including ``time``."""
        return {vote.user for vote in self.votes if vote.time <= time}

    def vote_times(self) -> list[float]:
        """Sorted list of all vote timestamps."""
        return [vote.time for vote in self.votes]

    def first_vote_time(self, user: int) -> "float | None":
        """Time of the user's first vote, or None if the user never voted."""
        for vote in self.votes:
            if vote.user == user:
                return vote.time
        return None
