"""Stochastic cascade simulator for Digg-like information spreading.

The simulator reproduces the two information channels the paper describes for
Digg (Section III-A):

1. **Follower spreading** -- when a user votes, all of their followers see the
   story in their feed; each exposed follower then votes with an
   exponentially distributed delay whose hazard decays as the story ages.
2. **Front-page / random discovery** -- once the story collects enough votes
   it is promoted; from then on users anywhere in the graph (weighted by an
   optional discovery bias) can discover and vote for it, independent of the
   follower graph.  This is the paper's "random walk" channel and the reason
   the density at hop distance 3 can exceed the density at distance 2 for a
   very popular story (Figure 3a).

The simulation is a fixed-step tau-leaping scheme: in each step of ``dt``
hours every exposed non-voter votes with probability
``1 - exp(-hazard * dt)`` and the number of front-page discoveries is Poisson
with the exact integrated intensity.  All randomness flows through a caller
supplied ``numpy.random.Generator`` so cascades are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cascade.events import Story, Vote
from repro.cascade.frontpage import FrontPageModel
from repro.network.graph import SocialGraph


@dataclass(frozen=True)
class CascadeConfig:
    """Parameters of a single story's cascade.

    Attributes
    ----------
    follow_hazard:
        Base rate (per hour) at which an exposed follower votes.  The
        effective hazard is multiplied by the staleness factor
        ``exp(-interest_decay * t)`` and grows sub-linearly with the number of
        voting followees (social reinforcement).
    reinforcement:
        Additional hazard per extra voting followee beyond the first,
        as a fraction of ``follow_hazard``.
    interest_decay:
        Exponential decay rate (per hour) of user interest in the story;
        controls when the density curves flatten out (popular stories in the
        paper stabilise after 10-20 hours).
    front_page:
        The promotion / random-discovery model.
    horizon_hours:
        Length of the simulated observation window (the paper uses 50 hours).
    time_step:
        Tau-leaping step in hours.
    """

    follow_hazard: float = 0.08
    reinforcement: float = 0.3
    interest_decay: float = 0.12
    front_page: FrontPageModel = field(default_factory=FrontPageModel)
    horizon_hours: float = 50.0
    time_step: float = 0.25

    def __post_init__(self) -> None:
        if self.follow_hazard < 0:
            raise ValueError("follow_hazard must be non-negative")
        if self.reinforcement < 0:
            raise ValueError("reinforcement must be non-negative")
        if self.interest_decay < 0:
            raise ValueError("interest_decay must be non-negative")
        if self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if self.time_step <= 0 or self.time_step > self.horizon_hours:
            raise ValueError("time_step must be positive and no larger than the horizon")


class CascadeSimulator:
    """Simulates vote cascades for stories on a follower graph."""

    def __init__(self, graph: SocialGraph, config: "CascadeConfig | None" = None) -> None:
        self._graph = graph
        self._config = config if config is not None else CascadeConfig()

    @property
    def graph(self) -> SocialGraph:
        """The follower graph cascades run on."""
        return self._graph

    @property
    def config(self) -> CascadeConfig:
        """The cascade configuration."""
        return self._config

    def simulate(
        self,
        story_id: int,
        initiator: int,
        rng: np.random.Generator,
        discovery_bias: "Mapping[int, float] | None" = None,
    ) -> Story:
        """Simulate one story's cascade and return it as a :class:`Story`.

        Parameters
        ----------
        story_id:
            Identifier recorded on the resulting story.
        initiator:
            The submitting user; votes at time 0 and seeds the cascade.
        rng:
            Random generator driving all stochastic choices.
        discovery_bias:
            Optional per-user weights for front-page discovery sampling.
            Users missing from the mapping get weight 1.0.  This models the
            empirical fact that browsing-heavy users (who discover stories on
            the front page rather than through their feed) are not uniformly
            spread over the distance groups.
        """
        if not self._graph.has_user(initiator):
            raise KeyError(f"initiator {initiator} is not in the graph")

        config = self._config
        story = Story(story_id=story_id, initiator=initiator, votes=[Vote(time=0.0, user=initiator)])

        voted: set[int] = {initiator}
        # exposure[user] = number of voting followees (reinforcement count).
        exposure: dict[int, int] = {}
        for follower in self._graph.followers(initiator):
            exposure[follower] = 1

        promotion_time: "float | None" = None
        users = np.fromiter(self._graph.users(), dtype=np.int64, count=self._graph.num_users)
        weights = np.ones(users.size)
        if discovery_bias is not None:
            user_index = {int(u): i for i, u in enumerate(users)}
            for user, weight in discovery_bias.items():
                if weight < 0:
                    raise ValueError("discovery bias weights must be non-negative")
                if user in user_index:
                    weights[user_index[user]] = weight

        time = 0.0
        dt = config.time_step
        while time < config.horizon_hours - 1e-9:
            step = min(dt, config.horizon_hours - time)
            staleness = float(np.exp(-config.interest_decay * time))

            # --- follower channel -------------------------------------- #
            newly_voted: list[int] = []
            if exposure:
                exposed_users = list(exposure.keys())
                counts = np.asarray([exposure[u] for u in exposed_users], dtype=float)
                hazards = (
                    config.follow_hazard
                    * (1.0 + config.reinforcement * (counts - 1.0))
                    * staleness
                )
                vote_probability = 1.0 - np.exp(-hazards * step)
                draws = rng.random(len(exposed_users))
                for user, draw, probability in zip(exposed_users, draws, vote_probability):
                    if draw < probability:
                        newly_voted.append(user)

            # --- front-page channel ------------------------------------ #
            if promotion_time is None and config.front_page.is_promoted(len(voted)):
                promotion_time = time
            if promotion_time is not None:
                expected = config.front_page.expected_discoveries(time - promotion_time, step)
                num_discoveries = int(rng.poisson(expected)) if expected > 0 else 0
                if num_discoveries > 0:
                    discovered = self._sample_discoveries(
                        rng, users, weights, voted, num_discoveries
                    )
                    newly_voted.extend(discovered)

            # --- commit votes and propagate exposure -------------------- #
            vote_time = time + step
            for user in newly_voted:
                if user in voted:
                    continue
                voted.add(user)
                exposure.pop(user, None)
                story.add_vote(Vote(time=vote_time, user=user))
                for follower in self._graph.followers(user):
                    if follower not in voted:
                        exposure[follower] = exposure.get(follower, 0) + 1

            time += step

        return story

    @staticmethod
    def _sample_discoveries(
        rng: np.random.Generator,
        users: np.ndarray,
        weights: np.ndarray,
        voted: set[int],
        count: int,
    ) -> list[int]:
        """Sample up to ``count`` distinct non-voters, weighted by discovery bias."""
        mask = np.fromiter((int(u) not in voted for u in users), dtype=bool, count=users.size)
        candidates = users[mask]
        if candidates.size == 0:
            return []
        candidate_weights = weights[mask]
        total = candidate_weights.sum()
        if total <= 0:
            return []
        count = min(count, candidates.size)
        chosen = rng.choice(
            candidates, size=count, replace=False, p=candidate_weights / total
        )
        return [int(u) for u in np.atleast_1d(chosen)]
