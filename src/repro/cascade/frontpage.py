"""Front-page promotion model.

Digg promotes popular submissions to its front page; from then on users who do
not follow any earlier voter can still discover and vote for the story
(through the front page or the site's search).  The paper explicitly relies
on this second channel to justify the random-walk diffusion term of the DL
model ("a user, who is not a follower of the users who have voted a news, can
also vote for the same news after the news is promoted to the front page").

``FrontPageModel`` captures the promotion rule (a vote-count threshold) and
the rate at which non-followers discover a promoted story, with an
exponential staleness decay so cascades saturate after tens of hours as in
Figures 3 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrontPageModel:
    """Promotion and random-discovery behaviour of the front page.

    Attributes
    ----------
    promotion_threshold:
        Number of votes after which the story is promoted to the front page.
    discovery_rate:
        Expected number of random discoveries per hour immediately after
        promotion (before staleness decay).
    staleness_decay:
        Exponential decay rate (per hour) of the discovery rate after
        promotion; larger values make the cascade saturate sooner.
    """

    promotion_threshold: int = 20
    discovery_rate: float = 50.0
    staleness_decay: float = 0.15

    def __post_init__(self) -> None:
        if self.promotion_threshold < 0:
            raise ValueError("promotion_threshold must be non-negative")
        if self.discovery_rate < 0:
            raise ValueError("discovery_rate must be non-negative")
        if self.staleness_decay < 0:
            raise ValueError("staleness_decay must be non-negative")

    def is_promoted(self, vote_count: int) -> bool:
        """Return True once the story has enough votes to hit the front page."""
        return vote_count >= self.promotion_threshold

    def discovery_intensity(self, hours_since_promotion: float) -> float:
        """Expected discoveries per hour at a given age after promotion."""
        if hours_since_promotion < 0:
            return 0.0
        return self.discovery_rate * np.exp(-self.staleness_decay * hours_since_promotion)

    def expected_discoveries(
        self, hours_since_promotion: float, dt: float
    ) -> float:
        """Expected number of random discoveries in ``[t, t + dt]`` after promotion.

        Uses the exact integral of the exponentially decaying intensity so the
        result is insensitive to the simulation time step.
        """
        if dt <= 0:
            return 0.0
        start = max(0.0, hours_since_promotion)
        if self.staleness_decay == 0:
            return self.discovery_rate * dt
        end = start + dt
        return (
            self.discovery_rate
            / self.staleness_decay
            * (np.exp(-self.staleness_decay * start) - np.exp(-self.staleness_decay * end))
        )
