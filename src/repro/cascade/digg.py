"""Synthetic Digg-like corpus: the substitution for the Digg 2009 dataset.

The paper evaluates the DL model on a crawl of Digg from June 2009 (3553
front-page stories, ~3 million votes, 139,409 users) and reports detailed
results for four representative stories:

========  ==============  =================
story     votes (paper)   role
========  ==============  =================
``s1``    24,099          most popular story
``s2``    8,521           second most popular
``s3``    5,988           mid-size story
``s4``    1,618           small story
========  ==============  =================

That crawl is not redistributable, so this module builds a *synthetic*
Digg-like corpus with the same moving parts: a follower graph
(:func:`repro.network.generators.generate_digg_like_graph`), a population of
background stories that gives every active user a voting history (needed by
the shared-interest metric), and four representative stories whose cascade
parameters are chosen so the resulting density surfaces have the qualitative
structure reported in Figures 2-5:

* most users sit at hop distance 2-5 from the initiators, peaking at 3;
* densities grow over time and saturate -- fast for popular stories (~10 h
  for s1), slower for less popular ones;
* for s1, the density at hop distance 3 exceeds the density at distance 2
  (the front-page channel), while for s4 density decreases monotonically
  with distance (follower links dominate);
* with the shared-interest metric the density decreases monotonically with
  the interest-distance group for every story.

The corpus is scaled down (thousands rather than 139k users); the DL model
only consumes densities, which are scale-free ratios, so the reduction does
not change which code paths are exercised.  See DESIGN.md for the full
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.cascade.dataset import CascadeDataset
from repro.cascade.density import DensitySurface, compute_density_surface
from repro.cascade.events import Story
from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.network.distance import distance_histogram, friendship_hop_distances
from repro.network.generators import DiggLikeGraphConfig, generate_digg_like_graph
from repro.network.graph import SocialGraph
from repro.network.interests import interest_distance_groups, interest_distances_from_source

REPRESENTATIVE_STORY_VOTES: dict[str, int] = {
    "s1": 24099,
    "s2": 8521,
    "s3": 5988,
    "s4": 1618,
}
"""Vote counts of the four representative stories in the original dataset."""

REPRESENTATIVE_STORY_NAMES: tuple[str, ...] = tuple(REPRESENTATIVE_STORY_VOTES)


@dataclass(frozen=True)
class SyntheticDiggConfig:
    """Configuration of the synthetic corpus.

    Attributes
    ----------
    num_users:
        Number of users in the follower graph (scaled down from 139,409).
    num_background_stories:
        Number of additional small stories simulated only to give users a
        voting history for the shared-interest metric.
    horizon_hours:
        Observation window per story (the paper uses 50 hours).
    seed:
        Master seed; every cascade derives its own child generator from it.
    graph_config:
        Parameters of the follower-graph generator; ``None`` uses a
        Digg-like default scaled to ``num_users``.
    """

    num_users: int = 6000
    num_background_stories: int = 60
    horizon_hours: float = 50.0
    seed: int = 2009
    graph_config: "DiggLikeGraphConfig | None" = None

    def __post_init__(self) -> None:
        if self.num_users < 100:
            raise ValueError("the synthetic corpus needs at least 100 users")
        if self.num_background_stories < 0:
            raise ValueError("num_background_stories must be non-negative")
        if self.horizon_hours <= 1:
            raise ValueError("horizon_hours must exceed 1 hour")

    def resolved_graph_config(self) -> DiggLikeGraphConfig:
        """The graph configuration actually used (default scaled to num_users)."""
        if self.graph_config is not None:
            return self.graph_config
        return DiggLikeGraphConfig(
            num_users=self.num_users,
            initial_core=8,
            follows_per_user=2,
            reciprocity_probability=0.3,
            triadic_closure_probability=0.15,
            preferential_fraction=0.45,
            recent_window=max(30, self.num_users // 40),
            seed=self.seed,
        )


def _story_cascade_config(name: str, num_users: int, horizon_hours: float) -> CascadeConfig:
    """Per-story cascade parameters reproducing the paper's qualitative shapes.

    The hazards and front-page rates are chosen so that, on the default
    2,500-user corpus, the resulting density surfaces match the scale and
    ordering of Figures 3 and 5: the most popular story s1 peaks around
    15-20% density at hop distance 1 and saturates within ~10 hours, while
    the small story s4 stays below a few percent and keeps growing for most
    of the 50-hour window.
    """
    population = float(num_users)
    if name == "s1":
        front_page = FrontPageModel(
            promotion_threshold=2,
            discovery_rate=0.035 * population,
            staleness_decay=0.40,
        )
        return CascadeConfig(
            follow_hazard=0.050,
            reinforcement=0.4,
            interest_decay=0.40,
            front_page=front_page,
            horizon_hours=horizon_hours,
            time_step=0.25,
        )
    if name == "s2":
        front_page = FrontPageModel(
            promotion_threshold=4,
            discovery_rate=0.005 * population,
            staleness_decay=0.18,
        )
        return CascadeConfig(
            follow_hazard=0.035,
            reinforcement=0.35,
            interest_decay=0.22,
            front_page=front_page,
            horizon_hours=horizon_hours,
            time_step=0.25,
        )
    if name == "s3":
        front_page = FrontPageModel(
            promotion_threshold=6,
            discovery_rate=0.0035 * population,
            staleness_decay=0.13,
        )
        return CascadeConfig(
            follow_hazard=0.007,
            reinforcement=0.35,
            interest_decay=0.14,
            front_page=front_page,
            horizon_hours=horizon_hours,
            time_step=0.25,
        )
    if name == "s4":
        front_page = FrontPageModel(
            promotion_threshold=3,
            discovery_rate=0.0009 * population,
            staleness_decay=0.08,
        )
        return CascadeConfig(
            follow_hazard=0.004,
            reinforcement=0.3,
            interest_decay=0.07,
            front_page=front_page,
            horizon_hours=horizon_hours,
            time_step=0.25,
        )
    raise KeyError(f"unknown representative story {name!r}")


def _background_cascade_config(num_users: int, horizon_hours: float) -> CascadeConfig:
    """Mid-size cascades that give users a voting history for the interest metric.

    The paper's corpus averages ~21 votes per user across 3,553 stories; with
    only a few dozen background stories the reproduction needs each of them
    to reach a reasonable share of the population so that voting histories
    are rich enough for the Jaccard interest distance to be informative.
    """
    front_page = FrontPageModel(
        promotion_threshold=2,
        discovery_rate=0.02 * num_users,
        staleness_decay=0.15,
    )
    return CascadeConfig(
        follow_hazard=0.035,
        reinforcement=0.3,
        interest_decay=0.15,
        front_page=front_page,
        horizon_hours=min(horizon_hours, 24.0),
        time_step=0.5,
    )


class SyntheticDiggDataset:
    """The synthetic corpus plus the derived views used by the experiments.

    Use :func:`build_synthetic_digg_dataset` to obtain a (cached) instance.
    """

    def __init__(
        self,
        config: SyntheticDiggConfig,
        dataset: CascadeDataset,
        representative_ids: dict[str, int],
    ) -> None:
        self._config = config
        self._dataset = dataset
        self._representative_ids = dict(representative_ids)
        self._hop_distance_cache: dict[str, dict[int, int]] = {}
        self._interest_group_cache: dict[tuple[str, int], dict[int, int]] = {}
        self._voting_histories: "dict[int, set[int]] | None" = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SyntheticDiggConfig:
        """The configuration this corpus was built from."""
        return self._config

    @property
    def dataset(self) -> CascadeDataset:
        """The underlying :class:`CascadeDataset` (graph + all stories)."""
        return self._dataset

    @property
    def graph(self) -> SocialGraph:
        """The follower graph."""
        return self._dataset.graph

    @property
    def story_names(self) -> tuple[str, ...]:
        """Names of the representative stories (s1..s4)."""
        return tuple(self._representative_ids)

    def story(self, name: str) -> Story:
        """The representative story with the given name ('s1'..'s4')."""
        if name not in self._representative_ids:
            raise KeyError(f"unknown story {name!r}; expected one of {self.story_names}")
        return self._dataset.story(self._representative_ids[name])

    def initiator(self, name: str) -> int:
        """Initiator user id of a representative story."""
        return self.story(name).initiator

    # ------------------------------------------------------------------ #
    # Distance views
    # ------------------------------------------------------------------ #
    def hop_distances(self, name: str) -> dict[int, int]:
        """Friendship-hop distance from the story's initiator to every reachable user."""
        if name not in self._hop_distance_cache:
            story = self.story(name)
            self._hop_distance_cache[name] = friendship_hop_distances(
                self.graph, story.initiator
            )
        return self._hop_distance_cache[name]

    def hop_distance_histogram(self, name: str, max_distance: int = 10) -> dict[int, int]:
        """Figure 2 view: number of users at each hop distance from the initiator."""
        return distance_histogram(self.hop_distances(name), max_distance=max_distance)

    def voting_histories(self) -> dict[int, set[int]]:
        """User -> set of story ids voted on, across the whole corpus."""
        if self._voting_histories is None:
            self._voting_histories = self._dataset.user_voting_histories()
        return self._voting_histories

    def interest_groups(self, name: str, num_groups: int = 5) -> dict[int, int]:
        """Shared-interest distance groups (1..num_groups) from the story's initiator.

        Only users with a non-empty voting history are considered, mirroring
        the paper's dataset where every user voted at least once (Equation 1
        is computed over each user's full voting history across the corpus,
        exactly as in the paper).
        """
        key = (name, num_groups)
        if key not in self._interest_group_cache:
            story = self.story(name)
            histories = self.voting_histories()
            if story.initiator not in histories:
                raise RuntimeError("initiator has no voting history; corpus is inconsistent")
            raw_distances = interest_distances_from_source(story.initiator, histories)
            self._interest_group_cache[key] = interest_distance_groups(
                raw_distances, num_groups=num_groups
            )
        return self._interest_group_cache[key]

    # ------------------------------------------------------------------ #
    # Density surfaces
    # ------------------------------------------------------------------ #
    def hop_density_surface(
        self,
        name: str,
        max_distance: int = 5,
        times: "Sequence[float] | None" = None,
        unit: str = "percent",
    ) -> DensitySurface:
        """I(x, t) with friendship hops as the distance metric (Figure 3)."""
        times = times if times is not None else np.arange(1.0, self._config.horizon_hours + 1.0)
        return compute_density_surface(
            story=self.story(name),
            user_distances=self.hop_distances(name),
            distance_values=range(1, max_distance + 1),
            times=times,
            unit=unit,
            metadata={"story": name, "distance_metric": "friendship_hops"},
        )

    def interest_density_surface(
        self,
        name: str,
        num_groups: int = 5,
        times: "Sequence[float] | None" = None,
        unit: str = "percent",
    ) -> DensitySurface:
        """I(x, t) with shared-interest groups as the distance metric (Figure 5)."""
        times = times if times is not None else np.arange(1.0, self._config.horizon_hours + 1.0)
        return compute_density_surface(
            story=self.story(name),
            user_distances=self.interest_groups(name, num_groups=num_groups),
            distance_values=range(1, num_groups + 1),
            times=times,
            unit=unit,
            metadata={"story": name, "distance_metric": "shared_interests"},
        )


def _choose_initiators(graph: SocialGraph, rng: np.random.Generator) -> dict[str, int]:
    """Pick well-connected initiators so Figure 2's distance histogram peaks at 2-3."""
    by_audience = sorted(graph.users(), key=graph.out_degree, reverse=True)
    # The four representative stories are all front-page hits submitted by
    # influential users; use distinct high-audience users.
    return {
        "s1": by_audience[0],
        "s2": by_audience[1],
        "s3": by_audience[2],
        "s4": by_audience[4],
    }


def _discovery_bias_for_story(
    name: str, graph: SocialGraph, initiator: int
) -> "dict[int, float] | None":
    """Front-page discovery weights per user.

    For the most popular story the paper observes that the density at hop
    distance 3 exceeds the density at distance 2 (Figure 3a) -- front-page
    browsing is not uniform over the distance groups.  We reproduce that by
    biasing random discovery toward the (large) distance-3 group for s1 and,
    more weakly, for s2.  The smaller stories get unbiased discovery.
    """
    if name not in ("s1", "s2"):
        return None
    if name == "s1":
        weight_by_distance = {1: 1.5, 2: 0.9, 3: 1.8, 4: 1.0, 5: 0.7}
        default_weight = 0.5
    else:
        weight_by_distance = {3: 1.5}
        default_weight = 1.0
    distances = friendship_hop_distances(graph, initiator)
    return {
        user: weight_by_distance.get(distance, default_weight)
        for user, distance in distances.items()
    }


def _build(config: SyntheticDiggConfig) -> SyntheticDiggDataset:
    master_rng = np.random.default_rng(config.seed)
    graph = generate_digg_like_graph(config.resolved_graph_config(), rng=master_rng)
    initiators = _choose_initiators(graph, master_rng)

    dataset = CascadeDataset(graph)
    representative_ids: dict[str, int] = {}

    story_id = 0
    for name in REPRESENTATIVE_STORY_NAMES:
        cascade_config = _story_cascade_config(name, config.num_users, config.horizon_hours)
        simulator = CascadeSimulator(graph, cascade_config)
        bias = _discovery_bias_for_story(name, graph, initiators[name])
        story = simulator.simulate(
            story_id=story_id,
            initiator=initiators[name],
            rng=np.random.default_rng(config.seed + 1000 + story_id),
            discovery_bias=bias,
        )
        dataset.add_story(story)
        representative_ids[name] = story_id
        story_id += 1

    background_config = _background_cascade_config(config.num_users, config.horizon_hours)
    background_simulator = CascadeSimulator(graph, background_config)
    users = list(graph.users())
    representative_initiators = [initiators[name] for name in REPRESENTATIVE_STORY_NAMES]
    # Activity bias for background front-page discovery: well-connected users
    # are the heavy Digg users -- they browse and vote far more than average.
    # This gives hub users (including the four representative initiators) the
    # rich voting histories the shared-interest metric relies on; the real
    # corpus averages ~21 votes per user.
    activity_bias = {
        user: 1.0 + 0.08 * min(graph.out_degree(user), 75) for user in graph.users()
    }
    for background_index in range(config.num_background_stories):
        # Active submitters author many stories: the first few background
        # stories are initiated by the representative initiators themselves,
        # which gives them the rich voting history the shared-interest metric
        # needs; the rest come from random users.
        if background_index < 3 * len(representative_initiators):
            initiator = representative_initiators[background_index % len(representative_initiators)]
        else:
            initiator = int(users[int(master_rng.integers(len(users)))])
        story = background_simulator.simulate(
            story_id=story_id,
            initiator=initiator,
            rng=np.random.default_rng(config.seed + 1000 + story_id),
            discovery_bias=activity_bias,
        )
        dataset.add_story(story)
        story_id += 1

    return SyntheticDiggDataset(config, dataset, representative_ids)


@lru_cache(maxsize=4)
def _cached_build(config: SyntheticDiggConfig) -> SyntheticDiggDataset:
    return _build(config)


def build_synthetic_digg_dataset(
    config: "SyntheticDiggConfig | None" = None,
) -> SyntheticDiggDataset:
    """Build (or fetch from cache) the synthetic Digg-like corpus.

    The corpus is deterministic given the configuration, and building it is
    the most expensive step of the experiment pipeline, so identical
    configurations are cached for the lifetime of the process.
    """
    config = config if config is not None else SyntheticDiggConfig()
    return _cached_build(config)
