"""Density surfaces I(x, t): the interchange type between data and model.

The central observable of the paper is the *density of influenced users*
``I(x, t)``: the fraction of the users at distance ``x`` from the source who
have voted by time ``t``, for hourly ``t`` and integer distances ``x``.
``DensitySurface`` stores exactly that matrix, plus the group sizes used as
denominators, and provides the slicing helpers the model, baselines, analysis
and benchmarks all rely on.

Densities are stored in *percent* by default (a value of 18 means 18% of the
users in that distance group have voted), matching the scale of the paper's
figures (densities up to ~20 with K = 25 for friendship hops, densities up to
~60 with K = 60 for shared interests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cascade.events import Story

DENSITY_UNITS = ("percent", "fraction")


@dataclass
class DensitySurface:
    """The observed density of influenced users over distance and time.

    Attributes
    ----------
    distances:
        Integer distance values (columns), e.g. friendship hops 1..5 or
        shared-interest groups 1..5.
    times:
        Observation times in hours (rows), e.g. 1..50.
    values:
        Density matrix of shape ``(len(times), len(distances))``.
    group_sizes:
        Number of users in each distance group (the denominators |U_x|).
    unit:
        ``"percent"`` (default) or ``"fraction"``.
    metadata:
        Free-form provenance (story id, distance metric, etc.).
    """

    distances: np.ndarray
    times: np.ndarray
    values: np.ndarray
    group_sizes: np.ndarray
    unit: str = "percent"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.distances = np.asarray(self.distances, dtype=float)
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        self.group_sizes = np.asarray(self.group_sizes, dtype=float)
        if self.unit not in DENSITY_UNITS:
            raise ValueError(f"unit must be one of {DENSITY_UNITS}, got {self.unit!r}")
        expected = (self.times.size, self.distances.size)
        if self.values.shape != expected:
            raise ValueError(f"values shape {self.values.shape} != (times, distances) {expected}")
        if self.group_sizes.shape != (self.distances.size,):
            raise ValueError("group_sizes must have one entry per distance")
        if np.any(self.values < -1e-12):
            raise ValueError("densities must be non-negative")

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #
    def _distance_index(self, distance: float) -> int:
        matches = np.nonzero(np.isclose(self.distances, distance))[0]
        if matches.size == 0:
            raise KeyError(f"distance {distance} is not in the surface")
        return int(matches[0])

    def _time_index(self, time: float) -> int:
        matches = np.nonzero(np.isclose(self.times, time))[0]
        if matches.size == 0:
            raise KeyError(f"time {time} is not in the surface")
        return int(matches[0])

    def density(self, distance: float, time: float) -> float:
        """Density value at one (distance, time) pair."""
        return float(self.values[self._time_index(time), self._distance_index(distance)])

    def time_series(self, distance: float) -> np.ndarray:
        """Density over time for one distance (a line in Figure 3/5)."""
        return self.values[:, self._distance_index(distance)].copy()

    def profile(self, time: float) -> np.ndarray:
        """Density over distance at one time (a line in Figure 4/7)."""
        return self.values[self._time_index(time), :].copy()

    def initial_profile(self) -> np.ndarray:
        """The earliest profile -- the hour-1 snapshot used to build phi."""
        return self.values[0, :].copy()

    def restrict_times(self, times: Sequence[float]) -> "DensitySurface":
        """Return a new surface containing only the requested times."""
        indices = [self._time_index(t) for t in times]
        return DensitySurface(
            distances=self.distances.copy(),
            times=self.times[indices],
            values=self.values[indices, :],
            group_sizes=self.group_sizes.copy(),
            unit=self.unit,
            metadata=dict(self.metadata),
        )

    def restrict_distances(self, distances: Sequence[float]) -> "DensitySurface":
        """Return a new surface containing only the requested distances."""
        indices = [self._distance_index(d) for d in distances]
        return DensitySurface(
            distances=self.distances[indices],
            times=self.times.copy(),
            values=self.values[:, indices],
            group_sizes=self.group_sizes[indices],
            unit=self.unit,
            metadata=dict(self.metadata),
        )

    def as_unit(self, unit: str) -> "DensitySurface":
        """Convert between percent and fraction representations."""
        if unit not in DENSITY_UNITS:
            raise ValueError(f"unit must be one of {DENSITY_UNITS}, got {unit!r}")
        if unit == self.unit:
            return self
        factor = 0.01 if unit == "fraction" else 100.0
        return DensitySurface(
            distances=self.distances.copy(),
            times=self.times.copy(),
            values=self.values * factor,
            group_sizes=self.group_sizes.copy(),
            unit=unit,
            metadata=dict(self.metadata),
        )

    @property
    def max_density(self) -> float:
        """Largest density anywhere on the surface (used to choose K)."""
        return float(self.values.max())

    def is_monotone_in_time(self, tolerance: float = 1e-9) -> bool:
        """True when every distance's time series is non-decreasing.

        Densities of influenced users can only grow (users cannot un-vote), so
        any violation indicates a bug in the extraction pipeline.
        """
        return bool(np.all(np.diff(self.values, axis=0) >= -tolerance))


def compute_density_surface(
    story: Story,
    user_distances: Mapping[int, int],
    distance_values: Sequence[int],
    times: Sequence[float],
    unit: str = "percent",
    metadata: "dict | None" = None,
) -> DensitySurface:
    """Compute I(x, t) for one story from its votes and a distance assignment.

    Parameters
    ----------
    story:
        The story whose cascade is being measured.
    user_distances:
        Mapping user id -> integer distance (friendship hops or interest
        group).  Users absent from the mapping (unreachable users) are
        ignored, as in the paper.
    distance_values:
        Which distance values form the spatial axis (e.g. ``range(1, 6)``).
    times:
        Observation times in hours (e.g. ``range(1, 51)``).
    unit:
        ``"percent"`` or ``"fraction"``.
    metadata:
        Optional provenance merged into the surface metadata.
    """
    if unit not in DENSITY_UNITS:
        raise ValueError(f"unit must be one of {DENSITY_UNITS}, got {unit!r}")
    distance_values = [int(d) for d in distance_values]
    times = sorted(float(t) for t in times)
    if not distance_values:
        raise ValueError("at least one distance value is required")
    if not times:
        raise ValueError("at least one observation time is required")

    group_sizes = np.array(
        [sum(1 for d in user_distances.values() if d == value) for value in distance_values],
        dtype=float,
    )
    if np.any(group_sizes == 0):
        empty = [v for v, size in zip(distance_values, group_sizes) if size == 0]
        raise ValueError(f"distance groups {empty} contain no users; cannot form densities")

    scale = 100.0 if unit == "percent" else 1.0
    values = np.zeros((len(times), len(distance_values)))
    # Cumulative counting: votes are sorted by time, walk once per surface.
    votes = sorted(story.votes)
    counts = np.zeros(len(distance_values))
    distance_index = {value: i for i, value in enumerate(distance_values)}
    vote_pointer = 0
    counted_users: set[int] = set()
    for row, time in enumerate(times):
        while vote_pointer < len(votes) and votes[vote_pointer].time <= time:
            vote = votes[vote_pointer]
            vote_pointer += 1
            if vote.user in counted_users:
                continue
            counted_users.add(vote.user)
            distance = user_distances.get(vote.user)
            if distance is None:
                continue
            index = distance_index.get(int(distance))
            if index is not None:
                counts[index] += 1
        values[row] = scale * counts / group_sizes

    surface_metadata = {"story_id": story.story_id, "initiator": story.initiator}
    if metadata:
        surface_metadata.update(metadata)
    return DensitySurface(
        distances=np.asarray(distance_values, dtype=float),
        times=np.asarray(times, dtype=float),
        values=values,
        group_sizes=group_sizes,
        unit=unit,
        metadata=surface_metadata,
    )
