"""Cascade substrate: votes, stories, simulation and density extraction.

This package is the stand-in for the Digg 2009 dataset used by the paper.  It
provides:

* :mod:`repro.cascade.events` -- the ``Vote`` and ``Story`` record types.
* :mod:`repro.cascade.dataset` -- the ``CascadeDataset`` container (follower
  graph + stories + votes) with JSON round-trip.
* :mod:`repro.cascade.simulator` -- a stochastic cascade simulator with the
  two Digg information channels: follower-feed spreading and front-page
  random discovery.
* :mod:`repro.cascade.frontpage` -- the front-page promotion model.
* :mod:`repro.cascade.digg` -- builds the synthetic Digg-like corpus including
  the four representative stories s1-s4 of the evaluation section.
* :mod:`repro.cascade.density` -- turns votes + distances into the density
  surface ``I(x, t)`` consumed by the DL model.
"""

from repro.cascade.events import Story, Vote
from repro.cascade.dataset import CascadeDataset
from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.cascade.digg import (
    REPRESENTATIVE_STORY_VOTES,
    SyntheticDiggConfig,
    SyntheticDiggDataset,
    build_synthetic_digg_dataset,
)
from repro.cascade.density import DensitySurface, compute_density_surface

__all__ = [
    "Vote",
    "Story",
    "CascadeDataset",
    "FrontPageModel",
    "CascadeConfig",
    "CascadeSimulator",
    "SyntheticDiggConfig",
    "SyntheticDiggDataset",
    "build_synthetic_digg_dataset",
    "REPRESENTATIVE_STORY_VOTES",
    "DensitySurface",
    "compute_density_surface",
]
