"""The cascade dataset container.

``CascadeDataset`` plays the role of the Digg 2009 dataset in the paper's
pipeline: a directed follower graph plus a collection of stories, each with a
timestamped vote cascade.  It supports JSON round-trips so that the synthetic
corpus used by the benchmarks can be regenerated and inspected, and exposes
the voting-history view (user -> set of stories voted) needed by the
shared-interest distance metric.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.cascade.events import Story, Vote
from repro.network.graph import SocialGraph


class CascadeDataset:
    """A follower graph together with a set of story cascades.

    Parameters
    ----------
    graph:
        The directed follower graph (edges point in the direction of
        information flow).
    stories:
        Stories, keyed by story id after construction.
    """

    def __init__(self, graph: SocialGraph, stories: Iterable[Story] = ()) -> None:
        self._graph = graph
        self._stories: dict[int, Story] = {}
        for story in stories:
            self.add_story(story)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> SocialGraph:
        """The follower graph."""
        return self._graph

    @property
    def num_stories(self) -> int:
        """Number of stories in the dataset."""
        return len(self._stories)

    @property
    def num_votes(self) -> int:
        """Total number of votes across all stories."""
        return sum(story.num_votes for story in self._stories.values())

    def story_ids(self) -> list[int]:
        """Sorted story ids."""
        return sorted(self._stories)

    def story(self, story_id: int) -> Story:
        """Look up a story by id."""
        if story_id not in self._stories:
            raise KeyError(f"story {story_id} is not in the dataset")
        return self._stories[story_id]

    def stories(self) -> list[Story]:
        """All stories, ordered by id."""
        return [self._stories[sid] for sid in self.story_ids()]

    def add_story(self, story: Story) -> None:
        """Add a story; ids must be unique."""
        if story.story_id in self._stories:
            raise ValueError(f"story {story.story_id} already exists in the dataset")
        self._stories[story.story_id] = story

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def user_voting_histories(self) -> dict[int, set[int]]:
        """Mapping user -> set of story ids the user has voted on.

        This is the ``C_a`` content set of the shared-interest distance
        (Equation 1): the full voting history of each user across the corpus.
        """
        histories: dict[int, set[int]] = {}
        for story in self._stories.values():
            for vote in story.votes:
                histories.setdefault(vote.user, set()).add(story.story_id)
        return histories

    def stories_by_popularity(self) -> list[Story]:
        """Stories sorted by total vote count, most popular first."""
        return sorted(self._stories.values(), key=lambda s: s.num_votes, reverse=True)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """Serialize the dataset (graph + stories) to a JSON-friendly dict."""
        return {
            "num_users": self._graph.num_users,
            "edges": sorted(self._graph.edges()),
            "stories": [
                {
                    "story_id": story.story_id,
                    "initiator": story.initiator,
                    "votes": [[vote.time, vote.user] for vote in story.votes],
                }
                for story in self.stories()
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "CascadeDataset":
        """Rebuild a dataset from :meth:`to_json_dict` output."""
        graph = SocialGraph(int(payload["num_users"]))
        for source, target in payload["edges"]:
            graph.add_follow(int(source), int(target))
        stories = []
        for story_payload in payload["stories"]:
            votes = [
                Vote(time=float(time), user=int(user))
                for time, user in story_payload["votes"]
            ]
            stories.append(
                Story(
                    story_id=int(story_payload["story_id"]),
                    initiator=int(story_payload["initiator"]),
                    votes=votes,
                )
            )
        return cls(graph, stories)

    def save(self, path: "str | Path") -> None:
        """Write the dataset to a JSON file."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json_dict()))

    @classmethod
    def load(cls, path: "str | Path") -> "CascadeDataset":
        """Read a dataset previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls.from_json_dict(payload)

    def __repr__(self) -> str:
        return (
            f"CascadeDataset(users={self._graph.num_users}, "
            f"stories={self.num_stories}, votes={self.num_votes})"
        )
