"""Temporal and spatial pattern characterisation (Section III-B).

The paper lists five empirical observations about the density surfaces of the
four representative stories (Figures 3-5).  The functions here quantify those
observations so both the test-suite and the figure benchmarks can assert that
the synthetic corpus reproduces them:

* densities evolve over time and eventually stabilise
  (:func:`saturation_time`);
* popular stories stabilise sooner than unpopular ones (compare saturation
  times across stories);
* the hour-over-hour increments shrink as the story ages, motivating the
  decreasing growth rate r(t) (:func:`increments_are_shrinking`);
* the density at distance 1 dominates, and for the most popular story the
  density at hop distance 3 exceeds the density at distance 2
  (:func:`distance_ordering`);
* with the shared-interest metric the density decreases monotonically with
  the group index (:func:`profile_is_decreasing`).
"""

from __future__ import annotations

import numpy as np

from repro.cascade.density import DensitySurface


def saturation_time(
    surface: DensitySurface, distance: "float | None" = None, fraction: float = 0.95
) -> float:
    """Earliest hour at which the density reaches ``fraction`` of its final value.

    Parameters
    ----------
    surface:
        The observed density surface.
    distance:
        A single distance to analyse; ``None`` requires *every* distance to
        have reached the threshold.
    fraction:
        Fraction of the final (last observed) density that counts as
        "stable".
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if distance is not None:
        series = surface.time_series(distance)
        final = series[-1]
        if final <= 0:
            return float(surface.times[0])
        reached = np.nonzero(series >= fraction * final)[0]
        return float(surface.times[reached[0]])
    # All distances must have reached the threshold.
    times = [saturation_time(surface, float(d), fraction) for d in surface.distances]
    return max(times)


def density_increments(surface: DensitySurface, distance: float) -> np.ndarray:
    """Hour-over-hour increments of the density at one distance."""
    return np.diff(surface.time_series(distance))


def increments_are_shrinking(
    surface: DensitySurface,
    distance: float,
    window: int = 5,
    tolerance: float = 1e-9,
) -> bool:
    """Check that early increments are larger than late increments.

    The paper's Figure 4 observation ("the increment of densities at t and
    t+1 decreases as time elapses") motivates the decreasing growth rate.  On
    stochastic data the increments are not strictly monotone, so the check
    compares the mean increment over the first ``window`` hours with the mean
    over the last ``window`` hours.
    """
    increments = density_increments(surface, distance)
    if increments.size < 2 * window:
        window = max(1, increments.size // 2)
    early = float(np.mean(increments[:window]))
    late = float(np.mean(increments[-window:]))
    return early >= late - tolerance


def distance_ordering(surface: DensitySurface, time: float) -> list[float]:
    """Distances sorted by decreasing density at the given time."""
    profile = surface.profile(time)
    order = np.argsort(-profile)
    return [float(surface.distances[i]) for i in order]


def profile_is_decreasing(surface: DensitySurface, time: float, tolerance: float = 1e-9) -> bool:
    """True when the density decreases (weakly) with distance at ``time``."""
    profile = surface.profile(time)
    return bool(np.all(np.diff(profile) <= tolerance))


def dominant_distance(surface: DensitySurface, time: float) -> float:
    """The distance with the highest density at ``time``."""
    return distance_ordering(surface, time)[0]


def final_density_by_distance(surface: DensitySurface) -> dict[float, float]:
    """Final (last observed) density per distance."""
    final = surface.values[-1]
    return {float(d): float(v) for d, v in zip(surface.distances, final)}
