"""One entry point per table and figure of the paper's evaluation section.

Each ``run_*`` function takes an :class:`ExperimentContext` (which owns the
synthetic Digg corpus) and returns plain data structures -- density surfaces,
accuracy tables, dictionaries of series -- that the benchmarks print and the
EXPERIMENTS.md comparison is written from.  Keeping the experiment logic here
(rather than inside the benchmark files) makes every experiment runnable from
a regular Python session as well:

>>> from repro.analysis.experiments import ExperimentContext, run_table1_accuracy_hops
>>> table = run_table1_accuracy_hops(ExperimentContext())          # doctest: +SKIP
>>> print(table.render())                                          # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.linear_influence import LinearInfluenceBaseline
from repro.baselines.logistic import PerDistanceLogisticBaseline
from repro.baselines.sis import SISBaseline
from repro.cascade.density import DensitySurface
from repro.cascade.digg import (
    REPRESENTATIVE_STORY_NAMES,
    SyntheticDiggConfig,
    SyntheticDiggDataset,
    build_synthetic_digg_dataset,
)
from repro.core.accuracy import AccuracyTable, build_accuracy_table
from repro.core.calibration import calibrate_dl_model, choose_carrying_capacity
from repro.core.parameters import (
    PAPER_S1_HOP_PARAMETERS,
    PAPER_S1_INTEREST_PARAMETERS,
    ExponentialDecayGrowthRate,
)
from repro.core.prediction import DiffusionPredictor, PredictionResult


@dataclass
class ExperimentContext:
    """Shared state for the experiment runners.

    Attributes
    ----------
    config:
        Configuration of the synthetic Digg corpus.  The default matches the
        benchmarks; tests use smaller corpora for speed.
    """

    config: SyntheticDiggConfig = field(default_factory=SyntheticDiggConfig)
    _dataset: "SyntheticDiggDataset | None" = field(default=None, repr=False)

    @property
    def dataset(self) -> SyntheticDiggDataset:
        """The (lazily built, cached) synthetic corpus."""
        if self._dataset is None:
            self._dataset = build_synthetic_digg_dataset(self.config)
        return self._dataset

    def observation_times(self) -> np.ndarray:
        """Hourly observation times 1..horizon."""
        return np.arange(1.0, self.config.horizon_hours + 1.0)


# --------------------------------------------------------------------------- #
# Figure 2 -- distribution of users over hop distances
# --------------------------------------------------------------------------- #
def run_fig2_distance_distribution(
    context: ExperimentContext, max_distance: int = 10
) -> dict[str, dict[int, float]]:
    """Fraction of reachable users at each hop distance, per story (Figure 2)."""
    result: dict[str, dict[int, float]] = {}
    for name in REPRESENTATIVE_STORY_NAMES:
        histogram = context.dataset.hop_distance_histogram(name, max_distance=max_distance)
        total = sum(histogram.values())
        result[name] = {
            distance: (count / total if total else 0.0) for distance, count in histogram.items()
        }
    return result


# --------------------------------------------------------------------------- #
# Figure 3 -- density over time, friendship hops
# --------------------------------------------------------------------------- #
def run_fig3_density_hops(
    context: ExperimentContext, max_distance: int = 5
) -> dict[str, DensitySurface]:
    """The four 50-hour density surfaces with hop distance (Figure 3a-d)."""
    times = context.observation_times()
    return {
        name: context.dataset.hop_density_surface(name, max_distance=max_distance, times=times)
        for name in REPRESENTATIVE_STORY_NAMES
    }


# --------------------------------------------------------------------------- #
# Figure 4 -- density profiles over distance, one line per hour (story s1)
# --------------------------------------------------------------------------- #
def run_fig4_density_profiles(
    context: ExperimentContext, story: str = "s1", max_distance: int = 5
) -> dict[str, np.ndarray]:
    """Density-vs-distance profiles for every observation hour (Figure 4)."""
    surface = context.dataset.hop_density_surface(
        story, max_distance=max_distance, times=context.observation_times()
    )
    return {
        "distances": surface.distances.copy(),
        "times": surface.times.copy(),
        "profiles": surface.values.copy(),
    }


# --------------------------------------------------------------------------- #
# Figure 5 -- density over time, shared interests
# --------------------------------------------------------------------------- #
def run_fig5_density_interests(
    context: ExperimentContext, num_groups: int = 5
) -> dict[str, DensitySurface]:
    """The four 50-hour density surfaces with interest distance (Figure 5a-d)."""
    times = context.observation_times()
    return {
        name: context.dataset.interest_density_surface(name, num_groups=num_groups, times=times)
        for name in REPRESENTATIVE_STORY_NAMES
    }


# --------------------------------------------------------------------------- #
# Figure 6 -- the decreasing growth-rate function r(t)
# --------------------------------------------------------------------------- #
def run_fig6_growth_rate(
    context: ExperimentContext, story: str = "s1", hours: int = 6
) -> dict[str, object]:
    """The paper's r(t) (Equation 7) alongside the rate calibrated on our corpus."""
    times = np.linspace(1.0, float(hours), 60)
    paper_rate = PAPER_S1_HOP_PARAMETERS.growth_rate
    surface = context.dataset.hop_density_surface(story, times=context.observation_times())
    calibration = calibrate_dl_model(surface, training_times=list(range(1, hours + 1)))
    calibrated_rate = calibration.parameters.growth_rate
    assert isinstance(calibrated_rate, ExponentialDecayGrowthRate)
    return {
        "times": times,
        "paper_rate": np.asarray([paper_rate.at_time(t) for t in times]),
        "calibrated_rate": np.asarray([calibrated_rate.at_time(t) for t in times]),
        "paper_parameters": {"amplitude": 1.4, "decay": 1.5, "floor": 0.25},
        "calibrated_parameters": {
            "amplitude": calibrated_rate.amplitude,
            "decay": calibrated_rate.decay,
            "floor": calibrated_rate.floor,
        },
        "calibration_loss": calibration.loss,
    }


# --------------------------------------------------------------------------- #
# Figure 7 / Tables I & II -- predicted vs actual densities and accuracy
# --------------------------------------------------------------------------- #
def _observed_surface(
    context: ExperimentContext, story: str, distance_metric: str
) -> DensitySurface:
    if distance_metric == "hops":
        return context.dataset.hop_density_surface(story, times=context.observation_times())
    if distance_metric == "interests":
        return context.dataset.interest_density_surface(story, times=context.observation_times())
    raise ValueError(f"unknown distance metric {distance_metric!r}; use 'hops' or 'interests'")


def run_fig7_predicted_vs_actual(
    context: ExperimentContext,
    story: str = "s1",
    distance_metric: str = "hops",
    prediction_hours: int = 6,
    calibrate: bool = True,
) -> PredictionResult:
    """Predicted vs actual densities for the first six hours (Figure 7a/7b).

    With ``calibrate=True`` (default) the DL parameters are fitted on the
    training window, mirroring the paper's "constructing the proper initial
    condition and parameters"; with ``calibrate=False`` the paper's published
    s1 parameters are applied verbatim.
    """
    observed = _observed_surface(context, story, distance_metric)
    training_times = list(range(1, prediction_hours + 1))
    if calibrate:
        predictor = DiffusionPredictor()
    else:
        parameters = (
            PAPER_S1_HOP_PARAMETERS if distance_metric == "hops" else PAPER_S1_INTEREST_PARAMETERS
        )
        predictor = DiffusionPredictor(parameters=parameters)
    predictor.fit(observed, training_times=training_times)
    evaluation_times = [float(t) for t in range(2, prediction_hours + 1)]
    return predictor.evaluate(observed, times=evaluation_times)


def run_table1_accuracy_hops(
    context: ExperimentContext, story: str = "s1", prediction_hours: int = 6
) -> AccuracyTable:
    """Table I: prediction accuracy with friendship hops as the distance metric."""
    result = run_fig7_predicted_vs_actual(
        context, story=story, distance_metric="hops", prediction_hours=prediction_hours
    )
    return result.accuracy_table


def run_table2_accuracy_interests(
    context: ExperimentContext, story: str = "s1", prediction_hours: int = 6
) -> AccuracyTable:
    """Table II: prediction accuracy with shared interests as the distance metric."""
    result = run_fig7_predicted_vs_actual(
        context, story=story, distance_metric="interests", prediction_hours=prediction_hours
    )
    return result.accuracy_table


# --------------------------------------------------------------------------- #
# Ablation: DL model vs temporal-only baselines
# --------------------------------------------------------------------------- #
def run_ablation_baselines(
    context: ExperimentContext,
    story: str = "s1",
    distance_metric: str = "hops",
    training_hours: int = 4,
    forecast_hours: int = 12,
) -> dict[str, AccuracyTable]:
    """Score the DL model against the temporal-only baselines on a forecast task.

    Unlike the paper's Tables I/II (which evaluate inside the window the
    parameters were tuned on), this ablation is a genuine forecast: every
    model sees hours ``1..training_hours`` and is scored on hours
    ``training_hours+1..forecast_hours``.  This is where the DL model's
    structure pays off -- the shared growth rate, the carrying capacity and
    the diffusion term let it extrapolate distances whose early signal is
    weak, while the per-distance baselines either overfit their two free
    parameters per distance or (for the linear-influence model) grow without
    saturating.
    """
    if forecast_hours <= training_hours:
        raise ValueError("forecast_hours must exceed training_hours")
    observed = _observed_surface(context, story, distance_metric)
    training_times = [float(t) for t in range(1, training_hours + 1)]
    evaluation_times = [float(t) for t in range(training_hours + 1, forecast_hours + 1)]
    actual = observed.restrict_times(evaluation_times)

    results: dict[str, AccuracyTable] = {}

    dl_predictor = DiffusionPredictor().fit(observed, training_times=training_times)
    dl_result = dl_predictor.evaluate(observed, times=evaluation_times)
    results["diffusive_logistic"] = dl_result.accuracy_table

    logistic = PerDistanceLogisticBaseline().fit(observed, training_times)
    results["per_distance_logistic"] = build_accuracy_table(
        logistic.predict(evaluation_times), actual, times=evaluation_times
    )

    sis_pool = max(choose_carrying_capacity(observed), 1.0)
    sis = SISBaseline(pool_percent=sis_pool).fit(observed, training_times)
    results["sis"] = build_accuracy_table(
        sis.predict(evaluation_times), actual, times=evaluation_times
    )

    linear = LinearInfluenceBaseline().fit(observed, training_times)
    results["linear_influence"] = build_accuracy_table(
        linear.predict(evaluation_times), actual, times=evaluation_times
    )
    return results


EXPERIMENT_REGISTRY = {
    "FIG-2": run_fig2_distance_distribution,
    "FIG-3": run_fig3_density_hops,
    "FIG-4": run_fig4_density_profiles,
    "FIG-5": run_fig5_density_interests,
    "FIG-6": run_fig6_growth_rate,
    "FIG-7": run_fig7_predicted_vs_actual,
    "TAB-1": run_table1_accuracy_hops,
    "TAB-2": run_table2_accuracy_interests,
    "ABL-1": run_ablation_baselines,
}
"""Experiment id (as used in DESIGN.md / EXPERIMENTS.md) -> runner."""
