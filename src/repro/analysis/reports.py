"""Text rendering of figure series, density surfaces and prediction results.

The offline environment has no plotting stack, so the figure benchmarks emit
the underlying series as aligned text tables -- the same rows/series the
paper plots -- via these helpers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.prediction import PredictionResult
from repro.io.tables import format_table


def render_density_surface(
    surface: DensitySurface,
    times: "Sequence[float] | None" = None,
    title: "str | None" = None,
) -> str:
    """Render a density surface with one row per time and one column per distance."""
    if times is None:
        times = list(surface.times)
    rows = []
    for time in times:
        row: dict[str, object] = {"t (h)": float(time)}
        profile = surface.profile(float(time))
        for distance, value in zip(surface.distances, profile):
            row[f"x={distance:g}"] = float(value)
        rows.append(row)
    return format_table(rows, title=title)


def render_figure_series(
    series: Mapping[str, Mapping[int, float]],
    x_label: str = "distance",
    title: "str | None" = None,
) -> str:
    """Render a {line-name: {x: y}} mapping (e.g. Figure 2) as a table."""
    all_x = sorted({x for line in series.values() for x in line})
    rows = []
    for x in all_x:
        row: dict[str, object] = {x_label: x}
        for name, line in series.items():
            row[name] = float(line.get(x, 0.0))
        rows.append(row)
    return format_table(rows, title=title)


def render_prediction_comparison(result: PredictionResult, title: "str | None" = None) -> str:
    """Render predicted vs actual densities side by side (Figure 7 view)."""
    rows = []
    for time in result.predicted.times:
        time = float(time)
        if not np.any(np.isclose(result.actual.times, time)):
            continue
        for distance in result.predicted.distances:
            distance = float(distance)
            rows.append(
                {
                    "t (h)": time,
                    "distance": distance,
                    "actual": result.actual.density(distance, time),
                    "predicted": result.predicted.density(distance, time),
                    "accuracy": (
                        result.accuracy_table.accuracy(distance, time)
                        if np.any(np.isclose(result.accuracy_table.times, time))
                        else float("nan")
                    ),
                }
            )
    lines = [format_table(rows, title=title)]
    lines.append(f"Overall average prediction accuracy: {result.overall_accuracy * 100:.2f}%")
    return "\n".join(lines)


def render_growth_rate_comparison(fig6_result: Mapping[str, object]) -> str:
    """Render the paper vs calibrated growth-rate curves (Figure 6 view)."""
    times = np.asarray(fig6_result["times"], dtype=float)
    paper = np.asarray(fig6_result["paper_rate"], dtype=float)
    calibrated = np.asarray(fig6_result["calibrated_rate"], dtype=float)
    rows = []
    for i in range(0, times.size, max(1, times.size // 12)):
        rows.append(
            {
                "t (h)": float(times[i]),
                "paper r(t)": float(paper[i]),
                "calibrated r(t)": float(calibrated[i]),
            }
        )
    title = (
        "Growth rate r(t): paper Eq. 7 vs calibrated "
        f"(calibrated params: {fig6_result['calibrated_parameters']})"
    )
    return format_table(rows, title=title)
