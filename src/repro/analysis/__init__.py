"""Analysis layer: pattern characterisation, experiment harness and reports.

* :mod:`repro.analysis.patterns` -- the empirical characterisations of
  Section III-B (saturation times, density orderings, shrinking increments).
* :mod:`repro.analysis.experiments` -- one entry point per paper table/figure;
  the benchmarks and EXPERIMENTS.md are generated from these.
* :mod:`repro.analysis.reports` -- text rendering of figure series and tables.
"""

from repro.analysis.patterns import (
    density_increments,
    distance_ordering,
    increments_are_shrinking,
    saturation_time,
)
from repro.analysis.experiments import (
    ExperimentContext,
    run_ablation_baselines,
    run_fig2_distance_distribution,
    run_fig3_density_hops,
    run_fig4_density_profiles,
    run_fig5_density_interests,
    run_fig6_growth_rate,
    run_fig7_predicted_vs_actual,
    run_table1_accuracy_hops,
    run_table2_accuracy_interests,
)
from repro.analysis.reports import (
    render_density_surface,
    render_figure_series,
    render_prediction_comparison,
)

__all__ = [
    "saturation_time",
    "density_increments",
    "increments_are_shrinking",
    "distance_ordering",
    "ExperimentContext",
    "run_fig2_distance_distribution",
    "run_fig3_density_hops",
    "run_fig4_density_profiles",
    "run_fig5_density_interests",
    "run_fig6_growth_rate",
    "run_fig7_predicted_vs_actual",
    "run_table1_accuracy_hops",
    "run_table2_accuracy_interests",
    "run_ablation_baselines",
    "render_density_surface",
    "render_figure_series",
    "render_prediction_comparison",
]
