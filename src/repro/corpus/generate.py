"""Parameterized synthetic workload generator for corpus-scale testing.

The synthetic Digg corpus tops out at a handful of representative stories;
exercising the store, the sharder and the daemon at production scale needs
corpora of thousands to millions of cascades with realistic *variety*:

* **grid-size distribution** -- stories differ in how many distance groups
  they observe (``min_distances..max_distances``), so a generated corpus
  spreads over many spatial signatures and therefore many shards;
* **interval distribution** -- stories differ in observed horizon
  (``min_hours..max_hours`` hourly snapshots);
* **burst arrivals** -- each story is assigned an arrival hour drawn
  around one of ``bursts`` burst centres (recorded in the surface
  metadata), modelling front-page traffic spikes for replay-style load
  tests;
* **fixed seed** -- the whole corpus is a pure function of its
  :class:`WorkloadConfig`, and the store writer is deterministic, so the
  same config always produces a byte-identical store.

Surfaces are logistic-in-time and decaying-in-distance, matching the
qualitative shape of the paper's measured densities: monotone growth
toward a per-distance carrying capacity, later and lower the farther the
distance group sits from the initiator.  Every story has a strictly
positive first observed hour, so none is skipped by the manifest
resolver's empty-anchor check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.cascade.density import DENSITY_UNITS, DensitySurface
from repro.corpus.store import (
    DEFAULT_SHARD_STORIES,
    CorpusStore,
    CorpusStoreWriter,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """The full parameterisation of one synthetic corpus.

    Attributes
    ----------
    stories:
        Number of stories to generate (``story-000000`` ...).
    seed:
        RNG seed; same config, same corpus, byte-identical store.
    metric:
        Distance metric recorded in the store (``hops`` | ``interests``).
    min_distances / max_distances:
        Inclusive range of distance-group counts per story (grid-size
        distribution; each count is one spatial signature).
    min_hours / max_hours:
        Inclusive range of observed horizons in hourly snapshots
        (interval distribution).
    peak_density:
        Upper bound of the nearest group's carrying capacity, in ``unit``.
    growth_rate:
        Scales every story's logistic growth rate.
    bursts:
        Number of arrival-burst centres stories cluster around.
    burst_spread_hours:
        Standard deviation of arrival times around their burst centre.
    unit:
        Density unit of the generated surfaces.
    """

    stories: int = 1000
    seed: int = 20120612
    metric: str = "hops"
    min_distances: int = 5
    max_distances: int = 12
    min_hours: int = 8
    max_hours: int = 24
    peak_density: float = 30.0
    growth_rate: float = 1.0
    bursts: int = 4
    burst_spread_hours: float = 1.5
    unit: str = "percent"

    def __post_init__(self) -> None:
        if self.stories < 0:
            raise ValueError(f"stories must be >= 0, got {self.stories}")
        if not 1 <= self.min_distances <= self.max_distances:
            raise ValueError(
                f"need 1 <= min_distances <= max_distances, got "
                f"{self.min_distances}..{self.max_distances}"
            )
        if not 2 <= self.min_hours <= self.max_hours:
            raise ValueError(
                f"need 2 <= min_hours <= max_hours (hour 1 anchors phi), got "
                f"{self.min_hours}..{self.max_hours}"
            )
        if self.peak_density <= 0:
            raise ValueError(f"peak_density must be > 0, got {self.peak_density}")
        if self.growth_rate <= 0:
            raise ValueError(f"growth_rate must be > 0, got {self.growth_rate}")
        if self.bursts < 1:
            raise ValueError(f"bursts must be >= 1, got {self.bursts}")
        if self.burst_spread_hours < 0:
            raise ValueError(
                f"burst_spread_hours must be >= 0, got {self.burst_spread_hours}"
            )
        if self.metric not in ("hops", "interests"):
            raise ValueError(
                f"metric must be 'hops' or 'interests', got {self.metric!r}"
            )
        if self.unit not in DENSITY_UNITS:
            raise ValueError(f"unit must be one of {DENSITY_UNITS}, got {self.unit!r}")


def iter_workload(config: WorkloadConfig) -> "Iterator[tuple[str, DensitySurface]]":
    """Yield ``(name, surface)`` pairs; a pure function of ``config``."""
    rng = np.random.default_rng(config.seed)
    burst_centers = np.sort(rng.uniform(0.0, 24.0, size=config.bursts))
    for index in range(config.stories):
        n_distances = int(
            rng.integers(config.min_distances, config.max_distances + 1)
        )
        n_hours = int(rng.integers(config.min_hours, config.max_hours + 1))
        distances = np.arange(1.0, n_distances + 1.0)
        times = np.arange(1.0, n_hours + 1.0)
        # Per-distance carrying capacity: largest near the initiator,
        # exponentially lower outward (the paper's Figure-4 shape).
        capacity = (
            config.peak_density
            * rng.uniform(0.4, 1.0)
            * np.exp(-rng.uniform(0.15, 0.5) * (distances - 1.0))
        )
        rate = config.growth_rate * rng.uniform(0.3, 1.2)
        midpoint = rng.uniform(1.0, 0.5 * n_hours)
        lag_per_distance = rng.uniform(0.3, 1.0)
        # Logistic growth in time, shifted later per distance group;
        # strictly positive everywhere and monotone in time.
        phase = times[:, None] - midpoint - lag_per_distance * (distances[None, :] - 1.0)
        values = capacity[None, :] / (1.0 + np.exp(-rate * phase))
        burst = int(rng.integers(0, config.bursts))
        arrival = float(
            burst_centers[burst] + rng.normal(0.0, config.burst_spread_hours)
        )
        surface = DensitySurface(
            distances=distances,
            times=times,
            values=values,
            group_sizes=np.ones(n_distances),
            unit=config.unit,
            metadata={
                "source": "synthetic_workload",
                "seed": config.seed,
                "story_index": index,
                "burst": burst,
                "arrival_hour": round(arrival, 6),
            },
        )
        yield f"story-{index:06d}", surface


def generate_workload(config: WorkloadConfig) -> "dict[str, DensitySurface]":
    """The whole corpus materialised in memory (small configs, tests)."""
    return dict(iter_workload(config))


def generate_store(
    config: WorkloadConfig,
    root,
    max_shard_stories: int = DEFAULT_SHARD_STORIES,
) -> CorpusStore:
    """Generate straight into a store, never holding the corpus in memory.

    Stories stream from :func:`iter_workload` into a
    :class:`~repro.corpus.store.CorpusStoreWriter`, so peak memory is
    bounded by the writer's per-signature buffers regardless of
    ``config.stories``.
    """
    writer = CorpusStoreWriter(
        root,
        metric=config.metric,
        max_shard_stories=max_shard_stories,
    )
    for name, surface in iter_workload(config):
        writer.add(name, surface)
    return writer.finalize()
