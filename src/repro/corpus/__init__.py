"""The columnar corpus substrate: content-addressed stores + workload generator.

* :mod:`repro.corpus.store` -- per-shard ``.npz`` files of stacked density
  surfaces (memory-mapped on read, deterministic bytes on write), the
  ``index.json`` content-hash index, the :class:`CorpusStore` read API and
  the picklable :class:`LazySurface` handles the service layer solves from.
* :mod:`repro.corpus.generate` -- the seeded synthetic workload generator
  (:class:`WorkloadConfig`) behind ``repro corpus generate``.

The CLI surface is ``repro corpus generate | build | verify | export``;
``repro serve-batch --manifest <store>`` and manifest ``"store"`` blocks
consume stores through :func:`repro.service.open_corpus`.
"""

from repro.corpus.generate import (
    WorkloadConfig,
    generate_store,
    generate_workload,
    iter_workload,
)
from repro.corpus.store import (
    DEFAULT_SHARD_STORIES,
    INDEX_FILENAME,
    STORE_FORMAT,
    STORE_VERSION,
    CorpusStore,
    CorpusStoreError,
    CorpusStoreWriter,
    LazySurface,
    build_store,
    clear_shard_cache,
    export_inline_manifest,
    materialize_surface,
    mmap_npz,
    surface_content_hash,
    write_deterministic_npz,
)

__all__ = [
    "CorpusStore",
    "CorpusStoreError",
    "CorpusStoreWriter",
    "DEFAULT_SHARD_STORIES",
    "INDEX_FILENAME",
    "LazySurface",
    "STORE_FORMAT",
    "STORE_VERSION",
    "WorkloadConfig",
    "build_store",
    "clear_shard_cache",
    "export_inline_manifest",
    "generate_store",
    "generate_workload",
    "iter_workload",
    "materialize_surface",
    "mmap_npz",
    "surface_content_hash",
    "write_deterministic_npz",
]
