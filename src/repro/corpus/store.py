"""The columnar corpus store: content-addressed density surfaces on disk.

Story manifests inline every density surface as JSON, which dies well
before the ROADMAP's 10^6-story target -- parse time and resident memory
both scale with the whole corpus.  The store keeps a corpus *columnar*
instead:

* each **shard** is one uncompressed ``.npz`` under ``shards/`` holding the
  stacked surfaces of stories that share a spatial signature (identical
  distance grid, time grid and density unit): ``values`` of shape
  ``(stories, times, distances)``, ``group_sizes`` of shape
  ``(stories, distances)``, plus the shared ``distances`` and ``times``
  axes.  Members are ZIP-stored (never deflated) so they can be
  memory-mapped in place;
* ``index.json`` maps every story name to its shard, row and SHA-256
  content hash, and every shard file to its own file hash -- the
  content-addressed part: ``repro corpus verify`` re-hashes both layers.

Reads are **lazy**: :meth:`CorpusStore.handle` returns a picklable
:class:`LazySurface` that carries only the story's axes and metadata; the
values matrix stays on disk until a shard solve materialises the handle
(``solve_shard_payload`` calls :meth:`LazySurface.load`), so scoring a
corpus through the service holds at most one shard's worth of surfaces per
worker rather than the whole corpus.

Writes are **deterministic**: npz members are written with a fixed zip
timestamp and no compression, and the index is sorted JSON, so the same
corpus content always produces byte-identical store files (the workload
generator's seed therefore addresses an exact store).
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.cascade.density import DENSITY_UNITS, DensitySurface

STORE_FORMAT = "repro-corpus-store"
STORE_VERSION = 2
INDEX_FILENAME = "index.json"
SHARD_DIRNAME = "shards"

#: Stories per shard file before the writer cuts a new one.  Bounds both the
#: writer's buffered memory and the bytes a worker materialises per solve.
DEFAULT_SHARD_STORIES = 512

#: The zip local-header timestamp of every member: the DOS epoch, so store
#: bytes depend only on corpus content, never on the build's wall clock
#: (``np.savez`` would stamp the current time and break determinism).
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


class CorpusStoreError(ValueError):
    """Raised when a corpus store cannot be written, opened or validated."""


# ---------------------------------------------------------------------- #
# Deterministic npz writing and zero-copy npz reading
# ---------------------------------------------------------------------- #
def write_deterministic_npz(path: "str | Path", arrays: "Mapping[str, np.ndarray]") -> None:
    """Write ``arrays`` as an uncompressed ``.npz`` with fixed zip metadata.

    Functionally ``np.savez``, minus the two properties that break the
    store's contracts: members are ZIP-stored so :func:`mmap_npz` can map
    them in place, and every local header carries the DOS-epoch timestamp
    so identical arrays always produce identical bytes.
    """
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
        for name, array in arrays.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(
                buffer, np.ascontiguousarray(array), allow_pickle=False
            )
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            archive.writestr(info, buffer.getvalue())


def mmap_npz(path: "str | Path") -> "dict[str, np.ndarray]":
    """Memory-map every member of an uncompressed ``.npz`` in place.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
    zip archives and reads members into memory, so the store parses the zip
    layout itself: each member's payload offset is recovered from its local
    file header, the npy header is read there, and the raw data region is
    handed to ``np.memmap`` -- no copy, resident only as the OS pages it in.
    """
    path = str(path)
    arrays: "dict[str, np.ndarray]" = {}
    with zipfile.ZipFile(path) as archive:
        members = archive.infolist()
    with open(path, "rb") as handle:
        for info in members:
            if info.compress_type != zipfile.ZIP_STORED:
                raise CorpusStoreError(
                    f"{path}: member {info.filename!r} is compressed; store "
                    f"shards must be ZIP-stored to be memory-mappable"
                )
            handle.seek(info.header_offset)
            header = handle.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                raise CorpusStoreError(
                    f"{path}: corrupt local file header for {info.filename!r}"
                )
            name_length = int.from_bytes(header[26:28], "little")
            extra_length = int.from_bytes(header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_length + extra_length)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                raise CorpusStoreError(
                    f"{path}: unsupported npy format version {version} in "
                    f"{info.filename!r}"
                )
            name = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=handle.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


@lru_cache(maxsize=8)
def _open_shard(path: str) -> "dict[str, np.ndarray]":
    """Small cache of open shard mmaps, keyed by absolute path.

    Bounded: entries are memory maps, so the cache costs address space and
    page-cache residency, not heap -- but the cap keeps descriptor-backed
    mappings from accumulating across many stores in one process.
    """
    return mmap_npz(path)


def clear_shard_cache() -> None:
    """Drop all cached shard mmaps (tests that rewrite shard files in place)."""
    _open_shard.cache_clear()


def surface_content_hash(
    distances: np.ndarray,
    times: np.ndarray,
    values: np.ndarray,
    group_sizes: np.ndarray,
    unit: str,
) -> str:
    """SHA-256 over a story's canonical float64 byte encoding."""
    digest = hashlib.sha256()
    for array in (distances, times, values, group_sizes):
        digest.update(np.ascontiguousarray(np.asarray(array, dtype=float)).tobytes())
    digest.update(unit.encode("utf-8"))
    return digest.hexdigest()


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# Lazy handles
# ---------------------------------------------------------------------- #
@dataclass
class LazySurface:
    """A picklable handle to one stored story surface, loaded on demand.

    Carries only the story's axes (distances/times, straight from the
    index) plus its shard address, so the sharder's ``key_for`` and the
    manifest resolver's training-window checks work without touching the
    values matrix.  :meth:`load` materialises a concrete
    :class:`~repro.cascade.density.DensitySurface`; :meth:`profile` reads a
    single time row through the shard's memory map, so the resolve-time
    empty-first-hour check stays O(distances) however large the corpus.

    Plain data fields only: handles cross the process-executor boundary
    inside :class:`~repro.service.execution.ShardPayload`, and each worker
    re-opens (and caches) the shard mmap on its side.
    """

    store_root: str
    shard_file: str
    row: int
    name: str
    distances: np.ndarray
    times: np.ndarray
    unit: str = "percent"
    metadata: dict = field(default_factory=dict)
    #: Index-recorded sum of the first observed hour's densities; lets the
    #: resolver's empty-anchor check run off the index alone, never paging
    #: in shard data for corpora whose stories spread over many shards.
    first_hour_sum: "float | None" = None

    def __post_init__(self) -> None:
        self.distances = np.asarray(self.distances, dtype=float)
        self.times = np.asarray(self.times, dtype=float)

    def _arrays(self) -> "dict[str, np.ndarray]":
        return _open_shard(str(Path(self.store_root) / self.shard_file))

    def profile(self, time: float) -> np.ndarray:
        """Density over distance at one time -- one mmap row, no full load."""
        matches = np.nonzero(np.isclose(self.times, time))[0]
        if matches.size == 0:
            raise KeyError(f"time {time} is not in the surface")
        row = self._arrays()["values"][self.row, int(matches[0]), :]
        return np.array(row, dtype=float)

    def profile_sum(self, time: float) -> float:
        """Total density at one time, off the index when it is the first hour.

        JSON floats round-trip exactly, so the recorded ``first_hour_sum``
        equals ``profile(times[0]).sum()`` bit for bit; other times fall
        back to one mmap row read.
        """
        if self.first_hour_sum is not None and np.isclose(time, self.times[0]):
            return float(self.first_hour_sum)
        return float(self.profile(time).sum())

    def load(self) -> DensitySurface:
        """Materialise the full surface (copies this story's rows off the mmap)."""
        arrays = self._arrays()
        return DensitySurface(
            distances=np.array(self.distances, dtype=float),
            times=np.array(self.times, dtype=float),
            values=np.array(arrays["values"][self.row], dtype=float),
            group_sizes=np.array(arrays["group_sizes"][self.row], dtype=float),
            unit=self.unit,
            metadata=dict(self.metadata),
        )


def materialize_surface(surface) -> DensitySurface:
    """A concrete :class:`DensitySurface` from a surface or a lazy handle."""
    if isinstance(surface, DensitySurface):
        return surface
    loader = getattr(surface, "load", None)
    if callable(loader):
        return loader()
    return surface


# ---------------------------------------------------------------------- #
# Writing
# ---------------------------------------------------------------------- #
class CorpusStoreWriter:
    """Incrementally build a corpus store, one story at a time.

    Stories are buffered per spatial signature ``(distances, times, unit)``
    and flushed to a shard file whenever a bucket reaches
    ``max_shard_stories``, so building a million-story store never holds
    more than ``signatures * max_shard_stories`` surfaces in memory.
    Call :meth:`finalize` to flush the tails and write ``index.json``.
    """

    def __init__(
        self,
        root: "str | Path",
        metric: str = "hops",
        hours: "int | None" = None,
        model: "str | None" = None,
        max_shard_stories: int = DEFAULT_SHARD_STORIES,
    ) -> None:
        if max_shard_stories < 1:
            raise CorpusStoreError(
                f"max_shard_stories must be >= 1, got {max_shard_stories}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / SHARD_DIRNAME).mkdir(exist_ok=True)
        self._metric = str(metric)
        self._hours = int(hours) if hours is not None else None
        self._model = str(model) if model is not None else None
        self._max_shard_stories = int(max_shard_stories)
        # signature -> list of (name, values, group_sizes, metadata, model)
        self._buckets: "dict[tuple, list]" = {}
        self._shards: "list[dict]" = []
        self._stories: "dict[str, dict]" = {}
        self._finalized = False

    def add(self, name: str, surface, model: "str | None" = None) -> None:
        """Buffer one story; accepts a surface or a lazy handle."""
        if self._finalized:
            raise CorpusStoreError("the store has been finalized; cannot add stories")
        name = str(name)
        if name in self._stories or any(
            entry[0] == name for bucket in self._buckets.values() for entry in bucket
        ):
            raise CorpusStoreError(
                f"duplicate story name {name!r}: every story in a corpus "
                f"store needs a unique name"
            )
        surface = materialize_surface(surface)
        if surface.unit not in DENSITY_UNITS:
            raise CorpusStoreError(
                f"story {name!r} has unit {surface.unit!r}; expected one of "
                f"{DENSITY_UNITS}"
            )
        signature = (
            tuple(float(d) for d in surface.distances),
            tuple(float(t) for t in surface.times),
            surface.unit,
        )
        metadata = {
            key: value
            for key, value in surface.metadata.items()
            if isinstance(value, (int, float, str, bool, type(None)))
        }
        bucket = self._buckets.setdefault(signature, [])
        bucket.append(
            (
                name,
                np.array(surface.values, dtype=float),
                np.array(surface.group_sizes, dtype=float),
                metadata,
                str(model) if model is not None else None,
            )
        )
        if len(bucket) >= self._max_shard_stories:
            self._flush(signature)

    def _flush(self, signature: tuple) -> None:
        bucket = self._buckets.pop(signature)
        distances = np.asarray(signature[0], dtype=float)
        times = np.asarray(signature[1], dtype=float)
        unit = signature[2]
        shard_index = len(self._shards)
        relative = f"{SHARD_DIRNAME}/shard-{shard_index:05d}.npz"
        path = self.root / relative
        values = np.stack([entry[1] for entry in bucket])
        group_sizes = np.stack([entry[2] for entry in bucket])
        write_deterministic_npz(
            path,
            {
                "distances": distances,
                "times": times,
                "values": values,
                "group_sizes": group_sizes,
            },
        )
        self._shards.append(
            {
                "file": relative,
                "sha256": _file_sha256(path),
                "stories": len(bucket),
                "distances": [float(d) for d in distances],
                "times": [float(t) for t in times],
                "unit": unit,
            }
        )
        for row, (name, story_values, story_groups, metadata, model) in enumerate(bucket):
            entry = {
                "shard": shard_index,
                "row": row,
                "sha256": surface_content_hash(
                    distances, times, story_values, story_groups, unit
                ),
                "nbytes": int(story_values.nbytes + story_groups.nbytes),
                "horizon": float(times[-1]),
                # Cached so consumers can skip empty-first-hour stories from
                # the index alone, without touching the shard at all.
                "first_hour_sum": float(story_values[0, :].sum()),
            }
            if model is not None:
                entry["model"] = model
            if metadata:
                entry["metadata"] = metadata
            self._stories[name] = entry

    def finalize(self) -> "CorpusStore":
        """Flush every pending bucket, write ``index.json``, open the store."""
        if self._finalized:
            raise CorpusStoreError("the store has already been finalized")
        for signature in list(self._buckets):
            self._flush(signature)
        index = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "metric": self._metric,
            "hours": self._hours,
            "model": self._model,
            "shards": self._shards,
            "stories": self._stories,
        }
        with open(self.root / INDEX_FILENAME, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(index, indent=2, sort_keys=True) + "\n")
        self._finalized = True
        return CorpusStore.open(self.root)


def build_store(
    root: "str | Path",
    surfaces: "Mapping[str, object]",
    metric: str = "hops",
    hours: "int | None" = None,
    model: "str | None" = None,
    models: "Mapping[str, str] | None" = None,
    max_shard_stories: int = DEFAULT_SHARD_STORIES,
) -> "CorpusStore":
    """Build a store from a mapping of surfaces in one call.

    ``models`` optionally names a per-story model override recorded in the
    index (``model`` is the store-wide default).
    """
    writer = CorpusStoreWriter(
        root,
        metric=metric,
        hours=hours,
        model=model,
        max_shard_stories=max_shard_stories,
    )
    overrides = dict(models or {})
    for name, surface in surfaces.items():
        writer.add(name, surface, model=overrides.get(name))
    return writer.finalize()


# ---------------------------------------------------------------------- #
# Reading
# ---------------------------------------------------------------------- #
class CorpusStore:
    """Read API over a corpus store directory: lazy handles, hash checks."""

    def __init__(self, root: Path, index: dict) -> None:
        self.root = Path(root)
        if not isinstance(index, dict) or index.get("format") != STORE_FORMAT:
            raise CorpusStoreError(
                f"{self.root}: not a corpus store index (missing "
                f"format={STORE_FORMAT!r})"
            )
        version = index.get("version")
        if version != STORE_VERSION:
            raise CorpusStoreError(
                f"{self.root}: unsupported store version {version!r} "
                f"(this build reads version {STORE_VERSION})"
            )
        self.index = index
        # Per-shard axes parsed once and shared by every handle of the
        # shard -- at corpus scale the per-story list-to-array conversion
        # otherwise dominates resolve time.
        self._shard_axes: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}

    @staticmethod
    def locate_index(path: "str | Path") -> "Path | None":
        """The index file a store path points at, or ``None`` if absent.

        Accepts the store directory or the ``index.json`` file itself --
        the two shapes ``open_corpus`` has to distinguish from a manifest.
        """
        path = Path(path)
        if path.is_dir():
            candidate = path / INDEX_FILENAME
            return candidate if candidate.is_file() else None
        if path.name == INDEX_FILENAME and path.is_file():
            return path
        return None

    @classmethod
    def open(cls, path: "str | Path") -> "CorpusStore":
        """Open a store from its directory or its ``index.json`` path."""
        path = Path(path)
        index_path = cls.locate_index(path)
        if index_path is None:
            if path.is_file():
                # A store index saved under a non-standard file name.
                index_path = path
            else:
                raise CorpusStoreError(
                    f"{path}: no corpus store here (expected a directory "
                    f"containing {INDEX_FILENAME}, or the index file itself)"
                )
        try:
            with open(index_path, encoding="utf-8") as handle:
                index = json.load(handle)
        except json.JSONDecodeError as error:
            raise CorpusStoreError(
                f"{index_path} is not valid JSON: {error}"
            ) from error
        return cls(index_path.parent, index)

    # -- metadata ------------------------------------------------------- #
    @property
    def metric(self) -> str:
        return str(self.index.get("metric", "hops"))

    @property
    def hours(self) -> "int | None":
        hours = self.index.get("hours")
        return int(hours) if hours is not None else None

    @property
    def model(self) -> "str | None":
        model = self.index.get("model")
        return str(model) if model is not None else None

    @property
    def story_names(self) -> "tuple[str, ...]":
        return tuple(self.index.get("stories", {}))

    @property
    def total_surface_nbytes(self) -> int:
        """Bytes of surface data across all stories (from the index alone)."""
        return sum(
            int(entry.get("nbytes", 0))
            for entry in self.index.get("stories", {}).values()
        )

    def __len__(self) -> int:
        return len(self.index.get("stories", {}))

    def __contains__(self, name: str) -> bool:
        return name in self.index.get("stories", {})

    def __iter__(self) -> "Iterator[str]":
        return iter(self.index.get("stories", {}))

    # -- access --------------------------------------------------------- #
    def record(self, name: str) -> dict:
        """The index entry of one story (shard, row, hash, metadata)."""
        try:
            return self.index["stories"][name]
        except KeyError:
            raise CorpusStoreError(
                f"story {name!r} is not in the corpus store at {self.root} "
                f"({len(self)} stories)"
            ) from None

    def model_for(self, name: str) -> "str | None":
        """The story's recorded model override, else the store default."""
        record = self.record(name)
        return record.get("model", self.model)

    def handle(self, name: str) -> LazySurface:
        """A lazy, picklable surface handle (values stay on disk)."""
        record = self.record(name)
        try:
            shard_index = int(record["shard"])
            shard = self.index["shards"][shard_index]
        except (IndexError, KeyError, TypeError, ValueError):
            raise CorpusStoreError(
                f"story {name!r} references shard {record.get('shard')!r}, "
                f"which is not in the index of {self.root}"
            ) from None
        axes = self._shard_axes.get(shard_index)
        if axes is None:
            axes = (
                np.asarray(shard["distances"], dtype=float),
                np.asarray(shard["times"], dtype=float),
            )
            self._shard_axes[shard_index] = axes
        return LazySurface(
            store_root=str(self.root),
            shard_file=str(shard["file"]),
            row=int(record["row"]),
            name=name,
            distances=axes[0],
            times=axes[1],
            unit=str(shard.get("unit", "percent")),
            metadata=dict(record.get("metadata", {})),
            first_hour_sum=(
                float(record["first_hour_sum"])
                if record.get("first_hour_sum") is not None
                else None
            ),
        )

    def handles(self) -> "dict[str, LazySurface]":
        """Lazy handles for every story, in index order."""
        return {name: self.handle(name) for name in self}

    def load(self, name: str) -> DensitySurface:
        """Materialise one story's full surface."""
        return self.handle(name).load()

    # -- integrity ------------------------------------------------------ #
    def verify(self) -> "list[str]":
        """Re-hash both layers; returns human-readable problem lines.

        Checks every shard file's SHA-256 against the index, then reloads
        each shard (bypassing the mmap cache, so in-place corruption is
        seen) and re-hashes every story's content against its index entry.
        An empty list means the store is intact.
        """
        problems: "list[str]" = []
        shards = self.index.get("shards", [])
        shard_arrays: "dict[int, dict | None]" = {}
        for shard_index, shard in enumerate(shards):
            path = self.root / shard["file"]
            if not path.is_file():
                problems.append(f"{shard['file']}: shard file is missing")
                shard_arrays[shard_index] = None
                continue
            digest = _file_sha256(path)
            if digest != shard.get("sha256"):
                problems.append(
                    f"{shard['file']}: file hash mismatch (index "
                    f"{shard.get('sha256', '?')[:12]}..., actual {digest[:12]}...)"
                )
            try:
                shard_arrays[shard_index] = mmap_npz(path)
            except (CorpusStoreError, OSError, ValueError, zipfile.BadZipFile) as error:
                problems.append(f"{shard['file']}: unreadable: {error}")
                shard_arrays[shard_index] = None
        for name, record in self.index.get("stories", {}).items():
            shard_index = record.get("shard")
            if not isinstance(shard_index, int) or not 0 <= shard_index < len(shards):
                problems.append(
                    f"story {name!r}: dangling shard reference {shard_index!r}"
                )
                continue
            arrays = shard_arrays.get(shard_index)
            if arrays is None:
                continue  # the shard-level problem already covers this story
            shard = shards[shard_index]
            row = int(record.get("row", -1))
            if not 0 <= row < arrays["values"].shape[0]:
                problems.append(
                    f"story {name!r}: row {row} is out of range for "
                    f"{shard['file']} ({arrays['values'].shape[0]} rows)"
                )
                continue
            digest = surface_content_hash(
                np.asarray(shard["distances"], dtype=float),
                np.asarray(shard["times"], dtype=float),
                arrays["values"][row],
                arrays["group_sizes"][row],
                str(shard.get("unit", "percent")),
            )
            if digest != record.get("sha256"):
                problems.append(
                    f"story {name!r}: content hash mismatch (index "
                    f"{record.get('sha256', '?')[:12]}..., actual {digest[:12]}...)"
                )
        return problems


def export_inline_manifest(store: CorpusStore) -> dict:
    """The store's corpus as a classic inline manifest payload.

    The inverse of ``repro corpus build``: every story becomes an inline
    entry whose JSON floats round-trip exactly (``repr``-based), so scoring
    the exported manifest is bit-identical to scoring from the store.
    ``group_sizes`` and ``unit`` are written only when they differ from the
    inline-story defaults (all-ones groups, percent).
    """
    payload: dict = {"metric": store.metric, "stories": []}
    if store.hours is not None:
        payload["hours"] = store.hours
    if store.model is not None:
        payload["model"] = store.model
    for name in store:
        surface = store.load(name)
        entry: dict = {
            "name": name,
            "distances": [float(d) for d in surface.distances],
            "times": [float(t) for t in surface.times],
            "values": [[float(v) for v in row] for row in surface.values],
        }
        if not np.all(surface.group_sizes == 1.0):
            entry["group_sizes"] = [float(g) for g in surface.group_sizes]
        if surface.unit != "percent":
            entry["unit"] = surface.unit
        record = store.record(name)
        if record.get("model") is not None:
            entry["model"] = record["model"]
        payload["stories"].append(entry)
    return payload
