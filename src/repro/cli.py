"""Command-line interface for the reproduction.

Five subcommands cover the common workflows without writing any Python:

``build-corpus``
    Build the synthetic Digg-like corpus and save it to a JSON file.
``characterize``
    Print the Section III-B characterisation (distance histogram, density
    surfaces, saturation times) for one story.
``predict``
    Run the paper's prediction protocol (Table I / Table II) for one story
    and distance metric.
``predict-batch``
    Run the prediction protocol for several stories in one shot: per-story
    calibration through the batched grid-then-refine path and all forward
    solves advanced together in one vectorised batched PDE solve.  Use
    ``--json`` to emit machine-readable results.
``serve-batch``
    Score a whole corpus of stories through the async prediction service:
    the manifest's stories are sharded by spatial signature, drained by a
    bounded worker pool, and each per-story result is streamed to stdout as
    one JSON line the moment its shard completes.  Exit code 3 signals
    partial failure (some stories scored, some failed), so batch pipelines
    can tell it from configuration errors (2) and total failure (1).
``daemon``
    Run the long-lived prediction daemon: a JSON-lines protocol over
    stdin/stdout (default), a Unix-domain socket or TCP (``--listen
    unix:PATH|tcp:HOST:PORT``; ``--socket PATH`` is the pre-transport
    spelling of ``--listen unix:PATH``), serving submit/status/stats/
    shutdown requests against one shared worker pool; ``--journal DIR``
    makes job lifecycles survive a crash (a restarted daemon reports the
    dead process's in-flight jobs as ``interrupted``), ``--max-client-jobs``
    / ``--max-client-stories`` bound each client's share of the queue,
    ``--autotune`` sizes shards from observed solve times, ``--timeout``
    sets a default per-story wall-clock deadline, and ``--executor
    process --workers N`` runs shard solves on a crash-respawning process
    pool instead of in-process threads (``serve-batch`` takes the same
    flags).
``submit``
    Submit a story manifest to a running daemon (``--socket PATH`` or
    ``--connect unix:PATH|tcp:HOST:PORT``) and stream the per-story result
    events to stdout as they complete; a daemon dying mid-stream exits 3
    (partial failure -- already-streamed results are valid).
``daemon-stats``
    Fetch a running daemon's stats snapshot (job counts, service counters,
    telemetry registry) and print it as JSON (``--socket`` or ``--connect``
    pick the daemon); ``--prometheus`` prints the telemetry in Prometheus
    text exposition format instead.
``trace``
    Reconstruct one daemon job's span tree with critical-path timing, from
    a live daemon (``--socket`` / ``--connect``, requires the daemon to run
    with ``--trace``) or offline from a ``--trace-dir`` export; ``--chrome``
    / ``--speedscope`` write viewer-ready JSON profiles and ``--check``
    validates tree well-formedness for CI.
``models``
    List every registered prediction model with its one-line description.
``compare``
    Score one corpus under several registered models and print the
    head-to-head accuracy table (the paper's Table-II-style comparison of
    the DL model against its baselines).
``report``
    Run every registered experiment and print a compact paper-vs-measured
    summary (a quick, text-only version of the benchmark harness).
``corpus``
    Manage columnar corpus stores (:mod:`repro.corpus`): ``generate`` a
    seeded synthetic workload straight into a store, ``build`` a store
    from an inline manifest, ``verify`` a store's two content-hash layers,
    and ``export`` a store back to an inline manifest.  ``serve-batch
    --manifest`` accepts a store directory directly, and manifests may
    reference a store via a ``"store"`` block; surfaces are memory-mapped
    and materialised lazily per shard at solve time.

The prediction commands accept ``--backend`` to pick the PDE solver backend
by registry name (``internal`` is the package's own Crank-Nicolson engine
with banded operator caching; ``thomas`` pins the pure-numpy tridiagonal
fallback; ``scipy`` delegates to ``solve_ivp`` for cross-validation) and
``--operator`` to pick the Crank-Nicolson operator factorization mode
(``auto`` | ``banded`` | ``thomas`` | ``dense``).  They also accept
``--model`` to pick the prediction model by :mod:`repro.models` registry
name (``dl``, ``logistic``, ``sis``, ``linear-influence``, or anything
registered at runtime).  Unknown names exit with the engine's / registry's
error message listing everything registered -- including names registered
at runtime.

Run ``python -m repro --help`` for the full argument reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.experiments import (
    ExperimentContext,
    run_ablation_baselines,
    run_fig2_distance_distribution,
    run_table1_accuracy_hops,
    run_table2_accuracy_interests,
)
from repro.analysis.patterns import saturation_time
from repro.analysis.reports import render_density_surface, render_figure_series
from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.io.tables import format_table

STORY_CHOICES = ("s1", "s2", "s3", "s4")

#: Exit code of serve-batch / submit when some stories scored and some
#: failed -- distinct from 1 (nothing usable) and 2 (bad configuration) so
#: batch pipelines can detect partial failure without parsing the stream.
EXIT_PARTIAL_FAILURE = 3


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=2000, help="number of users in the corpus")
    parser.add_argument(
        "--background-stories", type=int, default=40, help="number of background stories"
    )
    parser.add_argument("--seed", type=int, default=2009, help="corpus random seed")
    parser.add_argument(
        "--horizon", type=float, default=50.0, help="observation window in hours"
    )


def _hours_window(value: str) -> int:
    """argparse type for --hours: calibration needs hour 1 plus >= 1 target."""
    try:
        hours = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}") from error
    if hours < 2:
        raise argparse.ArgumentTypeError(
            f"--hours must be at least 2 (hour 1 builds phi, later hours are "
            f"the calibration targets), got {hours}"
        )
    return hours


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # Deliberately NOT argparse choices: backends can be registered at
    # runtime, so the name is validated against the live registry when the
    # command runs (see _resolve_solver_config), producing the engine's own
    # error message with the registered-backend list.
    parser.add_argument(
        "--backend",
        default="internal",
        help=(
            "PDE solver backend: 'internal' is the package's Crank-Nicolson "
            "engine with banded operator caching and batched solves; 'thomas' "
            "pins the pure-numpy tridiagonal solver; 'scipy' cross-validates "
            "through scipy.integrate.solve_ivp"
        ),
    )
    # Same runtime-validation rationale: unknown modes exit with the engine's
    # own error message listing every registered operator mode.
    parser.add_argument(
        "--operator",
        default="auto",
        help=(
            "Crank-Nicolson operator factorization mode: 'auto' (the "
            "backend's default, banded for the internal engine), 'banded', "
            "'thomas' or 'dense'"
        ),
    )


def _add_model_argument(
    parser: argparse.ArgumentParser, default: "str | None" = "dl"
) -> None:
    # Like --backend, NOT argparse choices: models can be registered at
    # runtime, so names are validated against the live registry when the
    # command runs (_resolve_model), producing the registry's own error
    # message with the registered-model list.
    parser.add_argument(
        "--model",
        default=default,
        help=(
            "prediction model by registry name: 'dl' (the paper's Diffusive "
            "Logistic model, the default), 'logistic', 'sis', "
            "'linear-influence', or anything registered at runtime "
            "(see 'repro models')"
        ),
    )


def _resolve_model(name: str) -> "str | None":
    """Validate a model name against the live registry.

    Returns an error message (for stderr) when the name is unknown, None
    when it resolves -- mirroring :func:`_resolve_solver_config`.
    """
    from repro.core.errors import UnknownModelError
    from repro.models import get_model

    try:
        get_model(name)
    except UnknownModelError as error:
        return f"error: {error}"
    return None


def _resolve_executor(name: str) -> "str | None":
    """Validate an executor name against the execution-backend registry.

    Returns an error message (for stderr) when the name is unknown, None
    when it resolves -- mirroring :func:`_resolve_model`.
    """
    from repro.core.errors import UnknownExecutorError
    from repro.service import get_executor_factory

    try:
        get_executor_factory(name)
    except UnknownExecutorError as error:
        return f"error: {error}"
    return None


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    """The shared --executor flag of serve-batch and daemon.

    Runtime-validated (like --model) instead of argparse choices, so
    backends registered at runtime via register_executor are selectable.
    """
    parser.add_argument(
        "--executor",
        default="thread",
        metavar="NAME",
        help=(
            "execution backend shard solves run on: 'thread' (in-process "
            "pool, default), 'process' (process pool: per-process "
            "operator caches, crash respawn, scales calibration-heavy "
            "corpora past the GIL) or 'cluster' (fan shards out to worker "
            "daemons declared with --worker/--workers-file)"
        ),
    )


def _resolve_solver_config(backend: str, operator: str = "auto") -> "str | None":
    """Validate a (backend, operator) pair against the live engine.

    Returns an error message (for stderr) when either name is unknown or the
    backend does not support operator selection, None when the combination is
    fine -- the same error paths, and the same registered-name lists, the
    solver engine itself produces.
    """
    from repro.numerics.pde_solver import ReactionDiffusionSolver

    try:
        ReactionDiffusionSolver(backend=backend, operator=operator)
    except ValueError as error:
        return f"error: {error}"
    return None


def _corpus_config(args: argparse.Namespace) -> SyntheticDiggConfig:
    return SyntheticDiggConfig(
        num_users=args.users,
        num_background_stories=args.background_stories,
        horizon_hours=args.horizon,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Diffusive Logistic information-diffusion model (ICDCS 2012).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build-corpus", help="build and save a synthetic Digg-like corpus")
    _add_corpus_arguments(build)
    build.add_argument("--output", required=True, help="path of the JSON file to write")

    characterize = subparsers.add_parser(
        "characterize", help="print the temporal/spatial diffusion patterns of one story"
    )
    _add_corpus_arguments(characterize)
    characterize.add_argument("--story", default="s1", choices=["s1", "s2", "s3", "s4"])
    characterize.add_argument(
        "--metric", default="hops", choices=["hops", "interests"], help="distance metric"
    )

    predict = subparsers.add_parser(
        "predict", help="run the paper's prediction protocol and print the accuracy table"
    )
    _add_corpus_arguments(predict)
    predict.add_argument("--story", default="s1", choices=list(STORY_CHOICES))
    predict.add_argument("--metric", default="hops", choices=["hops", "interests"])
    predict.add_argument(
        "--hours",
        type=_hours_window,
        default=6,
        help="length of the training/evaluation window in hours (>= 2)",
    )
    _add_backend_argument(predict)
    _add_model_argument(predict)

    predict_batch = subparsers.add_parser(
        "predict-batch",
        help="run the prediction protocol for several stories in one batched solve",
        description=(
            "Fit and score many stories at once: each story is calibrated on its "
            "training window (batched grid search + local refinement) and all "
            "forward solves are advanced together as columns of one vectorised "
            "PDE solve, sharing cached operator factorizations."
        ),
    )
    _add_corpus_arguments(predict_batch)
    predict_batch.add_argument(
        "--stories",
        nargs="+",
        default=list(STORY_CHOICES),
        choices=list(STORY_CHOICES),
        help="stories to predict (default: all four representative stories)",
    )
    predict_batch.add_argument("--metric", default="hops", choices=["hops", "interests"])
    predict_batch.add_argument(
        "--hours",
        type=_hours_window,
        default=6,
        help="length of the training/evaluation window in hours (>= 2)",
    )
    predict_batch.add_argument(
        "--sequential-calibration",
        action="store_true",
        help="calibrate with the sequential per-candidate protocol instead of the batched grid",
    )
    predict_batch.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write machine-readable results to PATH ('-' for stdout)",
    )
    _add_backend_argument(predict_batch)
    _add_model_argument(predict_batch)

    serve_batch = subparsers.add_parser(
        "serve-batch",
        help="score a manifest of stories through the async prediction service",
        description=(
            "Read a story manifest (corpus references and/or inline density "
            "surfaces), shard the stories by spatial signature, drain the "
            "shards through the async prediction service's bounded worker "
            "pool, and stream one JSON result line per story to stdout as it "
            "completes.  The human-readable summary goes to stderr.  Corpus "
            "flags given explicitly override the manifest's 'corpus' block "
            "(like --hours overrides its 'hours')."
        ),
    )
    _add_corpus_arguments(serve_batch)
    # For serve-batch the corpus flags are *overrides* of the manifest's
    # corpus block, so their defaults become None ("not given"); unset fields
    # fall back to the manifest and then to the shared CLI defaults
    # (repro.service.manifest.CORPUS_FIELD_DEFAULTS).
    serve_batch.set_defaults(users=None, background_stories=None, seed=None, horizon=None)
    serve_batch.add_argument(
        "--manifest", required=True, help="path of the story-manifest JSON file"
    )
    serve_batch.add_argument(
        "--hours",
        type=_hours_window,
        default=None,
        help=(
            "length of the training/evaluation window in hours (>= 2); "
            "overrides the manifest's 'hours' (default 6)"
        ),
    )
    serve_batch.add_argument(
        "--workers",
        type=int,
        default=4,
        help="number of shard solves in flight at once (worker pool size)",
    )
    _add_executor_argument(serve_batch)
    serve_batch.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help="backpressure bound: maximum queued+running stories",
    )
    serve_batch.add_argument(
        "--shard-size",
        type=int,
        default=32,
        help="maximum stories advanced together in one batched solve",
    )
    serve_batch.add_argument(
        "--sequential-calibration",
        action="store_true",
        help="calibrate with the sequential per-candidate protocol instead of the batched grid",
    )
    serve_batch.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the streamed JSON lines to PATH",
    )
    _add_backend_argument(serve_batch)
    # Default None = "not given": only an explicit --model overrides the
    # manifest's manifest-level "model" (story-level entries always win).
    _add_model_argument(serve_batch, default=None)

    daemon = subparsers.add_parser(
        "daemon",
        help="run the long-lived prediction daemon (JSON-lines protocol)",
        description=(
            "Serve prediction jobs over a JSON-lines protocol: submit/status/"
            "stats/shutdown requests arrive over stdin (default), a Unix-"
            "domain socket or TCP (--listen), manifests are scored through "
            "one shared sharded worker pool, and per-story results stream "
            "back to the submitting client as their shards complete."
        ),
    )
    daemon_address = daemon.add_mutually_exclusive_group()
    daemon_address.add_argument(
        "--listen",
        metavar="ADDR",
        default=None,
        help=(
            "serve on this transport address: unix:PATH, tcp:HOST:PORT or "
            "stdio (default stdio; tcp port 0 binds an ephemeral port)"
        ),
    )
    daemon_address.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help=(
            "serve on this Unix-domain socket instead of stdin/stdout "
            "(equivalent to --listen unix:PATH)"
        ),
    )
    daemon.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help=(
            "journal job lifecycles to DIR/journal.jsonl; after a crash, a "
            "daemon restarted with the same --journal reports the previous "
            "process's in-flight jobs as 'interrupted' instead of forgetting "
            "them"
        ),
    )
    daemon.add_argument(
        "--journal-fsync",
        choices=("always", "never"),
        default="always",
        help=(
            "journal durability: 'always' fsyncs every record (an "
            "acknowledged job survives a power cut), 'never' only flushes "
            "(default: always)"
        ),
    )
    daemon.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --journal: re-run jobs the previous process left in "
            "flight (their journalled manifests are re-submitted under the "
            "original job ids and counted in daemon.jobs_resumed) instead "
            "of only reporting them as 'interrupted'"
        ),
    )
    daemon.add_argument(
        "--worker",
        action="append",
        default=None,
        metavar="ADDR",
        dest="workers_cluster",
        help=(
            "with --executor cluster: a worker daemon's address (unix:PATH "
            "or tcp:HOST:PORT); repeat the flag once per worker"
        ),
    )
    daemon.add_argument(
        "--workers-file",
        metavar="FILE",
        default=None,
        help=(
            "with --executor cluster: read worker addresses from FILE (one "
            "per line, '#' comments); combines with --worker"
        ),
    )
    daemon.add_argument(
        "--max-client-jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-client quota: at most N jobs in flight per connection "
            "(excess submits are rejected with a typed error event)"
        ),
    )
    daemon.add_argument(
        "--max-client-stories",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-client quota: at most N stories queued or running per "
            "connection across its in-flight jobs"
        ),
    )
    daemon.add_argument(
        "--workers",
        type=int,
        default=4,
        help="number of shard solves in flight at once (worker pool size)",
    )
    _add_executor_argument(daemon)
    daemon.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help="backpressure bound: maximum queued+running stories",
    )
    daemon.add_argument(
        "--shard-size",
        type=int,
        default=32,
        help="maximum stories advanced together in one batched solve",
    )
    daemon.add_argument(
        "--autotune",
        action="store_true",
        help=(
            "size shards from an EWMA of observed per-story solve times "
            "(--shard-size then caps the autotuner's range)"
        ),
    )
    daemon.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-story wall-clock deadline for submitted jobs",
    )
    daemon.add_argument(
        "--sequential-calibration",
        action="store_true",
        help="calibrate with the sequential per-candidate protocol instead of the batched grid",
    )
    daemon.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace every job: spans from request parse through shard solve "
            "to result emission, queryable via the 'trace' protocol op and "
            "'repro trace' (off by default; the no-op tracer costs nothing)"
        ),
    )
    daemon.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help=(
            "export finished spans to DIR/spans.jsonl (one JSON record per "
            "line); implies --trace, and 'repro trace --trace-dir DIR' reads "
            "the export offline after the daemon exits"
        ),
    )
    daemon.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help=(
            "emit structured JSON log records (one per job state change, "
            "with job_id/trace_id fields) to stderr at this level"
        ),
    )
    _add_backend_argument(daemon)
    _add_model_argument(daemon)

    submit = subparsers.add_parser(
        "submit",
        help="submit a story manifest to a running daemon",
        description=(
            "Connect to a daemon (Unix socket or TCP), submit one story "
            "manifest as a job, and stream the daemon's per-story result "
            "events to stdout as JSON lines (summary on stderr).  Exit code "
            "3 signals partial failure, mirroring serve-batch -- including "
            "a daemon dying mid-stream after some results arrived."
        ),
    )
    submit_address = submit.add_mutually_exclusive_group(required=True)
    submit_address.add_argument(
        "--socket", metavar="PATH", help="the daemon's Unix socket"
    )
    submit_address.add_argument(
        "--connect",
        metavar="ADDR",
        help="the daemon's transport address: unix:PATH or tcp:HOST:PORT",
    )
    submit.add_argument(
        "--manifest", required=True, help="path of the story-manifest JSON file"
    )
    submit.add_argument(
        "--id", default=None, help="job id (the daemon generates one when omitted)"
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-story wall-clock deadline for this job",
    )
    submit.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the streamed JSON lines to PATH",
    )
    # None = defer to the manifest; an explicit name overrides the
    # manifest-level default (story-level "model" entries still win).
    _add_model_argument(submit, default=None)

    daemon_stats = subparsers.add_parser(
        "daemon-stats",
        help="print a running daemon's stats snapshot as JSON",
        description=(
            "Connect to a daemon (Unix socket or TCP), request its stats "
            "event (job counts, service counters incl. autotuner state, "
            "telemetry registry snapshot) and print it as indented JSON."
        ),
    )
    stats_address = daemon_stats.add_mutually_exclusive_group(required=True)
    stats_address.add_argument(
        "--socket", metavar="PATH", help="the daemon's Unix socket"
    )
    stats_address.add_argument(
        "--connect",
        metavar="ADDR",
        help="the daemon's transport address: unix:PATH or tcp:HOST:PORT",
    )
    daemon_stats.add_argument(
        "--prometheus",
        action="store_true",
        help=(
            "print the daemon's telemetry in Prometheus text exposition "
            "format instead of the JSON stats snapshot"
        ),
    )

    trace = subparsers.add_parser(
        "trace",
        help="render a daemon job's span tree (live daemon or exported spans)",
        description=(
            "Reconstruct one job's trace as a span tree with critical-path "
            "timing.  Reads spans from a running daemon (--socket/--connect, "
            "the 'trace' protocol op) or offline from a --trace-dir export "
            "(DIR/spans.jsonl, written by 'repro daemon --trace-dir').  "
            "--chrome/--speedscope export viewer-ready JSON; --check "
            "validates tree well-formedness for CI."
        ),
    )
    trace.add_argument("job", help="id of the job to reconstruct")
    trace_source = trace.add_mutually_exclusive_group(required=True)
    trace_source.add_argument(
        "--socket", metavar="PATH", help="the daemon's Unix socket"
    )
    trace_source.add_argument(
        "--connect",
        metavar="ADDR",
        help="the daemon's transport address: unix:PATH or tcp:HOST:PORT",
    )
    trace_source.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="read DIR/spans.jsonl instead of querying a live daemon",
    )
    trace.add_argument(
        "--check",
        action="store_true",
        help=(
            "validate the span tree (single root, no orphans, no negative "
            "durations) and print per-phase totals; exit 1 on problems"
        ),
    )
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="also write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace.add_argument(
        "--speedscope",
        metavar="PATH",
        default=None,
        help="also write a speedscope profile JSON (https://speedscope.app)",
    )

    subparsers.add_parser(
        "models",
        help="list every registered prediction model",
        description=(
            "Print the registry name and one-line description of every "
            "registered prediction model -- the names accepted by --model "
            "and by manifest 'model' fields."
        ),
    )

    compare = subparsers.add_parser(
        "compare",
        help="score one corpus under several models (head-to-head accuracy table)",
        description=(
            "Fit and score the same stories under several registered models "
            "and print the head-to-head accuracy comparison (one row per "
            "model, best overall accuracy first) -- the paper's "
            "Table-II-style DL-vs-baselines comparison for any corpus."
        ),
    )
    _add_corpus_arguments(compare)
    compare.add_argument(
        "--stories",
        nargs="+",
        default=list(STORY_CHOICES),
        choices=list(STORY_CHOICES),
        help="stories to score (default: all four representative stories)",
    )
    compare.add_argument("--metric", default="hops", choices=["hops", "interests"])
    compare.add_argument(
        "--hours",
        type=_hours_window,
        default=6,
        help="length of the training/evaluation window in hours (>= 2)",
    )
    compare.add_argument(
        "--models",
        nargs="+",
        default=["dl", "logistic", "sis"],
        metavar="MODEL",
        help=(
            "registry names of the models to compare "
            "(default: dl logistic sis; see 'repro models')"
        ),
    )
    compare.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write machine-readable results to PATH ('-' for stdout)",
    )
    _add_backend_argument(compare)

    report = subparsers.add_parser(
        "report", help="run the main experiments and print a compact summary"
    )
    _add_corpus_arguments(report)

    corpus = subparsers.add_parser(
        "corpus",
        help="manage columnar corpus stores (generate / build / verify / export)",
        description=(
            "The corpus-store toolbox: generate a seeded synthetic workload "
            "straight into a store, convert an inline manifest to a store, "
            "verify a store's content hashes, or export a store back to an "
            "inline manifest.  Stores are consumed by 'serve-batch "
            "--manifest <store>' and by manifest 'store' blocks; surfaces "
            "are memory-mapped and loaded lazily per shard at solve time."
        ),
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    generate = corpus_sub.add_parser(
        "generate",
        help="generate a seeded synthetic workload into a corpus store",
        description=(
            "Write a parameterized synthetic workload (logistic-in-time, "
            "decaying-in-distance surfaces with grid-size, horizon and "
            "burst-arrival variety) directly into a corpus store.  The "
            "store is a pure function of the parameters: the same flags "
            "always produce a byte-identical store."
        ),
    )
    generate.add_argument("--output", required=True, help="store directory to write")
    generate.add_argument(
        "--stories", type=int, default=1000, help="number of stories to generate"
    )
    generate.add_argument(
        "--seed", type=int, default=20120612, help="workload RNG seed"
    )
    generate.add_argument(
        "--metric", default="hops", choices=["hops", "interests"],
        help="distance metric recorded in the store",
    )
    generate.add_argument(
        "--min-distances", type=int, default=5,
        help="smallest distance-group count per story",
    )
    generate.add_argument(
        "--max-distances", type=int, default=12,
        help="largest distance-group count per story",
    )
    generate.add_argument(
        "--min-hours", type=int, default=8,
        help="shortest observed horizon per story (hourly snapshots)",
    )
    generate.add_argument(
        "--max-hours", type=int, default=24,
        help="longest observed horizon per story (hourly snapshots)",
    )
    generate.add_argument(
        "--peak-density", type=float, default=30.0,
        help="upper bound of the nearest group's carrying capacity",
    )
    generate.add_argument(
        "--growth-rate", type=float, default=1.0,
        help="scales every story's logistic growth rate",
    )
    generate.add_argument(
        "--bursts", type=int, default=4,
        help="number of arrival-burst centres stories cluster around",
    )
    generate.add_argument(
        "--burst-spread", type=float, default=1.5, metavar="HOURS",
        help="std-dev of arrival times around their burst centre",
    )
    generate.add_argument(
        "--shard-stories", type=int, default=512,
        help="stories per shard file before the writer cuts a new one",
    )

    build = corpus_sub.add_parser(
        "build",
        help="convert an inline/corpus-ref manifest into a corpus store",
        description=(
            "Resolve a story manifest (inline surfaces and/or synthetic-"
            "corpus references) and write every story into a corpus store, "
            "preserving per-story model overrides and the manifest's "
            "metric/hours/model defaults.  Empty-first-hour stories are "
            "stored too -- skip semantics stay with whoever scores the "
            "store later."
        ),
    )
    build.add_argument(
        "--manifest", required=True, help="path of the story-manifest JSON file"
    )
    build.add_argument("--output", required=True, help="store directory to write")
    build.add_argument(
        "--shard-stories", type=int, default=512,
        help="stories per shard file before the writer cuts a new one",
    )

    verify = corpus_sub.add_parser(
        "verify",
        help="re-hash a corpus store's shards and stories against its index",
        description=(
            "Check both content-addressing layers of a store: every shard "
            "file's SHA-256 against the index, and every story's surface "
            "content hash against its index entry.  Exit 0 when intact, 1 "
            "with one problem line per finding otherwise."
        ),
    )
    verify.add_argument("store", help="store directory (or its index.json)")

    export = corpus_sub.add_parser(
        "export",
        help="export a corpus store back to an inline manifest",
        description=(
            "Write the store's corpus as a classic inline manifest whose "
            "JSON floats round-trip exactly, so scoring the export is "
            "bit-identical to scoring from the store."
        ),
    )
    export.add_argument("store", help="store directory (or its index.json)")
    export.add_argument(
        "--output", default="-", metavar="PATH",
        help="manifest JSON path ('-' for stdout)",
    )

    return parser


def _command_build_corpus(args: argparse.Namespace) -> int:
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    corpus.dataset.save(args.output)
    print(
        f"wrote {corpus.dataset.num_stories} stories, {corpus.dataset.num_votes} votes, "
        f"{corpus.graph.num_users} users to {args.output}"
    )
    return 0


def _observed_surface(corpus, story: str, metric: str):
    if metric == "hops":
        return corpus.hop_density_surface(story)
    return corpus.interest_density_surface(story)


def _command_characterize(args: argparse.Namespace) -> int:
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    surface = _observed_surface(corpus, args.story, args.metric)

    histogram = corpus.hop_distance_histogram(args.story, max_distance=10)
    total = sum(histogram.values()) or 1
    print(render_figure_series(
        {args.story: {d: c / total for d, c in histogram.items()}},
        x_label="hop distance",
        title=f"Distribution of users around the initiator of {args.story}",
    ))
    print()
    print(render_density_surface(
        surface,
        times=[1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0],
        title=f"Density of influenced users, {args.story}, {args.metric}",
    ))
    print()
    print(f"votes: {corpus.story(args.story).num_votes}")
    print(f"saturation time (95% of final density at distance 1): "
          f"{saturation_time(surface, float(surface.distances[0])):.0f} h")
    return 0


def _model_spec(args: argparse.Namespace, model: str, batch_calibration: bool):
    """Build the ModelSpec a prediction command resolved from its flags."""
    from repro.core.config import CalibrationConfig, ModelSpec, SolverConfig

    return ModelSpec(
        name=model,
        solver=SolverConfig(backend=args.backend, operator=args.operator),
        calibration=CalibrationConfig(batch=batch_calibration),
    )


def _command_predict(args: argparse.Namespace) -> int:
    from repro.models import get_model

    config_error = _resolve_solver_config(args.backend, args.operator)
    if config_error is not None:
        print(config_error, file=sys.stderr)
        return 2
    model_error = _resolve_model(args.model)
    if model_error is not None:
        print(model_error, file=sys.stderr)
        return 2
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    observed = _observed_surface(corpus, args.story, args.metric)
    training_times = [float(t) for t in range(1, args.hours + 1)]
    if observed.profile(1.0).sum() <= 0:
        print(
            "error: the first observed hour has no influenced users at any distance; "
            "try a different story, metric or seed",
            file=sys.stderr,
        )
        return 1
    # batch_calibration=False preserves the command's historical sequential
    # calibration protocol for the DL model.
    spec = _model_spec(args, args.model, batch_calibration=False)
    fitted = get_model(args.model).fit(observed, spec, training_times)
    result = fitted.evaluate(observed, times=training_times[1:])
    title = f"Prediction accuracy -- {args.story}, {args.metric}, hours 2-{args.hours}"
    if args.model != "dl":
        title += f" ({args.model} model)"
    print(result.accuracy_table.render(title))
    print(f"calibrated parameters: {fitted.parameters}")
    return 0


def _warn_skipped(story: str) -> None:
    """Stderr warning shared by predict-batch and serve-batch skip paths."""
    print(
        f"warning: skipping {story}: no influenced users at any distance "
        f"in the first observed hour",
        file=sys.stderr,
    )


def _story_payload(result) -> dict:
    """Machine-readable per-story result shared by predict-batch and serve-batch.

    One format across every transport: this is exactly the payload the
    daemon streams (:func:`repro.service.story_result_payload` -- model
    name, overall accuracy, structured ``to_json_dict`` parameters,
    per-distance accuracies), so batch pipelines parse one shape.
    """
    from repro.service import story_result_payload

    return story_result_payload(result)


def _command_predict_batch(args: argparse.Namespace) -> int:
    from repro.core.prediction import BatchPredictionResult
    from repro.models import get_model

    config_error = _resolve_solver_config(args.backend, args.operator)
    if config_error is not None:
        print(config_error, file=sys.stderr)
        return 2
    model_error = _resolve_model(args.model)
    if model_error is not None:
        print(model_error, file=sys.stderr)
        return 2
    # args.stories is never empty here: --stories is nargs="+" with a
    # non-empty default.  The empty-story-list case only exists for
    # serve-batch manifests, which handle it with a distinct message.
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    training_times = [float(t) for t in range(1, args.hours + 1)]

    surfaces = {}
    skipped = []
    for story in args.stories:
        surface = _observed_surface(corpus, story, args.metric)
        if surface.profile(training_times[0]).sum() <= 0:
            skipped.append(story)
            # Warn as soon as the story is skipped, not after the loop, so a
            # long story list shows progress while it is still being read.
            _warn_skipped(story)
            continue
        surfaces[story] = surface
    if not surfaces:
        print(
            "error: every requested story is empty in the first observed hour; "
            "try a different metric or seed",
            file=sys.stderr,
        )
        return 1

    fitter = get_model(args.model).batch_fitter(
        _model_spec(args, args.model, batch_calibration=not args.sequential_calibration)
    )
    for story, surface in surfaces.items():
        fitter.fit_story(story, surface, training_times)
    results = BatchPredictionResult(
        results=fitter.evaluate(surfaces, times=training_times[1:])
    )

    # With --json -, stdout must stay pure JSON (pipeable into jq etc.), so
    # the human-readable summary moves to stderr.
    report = sys.stderr if args.json == "-" else sys.stdout
    story_word = "story" if len(surfaces) == 1 else "stories"
    setup = f"{args.backend} backend"
    if args.model != "dl":
        setup += f", {args.model} model"
    print(
        f"Prediction accuracy -- {len(surfaces)} {story_word}, {args.metric}, "
        f"hours 2-{args.hours} ({setup})",
        file=report,
    )
    print(format_table(results.summary_rows()), file=report)
    print(
        f"overall accuracy (mean over stories): {results.overall_accuracy:.4f}",
        file=report,
    )
    for story in surfaces:
        print(f"{story}: parameters = {fitter.parameters_for(story)}", file=report)

    if args.json is not None:
        payload = {
            "metric": args.metric,
            "hours": args.hours,
            "backend": args.backend,
            "operator": args.operator,
            "model": args.model,
            "calibration": "sequential" if args.sequential_calibration else "batched",
            "overall_accuracy": results.overall_accuracy,
            "skipped_stories": skipped,
            "stories": {story: _story_payload(results[story]) for story in surfaces},
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote JSON results to {args.json}")
    return 0


def _command_serve_batch(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.config import CalibrationConfig, SolverConfig
    from repro.service import (
        JobStatus,
        ManifestError,
        PredictionService,
        open_corpus,
    )

    config_error = _resolve_solver_config(args.backend, args.operator)
    if config_error is not None:
        print(config_error, file=sys.stderr)
        return 2
    if args.model is not None:
        model_error = _resolve_model(args.model)
        if model_error is not None:
            print(model_error, file=sys.stderr)
            return 2
    executor_error = _resolve_executor(args.executor)
    if executor_error is not None:
        print(executor_error, file=sys.stderr)
        return 2
    for flag, value in (
        ("--workers", args.workers),
        ("--queue-depth", args.queue_depth),
        ("--shard-size", args.shard_size),
    ):
        if value < 1:
            print(f"error: {flag} must be >= 1, got {value}", file=sys.stderr)
            return 2
    try:
        manifest = open_corpus(args.manifest)
    except FileNotFoundError:
        print(f"error: manifest {args.manifest} does not exist", file=sys.stderr)
        return 2
    except ManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if not manifest.stories:
        # Distinct from the all-skipped case below: an empty manifest is a
        # producer-side problem, not a property of the corpus.
        print(
            f"error: the manifest {args.manifest} contains no stories",
            file=sys.stderr,
        )
        return 1

    hours = args.hours if args.hours is not None else (manifest.hours or 6)
    training_times = [float(t) for t in range(1, hours + 1)]
    evaluation_times = training_times[1:]
    corpus_overrides = {
        field: value
        for field, value in (
            ("users", args.users),
            ("background_stories", args.background_stories),
            ("seed", args.seed),
            ("horizon", args.horizon),
        )
        if value is not None  # only explicitly given flags override the manifest
    }
    try:
        resolved = manifest.resolve(corpus_overrides, training_times)
    except ManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    output_handle = open(args.output, "w", encoding="utf-8") if args.output else None

    def emit_line(payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        print(line, flush=True)
        if output_handle is not None:
            output_handle.write(line + "\n")

    def emit(job) -> None:
        if job.status is JobStatus.SUCCEEDED:
            payload = {
                "story": job.name,
                "status": job.status.value,
                **_story_payload(job.result),
            }
        else:
            payload = {
                "story": job.name,
                "status": job.status.value,
                # The shard key knows the model even when the result never
                # materialised, so failed lines stay attributable too.
                "model": job.key.model,
                "error": str(job.error),
            }
        emit_line(payload)

    # The service's default model: explicit --model beats the manifest-level
    # "model", which beats the classic DL default.  Story-level "model"
    # entries override per submit below, so one manifest can mix models
    # (the sharder keeps them in separate shards).
    service_model = args.model or manifest.model or "dl"

    async def run():
        async with PredictionService(
            solver=SolverConfig(backend=args.backend, operator=args.operator),
            calibration=CalibrationConfig(batch=not args.sequential_calibration),
            max_workers=args.workers,
            executor=args.executor,
            queue_depth=args.queue_depth,
            max_shard_size=args.shard_size,
            model=service_model,
        ) as service:
            jobs = []

            async def watch(job) -> None:
                await job.finished()
                emit(job)
                jobs.append(job)

            # Watchers stream each result the moment its shard completes,
            # including while this loop is suspended in submit() by
            # backpressure (queue_depth may be far below corpus size).
            watchers = [
                asyncio.ensure_future(
                    watch(
                        await service.submit(
                            name,
                            surface,
                            training_times,
                            evaluation_times,
                            model=resolved.models.get(name),
                        )
                    )
                )
                for name, surface in resolved.surfaces.items()
            ]
            await asyncio.gather(*watchers)
            return jobs, service.stats()

    try:
        # Skipped stories get a record in the machine-readable stream too
        # (mirroring predict-batch's "skipped_stories"), so a consumer can
        # reconcile the manifest against the results without parsing stderr.
        for story in resolved.skipped:
            _warn_skipped(story)
            emit_line(
                {
                    "story": story,
                    "status": "skipped",
                    "model": resolved.model_for(story, args.model) or "dl",
                    "reason": "no influenced users at any distance in the "
                    "first observed hour",
                }
            )
        if not resolved.surfaces:
            print(
                "error: every story in the manifest is empty in the first observed "
                "hour; try a different metric or seed",
                file=sys.stderr,
            )
            return 1
        jobs, stats = asyncio.run(run())
    finally:
        if output_handle is not None:
            output_handle.close()

    succeeded = [job for job in jobs if job.status is JobStatus.SUCCEEDED]
    failed = [job for job in jobs if job.status is JobStatus.FAILED]
    story_word = "story" if len(jobs) == 1 else "stories"
    print(
        f"scored {len(succeeded)}/{len(jobs)} {story_word} "
        f"({manifest.metric}, hours 2-{hours}, {args.backend} backend, "
        f"{stats['shards_solved']} shards, {args.workers} {args.executor} workers)",
        file=sys.stderr,
    )
    if succeeded:
        mean_accuracy = sum(job.result.overall_accuracy for job in succeeded) / len(succeeded)
        print(f"overall accuracy (mean over stories): {mean_accuracy:.4f}", file=sys.stderr)
        for job in succeeded:
            print(f"{job.name}: parameters = {job.result.parameters}", file=sys.stderr)
    for job in failed:
        print(f"error: {job.name} failed: {job.error}", file=sys.stderr)
    if failed:
        # Some stories scored and some did not: exit 3 (EXIT_PARTIAL_FAILURE)
        # so batch pipelines can tell partial failure from configuration
        # errors (2) and nothing-scored errors (1) without parsing the stream.
        # When *nothing* scored, 3 would wrongly suggest usable partial
        # results, so total failure stays exit 1.
        if not succeeded:
            print("error: every scored story failed", file=sys.stderr)
            return 1
        print(
            f"warning: {len(failed)} of {len(jobs)} stories failed; "
            f"exiting {EXIT_PARTIAL_FAILURE} (partial failure)",
            file=sys.stderr,
        )
        return EXIT_PARTIAL_FAILURE
    return 0


def _daemon_pool_errors(args: argparse.Namespace) -> "str | None":
    """Validate the shared worker-pool flags; returns an error line or None."""
    for flag, value in (
        ("--workers", args.workers),
        ("--queue-depth", args.queue_depth),
        ("--shard-size", args.shard_size),
    ):
        if value < 1:
            return f"error: {flag} must be >= 1, got {value}"
    if args.timeout is not None and args.timeout <= 0:
        return f"error: --timeout must be > 0, got {args.timeout:g}"
    for flag, value in (
        ("--max-client-jobs", args.max_client_jobs),
        ("--max-client-stories", args.max_client_stories),
    ):
        if value is not None and value < 1:
            return f"error: {flag} must be >= 1, got {value}"
    return None


def _command_daemon(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.errors import AddressInUseError
    from repro.service import ClientQuota, PredictionDaemon
    from repro.service.transport import AddressError, parse_address

    config_error = _resolve_solver_config(args.backend, args.operator)
    if config_error is not None:
        print(config_error, file=sys.stderr)
        return 2
    model_error = _resolve_model(args.model)
    if model_error is not None:
        print(model_error, file=sys.stderr)
        return 2
    executor_error = _resolve_executor(args.executor)
    if executor_error is not None:
        print(executor_error, file=sys.stderr)
        return 2
    pool_error = _daemon_pool_errors(args)
    if pool_error is not None:
        print(pool_error, file=sys.stderr)
        return 2
    if args.resume and args.journal is None:
        print("error: --resume requires --journal DIR", file=sys.stderr)
        return 2
    worker_addresses: "list[str]" = []
    for spec in args.workers_cluster or []:
        try:
            worker = parse_address(spec)
        except AddressError as error:
            print(f"error: --worker {spec}: {error}", file=sys.stderr)
            return 2
        if worker.scheme == "stdio":
            print(
                f"error: --worker {spec}: 'stdio' is not a dialable worker "
                f"address; use unix:PATH or tcp:HOST:PORT",
                file=sys.stderr,
            )
            return 2
        worker_addresses.append(str(worker))
    if args.workers_file is not None:
        from repro.service.transport import load_worker_addresses

        try:
            worker_addresses.extend(
                str(worker) for worker in load_worker_addresses(args.workers_file)
            )
        except FileNotFoundError:
            print(
                f"error: workers file {args.workers_file} does not exist",
                file=sys.stderr,
            )
            return 2
        except AddressError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if worker_addresses and args.executor != "cluster":
        print(
            "error: --worker/--workers-file require --executor cluster",
            file=sys.stderr,
        )
        return 2
    if args.executor == "cluster" and not worker_addresses:
        print(
            "error: --executor cluster needs at least one worker address "
            "(--worker ADDR, repeatable, or --workers-file FILE)",
            file=sys.stderr,
        )
        return 2
    # --socket PATH is the pre-transport spelling of --listen unix:PATH;
    # the parser guarantees at most one of the two was given.
    spec = args.listen if args.listen is not None else args.socket
    try:
        address = parse_address(spec) if spec is not None else parse_address("stdio")
    except AddressError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.core.config import CalibrationConfig, SolverConfig

    quota = None
    if args.max_client_jobs is not None or args.max_client_stories is not None:
        quota = ClientQuota(
            max_jobs=args.max_client_jobs, max_stories=args.max_client_stories
        )
    if args.log_level is not None:
        from repro.service import configure_service_logging

        configure_service_logging(args.log_level)
    executor_options: "dict[str, object]" = {}
    if args.executor == "cluster":
        executor_options["workers"] = worker_addresses
    daemon = PredictionDaemon(
        default_timeout=args.timeout,
        quota=quota,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
        resume=args.resume,
        trace=args.trace,
        trace_dir=args.trace_dir,
        solver=SolverConfig(backend=args.backend, operator=args.operator),
        calibration=CalibrationConfig(batch=not args.sequential_calibration),
        max_workers=args.workers,
        executor=args.executor,
        executor_options=executor_options,
        queue_depth=args.queue_depth,
        max_shard_size=args.shard_size,
        autotune=args.autotune,
        model=args.model,
    )
    try:
        if address.scheme != "stdio":
            # Keep the pre-transport banner for --socket PATH (a bare
            # path), the full address form for --listen.
            shown = args.socket if args.listen is None else str(address)
            fleet = (
                f"fleet of {len(worker_addresses)}, "
                if args.executor == "cluster"
                else ""
            )
            print(
                f"daemon listening on {shown} "
                f"({args.workers} {args.executor} workers, {fleet}"
                f"queue depth {args.queue_depth}, "
                f"{'autotuned' if args.autotune else 'fixed'} shards)",
                file=sys.stderr,
            )
        asyncio.run(daemon.serve(address))
    except AddressInUseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("daemon interrupted", file=sys.stderr)
        return 130
    print("daemon stopped", file=sys.stderr)
    return 0


def _client_address(args: argparse.Namespace) -> "tuple[str, str]":
    """(daemon address, how-to-start-it hint) from --connect / --socket."""
    if getattr(args, "connect", None):
        return args.connect, f"repro daemon --listen {args.connect}"
    return args.socket, f"repro daemon --socket {args.socket}"


def _connect_error(address: str, error: OSError, hint: str) -> str:
    return (
        f"error: cannot connect to the daemon at {address}: {error}; "
        f"is '{hint}' running?"
    )


def _command_submit(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.errors import DaemonConnectionError
    from repro.service import DaemonClient

    address, hint = _client_address(args)
    if args.timeout is not None and args.timeout <= 0:
        print(f"error: --timeout must be > 0, got {args.timeout:g}", file=sys.stderr)
        return 2
    if args.model is not None:
        model_error = _resolve_model(args.model)
        if model_error is not None:
            print(model_error, file=sys.stderr)
            return 2
    try:
        with open(args.manifest, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        print(f"error: manifest {args.manifest} does not exist", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {args.manifest} is not valid JSON: {error}", file=sys.stderr)
        return 2

    output_handle = open(args.output, "w", encoding="utf-8") if args.output else None

    def emit_line(payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        print(line, flush=True)
        if output_handle is not None:
            output_handle.write(line + "\n")

    # --connect implies a daemon that may still be binding (a supervisor
    # just spawned it); a few capped-backoff retries absorb the race.  The
    # legacy --socket path keeps its immediate-failure behaviour.
    connect_retries = 3 if getattr(args, "connect", None) else 0

    async def run() -> "tuple[dict, dict | None, str | None]":
        counts: "dict[str, int]" = {}
        job_event = None
        async with await DaemonClient.connect(
            address, retries=connect_retries, backoff=0.25
        ) as client:
            async for event in client.submit(
                manifest, job_id=args.id, timeout=args.timeout, model=args.model
            ):
                kind = event.get("event")
                if kind == "error":
                    return counts, None, event.get("error", "unknown daemon error")
                if kind == "accepted":
                    print(
                        f"job {event['id']} accepted: "
                        f"{len(event['stories'])} stories, "
                        f"{len(event['skipped'])} skipped",
                        file=sys.stderr,
                    )
                elif kind == "result":
                    emit_line(event)
                    counts[event["status"]] = counts.get(event["status"], 0) + 1
                elif kind == "job":
                    job_event = event
        return counts, job_event, None

    try:
        counts, job_event, error = asyncio.run(run())
    except DaemonConnectionError as conn_error:
        # The daemon accepted the connection, then died mid-stream: results
        # already printed are valid, so this is a partial failure (exit 3),
        # not a connect failure (exit 2).
        print(f"error: {conn_error}", file=sys.stderr)
        return EXIT_PARTIAL_FAILURE
    except (ConnectionError, OSError) as oserror:
        print(_connect_error(address, oserror, hint), file=sys.stderr)
        return 2
    finally:
        if output_handle is not None:
            output_handle.close()

    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    assert job_event is not None
    succeeded = counts.get("succeeded", 0)
    unsuccessful = sum(
        count for status, count in counts.items() if status not in ("succeeded", "skipped")
    )
    print(
        f"job {job_event['id']} completed in {job_event['seconds']:.2f}s: "
        + ", ".join(f"{count} {status}" for status, count in sorted(counts.items())),
        file=sys.stderr,
    )
    if unsuccessful and succeeded:
        return EXIT_PARTIAL_FAILURE
    if unsuccessful:
        return 1
    if not succeeded:
        # Every story was skipped: nothing scored, mirroring serve-batch's
        # all-skipped exit 1 so pipelines keep their failure signal.
        print(
            "error: every story in the manifest was skipped (empty first "
            "observed hour); try a different metric or seed",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_daemon_stats(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DaemonClient

    address, hint = _client_address(args)
    if args.prometheus:
        # Prometheus text exposition: one fetch, raw text to stdout so the
        # output can be served or scraped verbatim.
        async def run_metrics() -> str:
            async with await DaemonClient.connect(address) as client:
                return await client.metrics_text()

        try:
            text = asyncio.run(run_metrics())
        except (ConnectionError, OSError) as error:
            print(_connect_error(address, error, hint), file=sys.stderr)
            return 2
        sys.stdout.write(text)
        return 0

    async def run() -> dict:
        async with await DaemonClient.connect(address) as client:
            return await client.stats()

    try:
        stats = asyncio.run(run())
    except (ConnectionError, OSError) as error:
        print(_connect_error(address, error, hint), file=sys.stderr)
        return 2
    print(json.dumps(stats, indent=2, sort_keys=True))
    service = stats.get("service", {})
    print(
        f"uptime {stats.get('uptime_seconds', 0.0):.0f}s, "
        f"{stats.get('jobs', {}).get('total', 0)} jobs, "
        f"{service.get('stories_solved', 0)} stories solved in "
        f"{service.get('shards_solved', 0)} shards",
        file=sys.stderr,
    )
    executor_info = service.get("executor_info", {})
    fleet = executor_info.get("fleet")
    if fleet:
        # Cluster routers get a per-worker fleet table on stderr.
        print(
            f"fleet: {sum(1 for w in fleet if w.get('alive'))}/{len(fleet)} "
            f"workers alive, {executor_info.get('shards_stolen', 0)} stolen, "
            f"{executor_info.get('reroutes', 0)} rerouted",
            file=sys.stderr,
        )
        for worker in fleet:
            state = "alive" if worker.get("alive") else "dead"
            print(
                f"  {worker.get('worker'):<28} {state:<6} "
                f"inflight {worker.get('inflight', 0):<4} "
                f"solved {worker.get('shards_solved', 0)}",
                file=sys.stderr,
            )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    import os

    from repro.service.tracing import (
        SPANS_FILENAME,
        chrome_trace,
        load_span_file,
        phase_totals,
        render_trace,
        speedscope_profile,
        trace_for_job,
        validate_trace,
        worker_attribution,
    )

    if args.trace_dir is not None:
        path = os.path.join(args.trace_dir, SPANS_FILENAME)
        records = load_span_file(path)
        if not records:
            print(f"error: no span records in {path}", file=sys.stderr)
            return 2
        trace_id = trace_for_job(records, args.job)
        if trace_id is None:
            print(
                f"error: no root 'job' span for job {args.job!r} in {path}",
                file=sys.stderr,
            )
            return 2
    else:
        import asyncio

        from repro.service import DaemonClient

        address, hint = _client_address(args)

        async def run() -> dict:
            async with await DaemonClient.connect(address) as client:
                return await client.trace(args.job)

        try:
            event = asyncio.run(run())
        except (ConnectionError, OSError) as error:
            print(_connect_error(address, error, hint), file=sys.stderr)
            return 2
        if event.get("event") == "error":
            print(f"error: {event.get('error')}", file=sys.stderr)
            return 2
        records = event.get("spans") or []
        trace_id = event.get("trace")
        if not records or not isinstance(trace_id, str):
            print(
                f"error: the daemon has no spans for job {args.job!r} (was it "
                f"started with --trace or --trace-dir?)",
                file=sys.stderr,
            )
            return 2

    if args.chrome is not None:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(records, trace_id), handle)
        print(f"wrote Chrome trace events to {args.chrome}", file=sys.stderr)
    if args.speedscope is not None:
        with open(args.speedscope, "w", encoding="utf-8") as handle:
            json.dump(speedscope_profile(records, trace_id), handle)
        print(f"wrote speedscope profile to {args.speedscope}", file=sys.stderr)

    print(render_trace(records, trace_id))
    if args.check:
        print("phases:")
        for name, seconds in phase_totals(records, trace_id).items():
            print(f"  {name:<20} {seconds:.6f}s")
        workers = worker_attribution(records, trace_id)
        if workers:
            # Which pool member (thread/process name, or the cluster
            # worker daemon's address) produced how many spans -- the CI
            # cluster-smoke job greps this for worker-attributed shards.
            print("workers:")
            for worker, spans in workers.items():
                print(f"  {worker:<28} {spans} spans")
        problems = validate_trace(records, trace_id)
        if problems:
            for problem in problems:
                print(f"problem: {problem}", file=sys.stderr)
            return 1
        print("trace ok: single root, no orphans, no negative durations")
    return 0


def _command_models(args: argparse.Namespace) -> int:
    from repro.models import model_descriptions

    rows = [
        {"model": name, "description": description}
        for name, description in model_descriptions().items()
    ]
    print(format_table(rows, title="Registered prediction models"))
    print(
        "\nSelect with --model on predict / predict-batch / serve-batch / "
        "daemon / submit, or per story via a manifest's 'model' field."
    )
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.core.config import SolverConfig
    from repro.models import compare_models

    config_error = _resolve_solver_config(args.backend, args.operator)
    if config_error is not None:
        print(config_error, file=sys.stderr)
        return 2
    for model in args.models:
        model_error = _resolve_model(model)
        if model_error is not None:
            print(model_error, file=sys.stderr)
            return 2
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    training_times = [float(t) for t in range(1, args.hours + 1)]

    surfaces = {}
    for story in args.stories:
        surface = _observed_surface(corpus, story, args.metric)
        if surface.profile(training_times[0]).sum() <= 0:
            _warn_skipped(story)
            continue
        surfaces[story] = surface
    if not surfaces:
        print(
            "error: every requested story is empty in the first observed hour; "
            "try a different metric or seed",
            file=sys.stderr,
        )
        return 1

    comparison = compare_models(
        surfaces,
        models=args.models,
        training_times=training_times,
        evaluation_times=training_times[1:],
        solver=SolverConfig(backend=args.backend, operator=args.operator),
    )

    report = sys.stderr if args.json == "-" else sys.stdout
    rows = [
        {key: ("-" if value is None else value) for key, value in row.items()}
        for row in comparison.summary_rows()
    ]
    print(
        format_table(
            rows,
            title=(
                f"Head-to-head accuracy -- {len(surfaces)} stories, "
                f"{args.metric}, hours 2-{args.hours} ({args.backend} backend)"
            ),
        ),
        file=report,
    )
    for model, failures in comparison.failures.items():
        for story, message in failures.items():
            print(f"warning: {model} failed on {story}: {message}", file=sys.stderr)

    if args.json is not None:
        text = json.dumps(comparison.to_json_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote JSON results to {args.json}", file=report)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    context = ExperimentContext(config=_corpus_config(args))

    print("== FIG-2: distribution of users over hop distances ==")
    fig2 = run_fig2_distance_distribution(context)
    print(render_figure_series(fig2, x_label="hop distance"))
    print()

    print("== TAB-1: prediction accuracy, friendship hops (paper overall ~92.8%) ==")
    table1 = run_table1_accuracy_hops(context)
    print(table1.render())
    print()

    print("== TAB-2: prediction accuracy, shared interests (paper overall ~83.1%) ==")
    table2 = run_table2_accuracy_interests(context)
    print(table2.render())
    print()

    print("== ABL-1: forecast accuracy vs baselines (train hours 1-4, forecast 5-12) ==")
    ablation = run_ablation_baselines(context)
    rows = [
        {"model": name, "overall_accuracy": table.overall_average}
        for name, table in sorted(ablation.items(), key=lambda kv: -kv[1].overall_average)
    ]
    print(format_table(rows))
    return 0


def _command_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import WorkloadConfig, generate_store

    try:
        config = WorkloadConfig(
            stories=args.stories,
            seed=args.seed,
            metric=args.metric,
            min_distances=args.min_distances,
            max_distances=args.max_distances,
            min_hours=args.min_hours,
            max_hours=args.max_hours,
            peak_density=args.peak_density,
            growth_rate=args.growth_rate,
            bursts=args.bursts,
            burst_spread_hours=args.burst_spread,
        )
        store = generate_store(
            config, args.output, max_shard_stories=args.shard_stories
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"generated {len(store)} stories (seed {args.seed}) into "
        f"{len(store.index['shards'])} shards at {args.output} "
        f"({store.total_surface_nbytes / 1e6:.1f} MB of surfaces)",
        file=sys.stderr,
    )
    return 0


def _command_corpus_build(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusStoreError, CorpusStoreWriter
    from repro.service import ManifestError, open_corpus

    try:
        manifest = open_corpus(args.manifest)
    except FileNotFoundError:
        print(f"error: manifest {args.manifest} does not exist", file=sys.stderr)
        return 2
    except ManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not manifest.stories:
        print(
            f"error: the manifest {args.manifest} contains no stories",
            file=sys.stderr,
        )
        return 1
    try:
        # include_empty: a store preserves the corpus verbatim; the
        # empty-first-hour skip stays where it belongs, at scoring time.
        resolved = manifest.resolve(include_empty=True)
        writer = CorpusStoreWriter(
            args.output,
            metric=manifest.metric,
            hours=manifest.hours,
            model=manifest.model,
            max_shard_stories=args.shard_stories,
        )
        for name, surface in resolved.surfaces.items():
            writer.add(name, surface, model=resolved.models.get(name))
        store = writer.finalize()
    except (ManifestError, CorpusStoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"built {len(store)} stories into {len(store.index['shards'])} "
        f"shards at {args.output}",
        file=sys.stderr,
    )
    return 0


def _command_corpus_verify(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusStore, CorpusStoreError

    try:
        store = CorpusStore.open(args.store)
    except (CorpusStoreError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    problems = store.verify()
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        print(
            f"{args.store}: {len(problems)} problem(s) found",
            file=sys.stderr,
        )
        return 1
    print(
        f"{args.store}: OK ({len(store)} stories, "
        f"{len(store.index['shards'])} shards verified)",
        file=sys.stderr,
    )
    return 0


def _command_corpus_export(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusStore, CorpusStoreError, export_inline_manifest

    try:
        store = CorpusStore.open(args.store)
    except (CorpusStoreError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    text = json.dumps(export_inline_manifest(store), sort_keys=True)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(
            f"exported {len(store)} stories to {args.output}",
            file=sys.stderr,
        )
    return 0


_CORPUS_COMMANDS = {
    "generate": _command_corpus_generate,
    "build": _command_corpus_build,
    "verify": _command_corpus_verify,
    "export": _command_corpus_export,
}


def _command_corpus(args: argparse.Namespace) -> int:
    return _CORPUS_COMMANDS[args.corpus_command](args)


_COMMANDS = {
    "build-corpus": _command_build_corpus,
    "characterize": _command_characterize,
    "predict": _command_predict,
    "predict-batch": _command_predict_batch,
    "serve-batch": _command_serve_batch,
    "daemon": _command_daemon,
    "submit": _command_submit,
    "daemon-stats": _command_daemon_stats,
    "trace": _command_trace,
    "models": _command_models,
    "compare": _command_compare,
    "report": _command_report,
    "corpus": _command_corpus,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
