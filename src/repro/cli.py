"""Command-line interface for the reproduction.

Five subcommands cover the common workflows without writing any Python:

``build-corpus``
    Build the synthetic Digg-like corpus and save it to a JSON file.
``characterize``
    Print the Section III-B characterisation (distance histogram, density
    surfaces, saturation times) for one story.
``predict``
    Run the paper's prediction protocol (Table I / Table II) for one story
    and distance metric.
``predict-batch``
    Run the prediction protocol for several stories in one shot: per-story
    calibration through the batched grid-then-refine path and all forward
    solves advanced together in one vectorised batched PDE solve.  Use
    ``--json`` to emit machine-readable results.
``report``
    Run every registered experiment and print a compact paper-vs-measured
    summary (a quick, text-only version of the benchmark harness).

The ``predict`` and ``predict-batch`` commands accept ``--backend`` to pick
the PDE solver backend by registry name (``internal`` is the package's own
Crank-Nicolson engine with banded operator caching; ``thomas`` pins the
pure-numpy tridiagonal fallback; ``scipy`` delegates to ``solve_ivp`` for
cross-validation).  Unknown names exit with the engine's error message
listing every registered backend -- including ones registered at runtime.

Run ``python -m repro --help`` for the full argument reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.experiments import (
    ExperimentContext,
    run_ablation_baselines,
    run_fig2_distance_distribution,
    run_table1_accuracy_hops,
    run_table2_accuracy_interests,
)
from repro.analysis.patterns import saturation_time
from repro.analysis.reports import render_density_surface, render_figure_series
from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.core.prediction import BatchPredictor, DiffusionPredictor
from repro.io.tables import format_table

STORY_CHOICES = ("s1", "s2", "s3", "s4")


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=2000, help="number of users in the corpus")
    parser.add_argument(
        "--background-stories", type=int, default=40, help="number of background stories"
    )
    parser.add_argument("--seed", type=int, default=2009, help="corpus random seed")
    parser.add_argument(
        "--horizon", type=float, default=50.0, help="observation window in hours"
    )


def _hours_window(value: str) -> int:
    """argparse type for --hours: calibration needs hour 1 plus >= 1 target."""
    try:
        hours = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}") from error
    if hours < 2:
        raise argparse.ArgumentTypeError(
            f"--hours must be at least 2 (hour 1 builds phi, later hours are "
            f"the calibration targets), got {hours}"
        )
    return hours


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # Deliberately NOT argparse choices: backends can be registered at
    # runtime, so the name is validated against the live registry when the
    # command runs (see _resolve_backend), producing the engine's own error
    # message with the registered-backend list.
    parser.add_argument(
        "--backend",
        default="internal",
        help=(
            "PDE solver backend: 'internal' is the package's Crank-Nicolson "
            "engine with banded operator caching and batched solves; 'thomas' "
            "pins the pure-numpy tridiagonal solver; 'scipy' cross-validates "
            "through scipy.integrate.solve_ivp"
        ),
    )


def _resolve_backend(name: str) -> "str | None":
    """Validate a backend name against the registry.

    Returns an error message (for stderr) when the name is unknown, None when
    it is fine -- the same error path, and the same registered-backend list,
    the solver engine itself produces.
    """
    from repro.numerics.backends import get_backend

    try:
        get_backend(name)
    except ValueError as error:
        return f"error: {error}"
    return None


def _corpus_config(args: argparse.Namespace) -> SyntheticDiggConfig:
    return SyntheticDiggConfig(
        num_users=args.users,
        num_background_stories=args.background_stories,
        horizon_hours=args.horizon,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Diffusive Logistic information-diffusion model (ICDCS 2012).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build-corpus", help="build and save a synthetic Digg-like corpus")
    _add_corpus_arguments(build)
    build.add_argument("--output", required=True, help="path of the JSON file to write")

    characterize = subparsers.add_parser(
        "characterize", help="print the temporal/spatial diffusion patterns of one story"
    )
    _add_corpus_arguments(characterize)
    characterize.add_argument("--story", default="s1", choices=["s1", "s2", "s3", "s4"])
    characterize.add_argument(
        "--metric", default="hops", choices=["hops", "interests"], help="distance metric"
    )

    predict = subparsers.add_parser(
        "predict", help="run the paper's prediction protocol and print the accuracy table"
    )
    _add_corpus_arguments(predict)
    predict.add_argument("--story", default="s1", choices=list(STORY_CHOICES))
    predict.add_argument("--metric", default="hops", choices=["hops", "interests"])
    predict.add_argument(
        "--hours",
        type=_hours_window,
        default=6,
        help="length of the training/evaluation window in hours (>= 2)",
    )
    _add_backend_argument(predict)

    predict_batch = subparsers.add_parser(
        "predict-batch",
        help="run the prediction protocol for several stories in one batched solve",
        description=(
            "Fit and score many stories at once: each story is calibrated on its "
            "training window (batched grid search + local refinement) and all "
            "forward solves are advanced together as columns of one vectorised "
            "PDE solve, sharing cached operator factorizations."
        ),
    )
    _add_corpus_arguments(predict_batch)
    predict_batch.add_argument(
        "--stories",
        nargs="+",
        default=list(STORY_CHOICES),
        choices=list(STORY_CHOICES),
        help="stories to predict (default: all four representative stories)",
    )
    predict_batch.add_argument("--metric", default="hops", choices=["hops", "interests"])
    predict_batch.add_argument(
        "--hours",
        type=_hours_window,
        default=6,
        help="length of the training/evaluation window in hours (>= 2)",
    )
    predict_batch.add_argument(
        "--sequential-calibration",
        action="store_true",
        help="calibrate with the sequential per-candidate protocol instead of the batched grid",
    )
    predict_batch.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write machine-readable results to PATH ('-' for stdout)",
    )
    _add_backend_argument(predict_batch)

    report = subparsers.add_parser(
        "report", help="run the main experiments and print a compact summary"
    )
    _add_corpus_arguments(report)

    return parser


def _command_build_corpus(args: argparse.Namespace) -> int:
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    corpus.dataset.save(args.output)
    print(
        f"wrote {corpus.dataset.num_stories} stories, {corpus.dataset.num_votes} votes, "
        f"{corpus.graph.num_users} users to {args.output}"
    )
    return 0


def _observed_surface(corpus, story: str, metric: str):
    if metric == "hops":
        return corpus.hop_density_surface(story)
    return corpus.interest_density_surface(story)


def _command_characterize(args: argparse.Namespace) -> int:
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    surface = _observed_surface(corpus, args.story, args.metric)

    histogram = corpus.hop_distance_histogram(args.story, max_distance=10)
    total = sum(histogram.values()) or 1
    print(render_figure_series(
        {args.story: {d: c / total for d, c in histogram.items()}},
        x_label="hop distance",
        title=f"Distribution of users around the initiator of {args.story}",
    ))
    print()
    print(render_density_surface(
        surface,
        times=[1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0],
        title=f"Density of influenced users, {args.story}, {args.metric}",
    ))
    print()
    print(f"votes: {corpus.story(args.story).num_votes}")
    print(f"saturation time (95% of final density at distance 1): "
          f"{saturation_time(surface, float(surface.distances[0])):.0f} h")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    backend_error = _resolve_backend(args.backend)
    if backend_error is not None:
        print(backend_error, file=sys.stderr)
        return 2
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    observed = _observed_surface(corpus, args.story, args.metric)
    training_times = [float(t) for t in range(1, args.hours + 1)]
    if observed.profile(1.0).sum() <= 0:
        print(
            "error: the first observed hour has no influenced users at any distance; "
            "try a different story, metric or seed",
            file=sys.stderr,
        )
        return 1
    predictor = DiffusionPredictor(backend=args.backend).fit(
        observed, training_times=training_times
    )
    result = predictor.evaluate(observed, times=training_times[1:])
    print(result.accuracy_table.render(
        f"Prediction accuracy -- {args.story}, {args.metric}, hours 2-{args.hours}"
    ))
    print(f"calibrated parameters: {predictor.parameters}")
    return 0


def _command_predict_batch(args: argparse.Namespace) -> int:
    backend_error = _resolve_backend(args.backend)
    if backend_error is not None:
        print(backend_error, file=sys.stderr)
        return 2
    corpus = build_synthetic_digg_dataset(_corpus_config(args))
    training_times = [float(t) for t in range(1, args.hours + 1)]

    surfaces = {}
    skipped = []
    for story in args.stories:
        surface = _observed_surface(corpus, story, args.metric)
        if surface.profile(training_times[0]).sum() <= 0:
            skipped.append(story)
            continue
        surfaces[story] = surface
    for story in skipped:
        print(
            f"warning: skipping {story}: no influenced users at any distance "
            f"in the first observed hour",
            file=sys.stderr,
        )
    if not surfaces:
        print(
            "error: every requested story is empty in the first observed hour; "
            "try a different metric or seed",
            file=sys.stderr,
        )
        return 1

    predictor = BatchPredictor(
        backend=args.backend,
        calibration_batch=not args.sequential_calibration,
    ).fit(surfaces, training_times=training_times)
    results = predictor.evaluate(surfaces, times=training_times[1:])

    # With --json -, stdout must stay pure JSON (pipeable into jq etc.), so
    # the human-readable summary moves to stderr.
    report = sys.stderr if args.json == "-" else sys.stdout
    story_word = "story" if len(surfaces) == 1 else "stories"
    print(
        f"Prediction accuracy -- {len(surfaces)} {story_word}, {args.metric}, "
        f"hours 2-{args.hours} ({args.backend} backend)",
        file=report,
    )
    print(format_table(results.summary_rows()), file=report)
    print(
        f"overall accuracy (mean over stories): {results.overall_accuracy:.4f}",
        file=report,
    )
    for story in surfaces:
        print(f"{story}: parameters = {predictor.parameters_for(story)}", file=report)

    if args.json is not None:
        payload = {
            "metric": args.metric,
            "hours": args.hours,
            "backend": args.backend,
            "calibration": "sequential" if args.sequential_calibration else "batched",
            "overall_accuracy": results.overall_accuracy,
            "skipped_stories": skipped,
            "stories": {
                story: {
                    "overall_accuracy": results[story].overall_accuracy,
                    "parameters": repr(predictor.parameters_for(story)),
                    "accuracy_by_distance": {
                        str(distance): results[story].accuracy_at_distance(distance)
                        for distance in results[story].predicted.distances
                    },
                }
                for story in surfaces
            },
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote JSON results to {args.json}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    context = ExperimentContext(config=_corpus_config(args))

    print("== FIG-2: distribution of users over hop distances ==")
    fig2 = run_fig2_distance_distribution(context)
    print(render_figure_series(fig2, x_label="hop distance"))
    print()

    print("== TAB-1: prediction accuracy, friendship hops (paper overall ~92.8%) ==")
    table1 = run_table1_accuracy_hops(context)
    print(table1.render())
    print()

    print("== TAB-2: prediction accuracy, shared interests (paper overall ~83.1%) ==")
    table2 = run_table2_accuracy_interests(context)
    print(table2.render())
    print()

    print("== ABL-1: forecast accuracy vs baselines (train hours 1-4, forecast 5-12) ==")
    ablation = run_ablation_baselines(context)
    rows = [
        {"model": name, "overall_accuracy": table.overall_average}
        for name, table in sorted(ablation.items(), key=lambda kv: -kv[1].overall_average)
    ]
    print(format_table(rows))
    return 0


_COMMANDS = {
    "build-corpus": _command_build_corpus,
    "characterize": _command_characterize,
    "predict": _command_predict,
    "predict-batch": _command_predict_batch,
    "report": _command_report,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
