"""repro: a reproduction of the Diffusive Logistic information-diffusion model.

This package reproduces "Diffusive Logistic Model Towards Predicting
Information Diffusion in Online Social Networks" (Wang, Wang, Xu, ICDCS 2012)
as a standalone Python library:

* :mod:`repro.core` -- the Diffusive Logistic PDE model, its parameters,
  initial-density construction, calibration, prediction and the paper's
  accuracy metric.
* :mod:`repro.numerics` -- the numerical substrate (splines, finite
  differences, time integrators, reaction-diffusion solver) built from
  scratch on numpy.
* :mod:`repro.network` -- directed follower graphs, synthetic Digg-like graph
  generators and the two distance metrics (friendship hops, shared interests).
* :mod:`repro.cascade` -- vote cascades, the stochastic cascade simulator,
  the synthetic Digg corpus and density-surface extraction.
* :mod:`repro.models` -- the unified model API: the ``PredictionModel``
  protocol, the model registry (``dl``, ``logistic``, ``sis``,
  ``linear-influence``, plus runtime registrations) and head-to-head
  comparison (``repro compare``).
* :mod:`repro.service` -- the async multi-story prediction service: corpus
  sharding by spatial signature and model plus a bounded worker pool with
  submit/await/stream APIs (``repro serve-batch``).
* :mod:`repro.baselines` -- temporal-only and graph-level diffusion baselines.
* :mod:`repro.analysis` -- pattern characterisation, per-figure/table
  experiment runners and text reports.

Quickstart
----------
>>> from repro import DiffusionPredictor, build_synthetic_digg_dataset
>>> corpus = build_synthetic_digg_dataset()                      # doctest: +SKIP
>>> observed = corpus.hop_density_surface("s1")                  # doctest: +SKIP
>>> predictor = DiffusionPredictor().fit(observed)               # doctest: +SKIP
>>> result = predictor.evaluate(observed)                        # doctest: +SKIP
>>> round(result.overall_accuracy, 2)                            # doctest: +SKIP
0.9
"""

from repro.cascade import (
    CascadeDataset,
    CascadeSimulator,
    DensitySurface,
    SyntheticDiggConfig,
    SyntheticDiggDataset,
    build_synthetic_digg_dataset,
    compute_density_surface,
)
from repro.core import (
    PAPER_S1_HOP_PARAMETERS,
    PAPER_S1_INTEREST_PARAMETERS,
    BatchPredictionResult,
    BatchPredictor,
    CalibrationConfig,
    DiffusionPredictor,
    DiffusiveLogisticModel,
    DLParameters,
    ExponentialDecayGrowthRate,
    InitialDensity,
    ModelSpec,
    NotFittedError,
    PredictionResult,
    SolverConfig,
    UnknownModelError,
    build_accuracy_table,
    calibrate_dl_model,
    calibrate_dl_model_batched,
    solve_dl_batch,
)
from repro.models import (
    PredictionModel,
    available_models,
    compare_models,
    get_model,
    register_model,
)
from repro.network import SocialGraph, generate_digg_like_graph
from repro.service import CorpusSharder, PredictionService, score_corpus_sync

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DiffusiveLogisticModel",
    "DiffusionPredictor",
    "BatchPredictor",
    "BatchPredictionResult",
    "PredictionResult",
    "solve_dl_batch",
    "DLParameters",
    "ExponentialDecayGrowthRate",
    "InitialDensity",
    "PAPER_S1_HOP_PARAMETERS",
    "PAPER_S1_INTEREST_PARAMETERS",
    "build_accuracy_table",
    "calibrate_dl_model",
    "calibrate_dl_model_batched",
    "DensitySurface",
    "compute_density_surface",
    "CascadeDataset",
    "CascadeSimulator",
    "SyntheticDiggConfig",
    "SyntheticDiggDataset",
    "build_synthetic_digg_dataset",
    "SocialGraph",
    "generate_digg_like_graph",
    "PredictionService",
    "CorpusSharder",
    "score_corpus_sync",
    "SolverConfig",
    "CalibrationConfig",
    "ModelSpec",
    "NotFittedError",
    "UnknownModelError",
    "PredictionModel",
    "register_model",
    "get_model",
    "available_models",
    "compare_models",
]
