"""Pluggable execution backends: where shard solves actually run.

The :class:`~repro.service.service.PredictionService` drains its queue by
handing each shard to an :class:`ExecutionBackend`.  Two backends are
registered out of the box (the registry mirrors the solver-backend and
model registries -- :func:`register_executor` / :func:`create_executor` /
:func:`available_executors`):

* ``thread`` -- the classic in-process ``ThreadPoolExecutor``.  The numpy
  solver spends its time in LAPACK/BLAS, which release the GIL, so threads
  already overlap the linear algebra -- but every shard still shares one
  Python interpreter, and the pure-Python parts of calibration (grid
  bookkeeping, multi-start refinement control flow, per-story fitting of
  the temporal baselines) serialize on the GIL.
* ``process`` -- a ``concurrent.futures.ProcessPoolExecutor``.  Shards
  cross the process boundary as picklable :class:`ShardPayload` values
  (story surfaces plus the :class:`~repro.core.config.ModelSpec`, never
  live fitter/service objects); each worker process lazily builds and
  reuses its *own* operator cache (the cache module is process-global, so
  a worker's second shard with the same spatial signature hits warm
  factorizations), and a warm-up hook on worker init imports the numerics
  stack -- optionally pre-solving a representative payload -- so the first
  real shard does not pay cold-start twice.

Both backends resolve the shard through the same module-level
:func:`solve_shard_payload`, so the numerics are shared code and the
process path is bit-identical to the thread path by construction (the
equivalence tests and the benchmark's ``service.scaling`` section assert
the delta is exactly zero).

Crash hardening: when a process worker dies mid-shard (OOM kill, segfault,
``kill -9``), ``ProcessPoolExecutor`` marks the whole pool broken and
fails *every* in-flight future with ``BrokenProcessPool``.  The process
backend translates that into a :class:`WorkerCrashError` per affected
shard and respawns the pool exactly once (idempotent under a lock, however
many shards observed the same breakage), so the service's poisoned-shard
bisection machinery retries the affected jobs on fresh workers and a
deterministically crashing story eventually fails alone -- the daemon
survives worker death the same way it survives a poisoned surface.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Union

from repro.cascade.density import DensitySurface
from repro.core.config import ModelSpec
from repro.core.errors import UnknownExecutorError
from repro.service.sharding import ShardKey
from repro.service.tracing import NOOP_TRACER, TraceContext, Tracer, TracerLike


class WorkerCrashError(RuntimeError):
    """A process worker died while (or before) solving this shard.

    Raised by :meth:`ProcessExecutionBackend.solve` in place of the
    pool-global ``BrokenProcessPool``, after the pool has been respawned.
    An ordinary ``Exception`` subclass on purpose: the service routes it
    through the same bisect-and-requeue path as any other shard-wide solve
    failure, so the crashed shard is retried (split in half) on the fresh
    pool instead of sinking the service.
    """


@dataclass(frozen=True)
class ShardPayload:
    """One shard as plain picklable data: everything a worker needs.

    The pickling boundary of the process backend: the shard's signature
    (:class:`~repro.service.sharding.ShardKey` -- frozen floats/strings/
    tuples), the resolved model workload
    (:class:`~repro.core.config.ModelSpec` -- frozen dataclasses) and the
    observed surfaces (numpy arrays plus plain metadata).  Surfaces may be
    lazy :class:`~repro.corpus.store.LazySurface` handles -- also plain
    picklable data (store path + row, no open mmaps) -- which
    :func:`solve_shard_payload` materialises in the worker.  No live
    fitter, service or event-loop objects ever cross the boundary.
    """

    key: ShardKey
    spec: ModelSpec
    surfaces: "dict[str, DensitySurface | object]"
    #: Trace context of the shard span this solve belongs to.  Rides the
    #: pickle into process workers so spans recorded there carry the same
    #: trace id and re-parent under the service-side shard span.
    trace: "TraceContext | None" = None


@dataclass
class ShardSolveReport:
    """Everything a shard solve produced, in picklable form.

    ``outcomes`` is the classic story-name -> result/exception mapping;
    ``spans`` carries span *records* collected in the worker (empty when the
    solve recorded straight into a live tracer, i.e. on the thread path);
    ``phase_seconds`` holds the fit/evaluate wall times feeding the
    ``service.solve_phase_seconds`` histograms, and the cache counters are
    the operator-cache hit/miss delta across this solve.
    """

    outcomes: "dict[str, object]"
    spans: "list[dict[str, Any]]" = field(default_factory=list)
    phase_seconds: "dict[str, float]" = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0


#: What a backend's ``solve`` may hand back alongside the worker label:
#: the plain outcomes dict (thread path -- spans/phases were recorded in
#: process) or a full report (process path -- shipped across the pickle).
ShardOutcomes = Union["dict[str, object]", ShardSolveReport]


@dataclass
class _SolveInstrumentation:
    """Ambient per-solve instrumentation state (thread-local)."""

    tracer: TracerLike
    parent: "TraceContext | None"
    report: ShardSolveReport


_ACTIVE = threading.local()


def _operator_cache_counts() -> "tuple[int, int]":
    """(hits, misses) summed over every operator cache; (0, 0) on failure."""
    try:
        from repro.numerics.operator_cache import cache_stats

        stats = cache_stats()
        hits = sum(int(entry.get("hits", 0)) for entry in stats.values())
        misses = sum(int(entry.get("misses", 0)) for entry in stats.values())
        return hits, misses
    except Exception:  # noqa: BLE001 - instrumentation must never fail a solve
        return 0, 0


def _record_calibration_phases(
    tracer: TracerLike,
    parent: "TraceContext | None",
    fitter: object,
    name: str,
    fit_start: float,
    fit_seconds: float,
) -> None:
    """Split a story's fit span into grid-search vs LM-refinement children.

    Duck-typed against the ``dl`` fitter (``fitter.predictor`` exposing
    per-story ``_calibration_details`` with a ``refinement.seconds`` wall
    time); models without calibration details simply get no sub-phases.
    """
    try:
        predictor = getattr(fitter, "predictor", None)
        details_by_story = getattr(predictor, "_calibration_details", None)
        if not isinstance(details_by_story, dict):
            return
        entry = details_by_story.get(name)
        details = entry.get("details") if isinstance(entry, dict) else None
        if not isinstance(details, dict):
            return
        refinement = details.get("refinement")
        refine_seconds = (
            float(refinement.get("seconds", 0.0))
            if isinstance(refinement, dict)
            else 0.0
        )
        grid_seconds = max(fit_seconds - refine_seconds, 0.0)
        attributes: "dict[str, Any]" = {"story": name}
        engine = details.get("engine")
        if engine is not None:
            attributes["engine"] = engine
        candidates = details.get("candidates_evaluated")
        if candidates is not None:
            attributes["candidates"] = candidates
        tracer.record_span(
            "calibration.grid",
            parent=parent,
            start=fit_start,
            duration=grid_seconds,
            attributes=attributes,
        )
        if refine_seconds > 0.0:
            tracer.record_span(
                "calibration.refine",
                parent=parent,
                start=fit_start + grid_seconds,
                duration=refine_seconds,
                attributes={"story": name},
            )
    except Exception:  # noqa: BLE001 - instrumentation must never fail a solve
        return


def solve_shard_payload(
    payload: ShardPayload,
) -> "dict[str, object]":
    """Solve one shard payload: the single shard-numerics path of the service.

    Resolves the shard's model from the registry, fits each story in
    isolation (a story whose *fit* fails maps to its own exception without
    poisoning shard-mates) and evaluates every fitted story in one joint
    call -- for ``dl`` that is the batched spatial-group solve.  Both the
    thread and the process backend land here, which is what makes their
    results bit-identical: the backends only choose *where* this function
    runs, never *how* it computes.

    When invoked under :func:`solve_shard_report`, phase timings and spans
    are recorded through the ambient instrumentation state; called directly
    (tests, warm-up) it behaves exactly as before -- a plain dict in, plain
    dict out numerics function with zero tracing overhead.
    """
    from repro.corpus.store import materialize_surface
    from repro.models.registry import get_model

    inst: "_SolveInstrumentation | None" = getattr(_ACTIVE, "current", None)
    tracer: TracerLike = inst.tracer if inst is not None else NOOP_TRACER
    parent = inst.parent if inst is not None else None
    traced = tracer.enabled

    key = payload.key
    fitter = get_model(key.model).batch_fitter(payload.spec)
    # Lazy corpus-store handles materialise here -- at shard-solve time, in
    # whichever worker (thread or process) runs the shard -- so a
    # store-backed corpus never has all its surfaces in memory at once.
    surfaces = {
        name: materialize_surface(surface)
        for name, surface in payload.surfaces.items()
    }
    outcomes: "dict[str, object]" = {}
    fitted: "list[str]" = []
    fit_t0 = time.perf_counter() if inst is not None else 0.0
    fit_span = (
        tracer.span("solve.fit", parent=parent, attributes={"stories": len(surfaces)})
        if traced
        else None
    )
    for name, surface in surfaces.items():
        story_start = time.time()
        story_t0 = time.perf_counter()
        try:
            fitter.fit_story(name, surface, key.training_times)
            fitted.append(name)
        except Exception as error:  # noqa: BLE001 - per-story failure
            outcomes[name] = error
            if traced:
                tracer.record_span(
                    "story.fit",
                    parent=fit_span,
                    start=story_start,
                    duration=time.perf_counter() - story_t0,
                    attributes={"story": name, "error": type(error).__name__},
                )
            continue
        if traced:
            fit_seconds = time.perf_counter() - story_t0
            story_ctx = tracer.record_span(
                "story.fit",
                parent=fit_span,
                start=story_start,
                duration=fit_seconds,
                attributes={"story": name},
            )
            _record_calibration_phases(
                tracer, story_ctx, fitter, name, story_start, fit_seconds
            )
    if fit_span is not None:
        fit_span.finish()
    if inst is not None:
        inst.report.phase_seconds["fit"] = time.perf_counter() - fit_t0
    if fitted:
        evaluate_span = (
            tracer.span(
                "solve.evaluate", parent=parent, attributes={"stories": len(fitted)}
            )
            if traced
            else None
        )
        evaluate_t0 = time.perf_counter() if inst is not None else 0.0
        results = fitter.evaluate(
            {name: surfaces[name] for name in fitted},
            times=key.evaluation_times,
        )
        if inst is not None:
            inst.report.phase_seconds["evaluate"] = (
                time.perf_counter() - evaluate_t0
            )
        if evaluate_span is not None:
            evaluate_span.finish()
        for name in fitted:
            outcomes[name] = results[name]
    return outcomes


def solve_shard_report(
    payload: ShardPayload, tracer: "TracerLike | None" = None
) -> ShardSolveReport:
    """Solve a shard with instrumentation; the traced sibling of
    :func:`solve_shard_payload`.

    ``tracer`` is the live tracer on the thread path (spans are recorded
    straight into it); when ``None`` and the payload carries a trace
    context, a local collecting :class:`~repro.service.tracing.Tracer` is
    created -- the process-worker case -- and its records are returned in
    ``report.spans`` for the service to ingest and re-parent.  Phase wall
    times and the operator-cache delta are measured either way (they feed
    always-on histograms), and the numerics still route through the
    module-level :func:`solve_shard_payload` name so monkeypatched fault
    injection intercepts every backend identically.
    """
    collector: "Tracer | None" = None
    if tracer is not None and tracer.enabled:
        active: TracerLike = tracer
    elif tracer is None and payload.trace is not None:
        collector = Tracer(capacity=512)
        active = collector
    else:
        active = NOOP_TRACER
    report = ShardSolveReport(outcomes={})
    hits_before, misses_before = _operator_cache_counts()
    inst = _SolveInstrumentation(tracer=active, parent=payload.trace, report=report)
    previous = getattr(_ACTIVE, "current", None)
    _ACTIVE.current = inst
    try:
        # Resolved via the module global on purpose: monkeypatching
        # ``execution.solve_shard_payload`` (crash injection, fault tests)
        # must intercept the instrumented path too.
        outcomes = solve_shard_payload(payload)
    finally:
        _ACTIVE.current = previous
    report.outcomes = outcomes
    hits_after, misses_after = _operator_cache_counts()
    report.cache_hits = max(hits_after - hits_before, 0)
    report.cache_misses = max(misses_after - misses_before, 0)
    if collector is not None:
        report.spans = collector.spans()
    return report


@dataclass
class ShardRequest:
    """One shard solve handed to a backend, in both shapes backends need.

    ``run_local`` executes the service's in-process solve path (closing
    over the live job objects); the thread backend runs it verbatim, so
    tests that monkeypatch ``PredictionService._solve_shard`` keep
    intercepting every thread-backend solve.  ``make_payload`` builds the
    picklable :class:`ShardPayload` for backends that ship the shard out
    of process; it is a factory so the thread path never pays for it.
    """

    run_local: "Callable[[], dict[str, object]]"
    make_payload: "Callable[[], ShardPayload]"


class ExecutionBackend(ABC):
    """Where shard solves run: a started/stopped pool with an async ``solve``.

    The contract with the service: :meth:`solve` returns
    ``(worker_label, outcomes)`` where ``outcomes`` maps story name to a
    :class:`~repro.core.prediction.PredictionResult` or the story's own
    exception; a raise out of :meth:`solve` is a *shard-wide* failure that
    the service answers with bisect-and-requeue.  ``worker_label`` names
    the pool member that solved the shard (thread name / process name) and
    feeds the per-worker metric labels.
    """

    #: Registry name of the backend kind (``thread`` / ``process``).
    kind: str = "abstract"

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.workers = int(max_workers)

    @abstractmethod
    def start(self) -> None:
        """Create the pool; idempotent."""

    @abstractmethod
    def shutdown(self, wait: bool = True) -> None:
        """Tear the pool down; the backend cannot be restarted."""

    @abstractmethod
    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, ShardOutcomes]":
        """Run one shard; returns ``(worker_label, outcomes-or-report)``."""

    def bind_metrics(self, registry) -> None:
        """Adopt the service's :class:`~repro.service.telemetry.MetricsRegistry`.

        Called by :meth:`PredictionService.start` before the backend starts,
        so backends with their own telemetry (the cluster backend's
        per-worker queue-depth gauges and steal/reroute counters) report
        into the same registry the daemon exposes.  A no-op by default --
        the in-process backends are already instrumented by the service.
        """

    def describe(self) -> dict:
        """Plain-dict state for ``stats`` payloads."""
        return {"executor": self.kind, "workers": self.workers}


class ThreadExecutionBackend(ExecutionBackend):
    """The classic in-process thread pool (the pre-backend behaviour)."""

    kind = "thread"

    def __init__(self, max_workers: int) -> None:
        super().__init__(max_workers)
        self._pool: "ThreadPoolExecutor | None" = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-service"
            )

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, ShardOutcomes]":
        import asyncio

        assert self._pool is not None, "backend not started"

        def entry() -> "tuple[str, ShardOutcomes]":
            return threading.current_thread().name, request.run_local()

        return await asyncio.get_running_loop().run_in_executor(self._pool, entry)


def _process_worker_init(warmup: "bytes | None") -> None:
    """Per-worker warm-up, run once when a pool process starts.

    Importing :mod:`repro.models` pulls the whole numerics stack (numpy,
    scipy, the solver and operator-cache modules) *and* registers the
    built-in models -- required under the ``spawn`` start method, where
    children do not inherit the parent's registry state.  An optional
    pickled :class:`ShardPayload` is then solved and discarded, populating
    this process's operator cache with the corpus's factorizations so the
    worker's first real shard starts warm.  Warm-up failures are swallowed:
    a broken warm-up payload must degrade to a cold first shard, never kill
    the worker (which would mark the whole pool broken).
    """
    import repro.models  # noqa: F401 - imported for its registration side effect

    if warmup:
        try:
            solve_shard_payload(pickle.loads(warmup))
        except Exception:  # noqa: BLE001 - warm-up is best-effort by design
            pass


def _solve_pickled_payload(data: bytes) -> "tuple[str, ShardSolveReport]":
    """Process-pool entry point: unpickle, solve, label with the worker name.

    Returns a full :class:`ShardSolveReport` so phase timings and any spans
    collected in this worker ride the pickle back to the service, which
    ingests them into its own tracer (the trace/span ids in the records
    already point at the service-side shard span, so they re-parent
    correctly).
    """
    payload = pickle.loads(data)
    report = solve_shard_report(payload)
    return multiprocessing.current_process().name, report


def _default_start_method() -> str:
    """``fork`` where available (Linux), else the platform default.

    Forked workers start in milliseconds and inherit runtime-registered
    models and module state; ``spawn`` (the macOS/Windows default) pays a
    full interpreter start per worker but works everywhere --
    ``_process_worker_init`` re-imports the registry so built-in models
    resolve under either method.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


class ProcessExecutionBackend(ExecutionBackend):
    """Shard solving on a ``ProcessPoolExecutor``: past the GIL entirely.

    Parameters
    ----------
    max_workers:
        Pool size; size it to physical cores for calibration-heavy
        corpora (each worker duplicates the operator cache, so memory
        grows linearly with workers).
    start_method:
        Multiprocessing start method (``fork`` / ``spawn`` /
        ``forkserver``); ``None`` picks ``fork`` where available.
    warmup:
        Optional :class:`ShardPayload` each new worker solves (and
        discards) on init, pre-populating its operator cache.
    """

    kind = "process"

    def __init__(
        self,
        max_workers: int,
        start_method: "str | None" = None,
        warmup: "ShardPayload | None" = None,
    ) -> None:
        super().__init__(max_workers)
        self._start_method = start_method or _default_start_method()
        self._context = multiprocessing.get_context(self._start_method)
        self._warmup_bytes = (
            pickle.dumps(warmup, protocol=pickle.HIGHEST_PROTOCOL)
            if warmup is not None
            else None
        )
        self._pool: "ProcessPoolExecutor | None" = None
        self._lock = threading.Lock()
        self._closed = False
        self._respawns = 0

    @property
    def start_method(self) -> str:
        """The multiprocessing start method in force."""
        return self._start_method

    @property
    def respawns(self) -> int:
        """How many times the pool was replaced after a worker crash."""
        with self._lock:
            return self._respawns

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._context,
            initializer=_process_worker_init,
            initargs=(self._warmup_bytes,),
        )

    def start(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("the executor has been shut down")
            if self._pool is None:
                self._pool = self._new_pool()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            pool = self._pool
        if pool is not None:
            pool.shutdown(wait=wait)

    def _respawn_after(self, broken: ProcessPoolExecutor) -> None:
        """Replace the broken pool, exactly once per breakage.

        A single worker death breaks the pool for *every* in-flight shard,
        so several concurrent ``solve`` calls race here with the same pool
        object; only the first swaps in a fresh pool, the rest see the
        swap already happened (``self._pool is not broken``) and return.
        """
        with self._lock:
            if self._closed or self._pool is not broken:
                return
            self._pool = self._new_pool()
            self._respawns += 1
        broken.shutdown(wait=False)

    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, ShardOutcomes]":
        import asyncio

        with self._lock:
            pool = self._pool
        assert pool is not None, "backend not started"
        # Pickle eagerly: an unpicklable payload must fail *this* shard with
        # a clear error instead of surfacing from the pool's feeder thread.
        data = pickle.dumps(request.make_payload(), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                pool, _solve_pickled_payload, data
            )
        except BrokenProcessPool as error:
            self._respawn_after(pool)
            raise WorkerCrashError(
                "a process worker died while this shard was in flight; the "
                "pool has been respawned and the shard will be retried"
            ) from error

    def describe(self) -> dict:
        info = super().describe()
        info["start_method"] = self._start_method
        info["respawns"] = self.respawns
        return info


# ---------------------------------------------------------------------- #
# Registry (mirrors repro.models.registry)
# ---------------------------------------------------------------------- #
#: name -> factory called as ``factory(max_workers=..., **options)``.
_REGISTRY: "dict[str, Callable[..., ExecutionBackend]]" = {}


def register_executor(
    name: str,
    factory: "Callable[..., ExecutionBackend]",
    overwrite: bool = False,
) -> None:
    """Register an execution backend under ``name``.

    ``factory`` is called as ``factory(max_workers=..., **options)`` and
    must return an (unstarted) :class:`ExecutionBackend`.  Re-registering
    an existing name raises unless ``overwrite=True``, mirroring
    :func:`repro.models.registry.register_model`.
    """
    if not name:
        raise ValueError("an executor needs a non-empty name")
    if not overwrite and name in _REGISTRY:
        raise ValueError(
            f"executor {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[name] = factory


def unregister_executor(name: str) -> None:
    """Remove a registered backend (unknown names raise)."""
    if name not in _REGISTRY:
        raise UnknownExecutorError(name, available_executors())
    del _REGISTRY[name]


def available_executors() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_executor_factory(name: str) -> "Callable[..., ExecutionBackend]":
    """The factory registered under ``name`` (unknown names raise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExecutorError(name, available_executors()) from None


def create_executor(
    name: str,
    max_workers: int,
    options: "Mapping[str, object] | None" = None,
) -> ExecutionBackend:
    """Instantiate (without starting) the backend registered under ``name``."""
    factory = get_executor_factory(name)
    return factory(max_workers=max_workers, **dict(options or {}))


register_executor("thread", ThreadExecutionBackend, overwrite=True)
register_executor("process", ProcessExecutionBackend, overwrite=True)
