"""Pluggable execution backends: where shard solves actually run.

The :class:`~repro.service.service.PredictionService` drains its queue by
handing each shard to an :class:`ExecutionBackend`.  Two backends are
registered out of the box (the registry mirrors the solver-backend and
model registries -- :func:`register_executor` / :func:`create_executor` /
:func:`available_executors`):

* ``thread`` -- the classic in-process ``ThreadPoolExecutor``.  The numpy
  solver spends its time in LAPACK/BLAS, which release the GIL, so threads
  already overlap the linear algebra -- but every shard still shares one
  Python interpreter, and the pure-Python parts of calibration (grid
  bookkeeping, multi-start refinement control flow, per-story fitting of
  the temporal baselines) serialize on the GIL.
* ``process`` -- a ``concurrent.futures.ProcessPoolExecutor``.  Shards
  cross the process boundary as picklable :class:`ShardPayload` values
  (story surfaces plus the :class:`~repro.core.config.ModelSpec`, never
  live fitter/service objects); each worker process lazily builds and
  reuses its *own* operator cache (the cache module is process-global, so
  a worker's second shard with the same spatial signature hits warm
  factorizations), and a warm-up hook on worker init imports the numerics
  stack -- optionally pre-solving a representative payload -- so the first
  real shard does not pay cold-start twice.

Both backends resolve the shard through the same module-level
:func:`solve_shard_payload`, so the numerics are shared code and the
process path is bit-identical to the thread path by construction (the
equivalence tests and the benchmark's ``service.scaling`` section assert
the delta is exactly zero).

Crash hardening: when a process worker dies mid-shard (OOM kill, segfault,
``kill -9``), ``ProcessPoolExecutor`` marks the whole pool broken and
fails *every* in-flight future with ``BrokenProcessPool``.  The process
backend translates that into a :class:`WorkerCrashError` per affected
shard and respawns the pool exactly once (idempotent under a lock, however
many shards observed the same breakage), so the service's poisoned-shard
bisection machinery retries the affected jobs on fresh workers and a
deterministically crashing story eventually fails alone -- the daemon
survives worker death the same way it survives a poisoned surface.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.cascade.density import DensitySurface
from repro.core.config import ModelSpec
from repro.core.errors import UnknownExecutorError
from repro.service.sharding import ShardKey


class WorkerCrashError(RuntimeError):
    """A process worker died while (or before) solving this shard.

    Raised by :meth:`ProcessExecutionBackend.solve` in place of the
    pool-global ``BrokenProcessPool``, after the pool has been respawned.
    An ordinary ``Exception`` subclass on purpose: the service routes it
    through the same bisect-and-requeue path as any other shard-wide solve
    failure, so the crashed shard is retried (split in half) on the fresh
    pool instead of sinking the service.
    """


@dataclass(frozen=True)
class ShardPayload:
    """One shard as plain picklable data: everything a worker needs.

    The pickling boundary of the process backend: the shard's signature
    (:class:`~repro.service.sharding.ShardKey` -- frozen floats/strings/
    tuples), the resolved model workload
    (:class:`~repro.core.config.ModelSpec` -- frozen dataclasses) and the
    observed surfaces (numpy arrays plus plain metadata).  Surfaces may be
    lazy :class:`~repro.corpus.store.LazySurface` handles -- also plain
    picklable data (store path + row, no open mmaps) -- which
    :func:`solve_shard_payload` materialises in the worker.  No live
    fitter, service or event-loop objects ever cross the boundary.
    """

    key: ShardKey
    spec: ModelSpec
    surfaces: "dict[str, DensitySurface | object]"


def solve_shard_payload(
    payload: ShardPayload,
) -> "dict[str, object]":
    """Solve one shard payload: the single shard-numerics path of the service.

    Resolves the shard's model from the registry, fits each story in
    isolation (a story whose *fit* fails maps to its own exception without
    poisoning shard-mates) and evaluates every fitted story in one joint
    call -- for ``dl`` that is the batched spatial-group solve.  Both the
    thread and the process backend land here, which is what makes their
    results bit-identical: the backends only choose *where* this function
    runs, never *how* it computes.
    """
    from repro.corpus.store import materialize_surface
    from repro.models.registry import get_model

    key = payload.key
    fitter = get_model(key.model).batch_fitter(payload.spec)
    # Lazy corpus-store handles materialise here -- at shard-solve time, in
    # whichever worker (thread or process) runs the shard -- so a
    # store-backed corpus never has all its surfaces in memory at once.
    surfaces = {
        name: materialize_surface(surface)
        for name, surface in payload.surfaces.items()
    }
    outcomes: "dict[str, object]" = {}
    fitted: "list[str]" = []
    for name, surface in surfaces.items():
        try:
            fitter.fit_story(name, surface, key.training_times)
            fitted.append(name)
        except Exception as error:  # noqa: BLE001 - per-story failure
            outcomes[name] = error
    if fitted:
        results = fitter.evaluate(
            {name: surfaces[name] for name in fitted},
            times=key.evaluation_times,
        )
        for name in fitted:
            outcomes[name] = results[name]
    return outcomes


@dataclass
class ShardRequest:
    """One shard solve handed to a backend, in both shapes backends need.

    ``run_local`` executes the service's in-process solve path (closing
    over the live job objects); the thread backend runs it verbatim, so
    tests that monkeypatch ``PredictionService._solve_shard`` keep
    intercepting every thread-backend solve.  ``make_payload`` builds the
    picklable :class:`ShardPayload` for backends that ship the shard out
    of process; it is a factory so the thread path never pays for it.
    """

    run_local: "Callable[[], dict[str, object]]"
    make_payload: "Callable[[], ShardPayload]"


class ExecutionBackend(ABC):
    """Where shard solves run: a started/stopped pool with an async ``solve``.

    The contract with the service: :meth:`solve` returns
    ``(worker_label, outcomes)`` where ``outcomes`` maps story name to a
    :class:`~repro.core.prediction.PredictionResult` or the story's own
    exception; a raise out of :meth:`solve` is a *shard-wide* failure that
    the service answers with bisect-and-requeue.  ``worker_label`` names
    the pool member that solved the shard (thread name / process name) and
    feeds the per-worker metric labels.
    """

    #: Registry name of the backend kind (``thread`` / ``process``).
    kind: str = "abstract"

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.workers = int(max_workers)

    @abstractmethod
    def start(self) -> None:
        """Create the pool; idempotent."""

    @abstractmethod
    def shutdown(self, wait: bool = True) -> None:
        """Tear the pool down; the backend cannot be restarted."""

    @abstractmethod
    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, dict[str, object]]":
        """Run one shard; returns ``(worker_label, outcomes)``."""

    def describe(self) -> dict:
        """Plain-dict state for ``stats`` payloads."""
        return {"executor": self.kind, "workers": self.workers}


class ThreadExecutionBackend(ExecutionBackend):
    """The classic in-process thread pool (the pre-backend behaviour)."""

    kind = "thread"

    def __init__(self, max_workers: int) -> None:
        super().__init__(max_workers)
        self._pool: "ThreadPoolExecutor | None" = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-service"
            )

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, dict[str, object]]":
        import asyncio

        assert self._pool is not None, "backend not started"

        def entry() -> "tuple[str, dict[str, object]]":
            return threading.current_thread().name, request.run_local()

        return await asyncio.get_running_loop().run_in_executor(self._pool, entry)


def _process_worker_init(warmup: "bytes | None") -> None:
    """Per-worker warm-up, run once when a pool process starts.

    Importing :mod:`repro.models` pulls the whole numerics stack (numpy,
    scipy, the solver and operator-cache modules) *and* registers the
    built-in models -- required under the ``spawn`` start method, where
    children do not inherit the parent's registry state.  An optional
    pickled :class:`ShardPayload` is then solved and discarded, populating
    this process's operator cache with the corpus's factorizations so the
    worker's first real shard starts warm.  Warm-up failures are swallowed:
    a broken warm-up payload must degrade to a cold first shard, never kill
    the worker (which would mark the whole pool broken).
    """
    import repro.models  # noqa: F401 - imported for its registration side effect

    if warmup:
        try:
            solve_shard_payload(pickle.loads(warmup))
        except Exception:  # noqa: BLE001 - warm-up is best-effort by design
            pass


def _solve_pickled_payload(data: bytes) -> "tuple[str, dict[str, object]]":
    """Process-pool entry point: unpickle, solve, label with the worker name."""
    payload = pickle.loads(data)
    outcomes = solve_shard_payload(payload)
    return multiprocessing.current_process().name, outcomes


def _default_start_method() -> str:
    """``fork`` where available (Linux), else the platform default.

    Forked workers start in milliseconds and inherit runtime-registered
    models and module state; ``spawn`` (the macOS/Windows default) pays a
    full interpreter start per worker but works everywhere --
    ``_process_worker_init`` re-imports the registry so built-in models
    resolve under either method.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


class ProcessExecutionBackend(ExecutionBackend):
    """Shard solving on a ``ProcessPoolExecutor``: past the GIL entirely.

    Parameters
    ----------
    max_workers:
        Pool size; size it to physical cores for calibration-heavy
        corpora (each worker duplicates the operator cache, so memory
        grows linearly with workers).
    start_method:
        Multiprocessing start method (``fork`` / ``spawn`` /
        ``forkserver``); ``None`` picks ``fork`` where available.
    warmup:
        Optional :class:`ShardPayload` each new worker solves (and
        discards) on init, pre-populating its operator cache.
    """

    kind = "process"

    def __init__(
        self,
        max_workers: int,
        start_method: "str | None" = None,
        warmup: "ShardPayload | None" = None,
    ) -> None:
        super().__init__(max_workers)
        self._start_method = start_method or _default_start_method()
        self._context = multiprocessing.get_context(self._start_method)
        self._warmup_bytes = (
            pickle.dumps(warmup, protocol=pickle.HIGHEST_PROTOCOL)
            if warmup is not None
            else None
        )
        self._pool: "ProcessPoolExecutor | None" = None
        self._lock = threading.Lock()
        self._closed = False
        self._respawns = 0

    @property
    def start_method(self) -> str:
        """The multiprocessing start method in force."""
        return self._start_method

    @property
    def respawns(self) -> int:
        """How many times the pool was replaced after a worker crash."""
        with self._lock:
            return self._respawns

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._context,
            initializer=_process_worker_init,
            initargs=(self._warmup_bytes,),
        )

    def start(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("the executor has been shut down")
            if self._pool is None:
                self._pool = self._new_pool()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            pool = self._pool
        if pool is not None:
            pool.shutdown(wait=wait)

    def _respawn_after(self, broken: ProcessPoolExecutor) -> None:
        """Replace the broken pool, exactly once per breakage.

        A single worker death breaks the pool for *every* in-flight shard,
        so several concurrent ``solve`` calls race here with the same pool
        object; only the first swaps in a fresh pool, the rest see the
        swap already happened (``self._pool is not broken``) and return.
        """
        with self._lock:
            if self._closed or self._pool is not broken:
                return
            self._pool = self._new_pool()
            self._respawns += 1
        broken.shutdown(wait=False)

    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, dict[str, object]]":
        import asyncio

        with self._lock:
            pool = self._pool
        assert pool is not None, "backend not started"
        # Pickle eagerly: an unpicklable payload must fail *this* shard with
        # a clear error instead of surfacing from the pool's feeder thread.
        data = pickle.dumps(request.make_payload(), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                pool, _solve_pickled_payload, data
            )
        except BrokenProcessPool as error:
            self._respawn_after(pool)
            raise WorkerCrashError(
                "a process worker died while this shard was in flight; the "
                "pool has been respawned and the shard will be retried"
            ) from error

    def describe(self) -> dict:
        info = super().describe()
        info["start_method"] = self._start_method
        info["respawns"] = self.respawns
        return info


# ---------------------------------------------------------------------- #
# Registry (mirrors repro.models.registry)
# ---------------------------------------------------------------------- #
#: name -> factory called as ``factory(max_workers=..., **options)``.
_REGISTRY: "dict[str, Callable[..., ExecutionBackend]]" = {}


def register_executor(
    name: str,
    factory: "Callable[..., ExecutionBackend]",
    overwrite: bool = False,
) -> None:
    """Register an execution backend under ``name``.

    ``factory`` is called as ``factory(max_workers=..., **options)`` and
    must return an (unstarted) :class:`ExecutionBackend`.  Re-registering
    an existing name raises unless ``overwrite=True``, mirroring
    :func:`repro.models.registry.register_model`.
    """
    if not name:
        raise ValueError("an executor needs a non-empty name")
    if not overwrite and name in _REGISTRY:
        raise ValueError(
            f"executor {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[name] = factory


def unregister_executor(name: str) -> None:
    """Remove a registered backend (unknown names raise)."""
    if name not in _REGISTRY:
        raise UnknownExecutorError(name, available_executors())
    del _REGISTRY[name]


def available_executors() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_executor_factory(name: str) -> "Callable[..., ExecutionBackend]":
    """The factory registered under ``name`` (unknown names raise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExecutorError(name, available_executors()) from None


def create_executor(
    name: str,
    max_workers: int,
    options: "Mapping[str, object] | None" = None,
) -> ExecutionBackend:
    """Instantiate (without starting) the backend registered under ``name``."""
    factory = get_executor_factory(name)
    return factory(max_workers=max_workers, **dict(options or {}))


register_executor("thread", ThreadExecutionBackend, overwrite=True)
register_executor("process", ProcessExecutionBackend, overwrite=True)
