"""Long-lived prediction daemon: job lifecycle over pluggable transports.

:class:`PredictionDaemon` turns the one-shot
:class:`~repro.service.service.PredictionService` into a server that
outlives any single manifest: clients connect over stdin/stdout, a
Unix-domain socket or TCP, submit story manifests as **jobs**, and receive
per-story results and job-status events streamed back as they complete,
while the daemon keeps one shared sharded worker pool (and its cached
operator factorizations) warm across jobs.

The daemon is a thin composition of three layers, each its own module:

* :mod:`repro.service.transport` -- addresses (``unix:/path``,
  ``tcp:HOST:PORT``, ``stdio``), listeners and client connections, behind
  a transport registry.  :meth:`PredictionDaemon.serve` takes any
  registered address; :meth:`serve_unix` / :meth:`serve_tcp` /
  :meth:`serve_stdio` are the named shortcuts.
* :mod:`repro.service.session` -- JSON-lines framing, request routing
  (submit/status/stats/metrics/trace/ping/shutdown), per-connection state
  and the per-client :class:`~repro.service.session.ClientQuota`.
* :mod:`repro.service.journal` -- the optional restart-surviving job
  journal (``journal_dir=``): every accepted job is journalled before it
  is acknowledged, and a restarted daemon replays the journal so
  previously in-flight jobs answer ``status`` as ``interrupted`` instead
  of silently vanishing.

What stays here is the daemon's own job: the lifecycle of a submitted
manifest (resolution, per-story submission to the shared service,
streaming ``result`` events, the final ``job`` event, bounded history).

Protocol
--------
Every request and every event is one JSON object per line (``\\n``
terminated, UTF-8).  Requests carry an ``op`` field:

``{"op": "submit", "manifest": {...}, "id": "job-1", "timeout": 30.0}``
    Score one story manifest (the same document ``repro serve-batch``
    reads, with corpus references and/or inline surfaces).  ``id`` names
    the job (generated when omitted); ``timeout`` is a per-story wall-clock
    deadline in seconds.  The daemon answers with an ``accepted`` event,
    then one ``result`` event per story as its shard completes, then a
    ``job`` event with final counts.
``{"op": "status", "id": "job-1"}``
    One ``status`` event with the job's current per-story counts.  Without
    ``id``, a summary of every known job.  After a restart with the same
    journal directory, previously in-flight jobs answer with status
    ``interrupted``.
``{"op": "stats"}``
    One ``stats`` event: daemon uptime and job counts, the service's
    counters (including autotuner state when enabled) and the full
    telemetry-registry snapshot.
``{"op": "trace", "id": "job-1"}``
    One ``trace`` event: the job's trace id and its buffered span records
    (empty when tracing is disabled).  Rendered by ``repro trace``.
``{"op": "worker", "id": "w-1", "payload": "<base64 pickle>"}``
    Cluster mode: solve one pickled
    :class:`~repro.service.execution.ShardPayload` and answer with a
    ``worker_result`` event carrying the pickled
    :class:`~repro.service.execution.ShardSolveReport` (same base64
    encoding).  The router daemon's
    :class:`~repro.service.cluster.WorkerPool` is the only intended
    caller; every ordinary ``repro daemon`` answers the op, which is what
    makes any daemon usable as a cluster worker.
``{"op": "ping"}`` / ``{"op": "shutdown", "drain": false}``
    Liveness probe / graceful stop.  ``shutdown`` drains every queued and
    running job before exiting unless ``drain`` is false, in which case
    queued jobs are cancelled and only in-flight shards finish.

Events mirror requests: ``accepted``, ``result``, ``job``, ``status``,
``stats``, ``pong``, ``shutdown`` and ``error`` (malformed JSON, unknown
ops, invalid manifests and quota rejections produce an ``error`` event on
the offending connection, never a dead daemon; quota rejections carry
``"error_type": "quota_exceeded"`` plus the tripped limit).

Results are bit-identical to the synchronous
:class:`~repro.core.prediction.BatchPredictor` on the same stories -- the
daemon only adds transport and scheduling, never numerics (the ``daemon``
benchmark section and the CI ``daemon-smoke`` job assert this, including
record-for-record equality between a TCP daemon and a Unix-socket one).

:class:`DaemonClient` is the matching asyncio client used by ``repro
submit`` / ``repro daemon-stats``, the benchmark harness and
``examples/daemon_client.py``; :meth:`DaemonClient.connect` dials any
transport address.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import functools
import json
import logging
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import AsyncIterator

from repro.core.errors import DaemonConnectionError, QuotaExceededError, UnknownModelError
from repro.core.prediction import PredictionResult
from repro.models.registry import get_model
from repro.service.execution import solve_shard_report
from repro.service.journal import FSYNC_POLICIES, JobJournal, ReplayedJob
from repro.service.logs import log_job_event, service_logger
from repro.service.manifest import ManifestError, open_corpus
from repro.service.service import JobStatus, PredictionJob, PredictionService
from repro.service.session import ClientQuota, ClientSession
from repro.service.tracing import NOOP_TRACER, Span, Tracer, TracerLike
from repro.service.transport import (
    Address,
    Connection,
    Listener,
    create_listener,
    open_client_connection,
)

DEFAULT_HOURS = 6
_SUBMIT_FIELDS = {"op", "manifest", "id", "timeout", "model"}


def story_result_payload(result: PredictionResult) -> dict:
    """Machine-readable per-story result, shared by every transport.

    The same structure ``repro predict-batch --json`` and ``repro
    serve-batch`` emit, so daemon clients and batch pipelines parse one
    format.  ``model`` names the registry model that produced the result,
    so mixed-model streams stay attributable.
    """
    return {
        "model": result.model,
        "overall_accuracy": result.overall_accuracy,
        "parameters": result.parameters.to_json_dict(),
        "accuracy_by_distance": {
            str(distance): result.accuracy_at_distance(distance)
            for distance in result.predicted.distances
        },
    }


@dataclass
class DaemonJob:
    """One submitted manifest tracked for its whole lifetime.

    ``interrupted`` jobs were replayed from the journal of a daemon
    process that died with them in flight: their per-story counts come
    from ``replayed_counts`` (reconstructed journal state) instead of live
    :class:`PredictionJob` objects.
    """

    id: str
    submitted_at: float
    timeout: "float | None"
    skipped: "list[str]" = field(default_factory=list)
    story_jobs: "dict[str, PredictionJob]" = field(default_factory=dict)
    completed: bool = False
    interrupted: bool = False
    stories_pending: int = 0
    replayed_counts: "dict[str, int] | None" = None
    trace_id: "str | None" = None
    _span: "Span | None" = field(default=None, repr=False)

    @property
    def active(self) -> bool:
        """True while the job is still producing events (quota accounting)."""
        return not self.completed and not self.interrupted

    def story_counts(self) -> dict:
        """Per-status story counts (``skipped`` included)."""
        if self.replayed_counts is not None:
            return dict(self.replayed_counts)
        counts = {status.value: 0 for status in JobStatus}
        for job in self.story_jobs.values():
            counts[job.status.value] += 1
        counts["skipped"] = len(self.skipped)
        return counts

    def summary(self) -> dict:
        counts = self.story_counts()
        if self.interrupted:
            status = "interrupted"
        else:
            status = "completed" if self.completed else "running"
        summary = {
            "id": self.id,
            "status": status,
            "stories": counts,
            "age_seconds": time.time() - self.submitted_at,
        }
        if self.trace_id is not None:
            summary["trace"] = self.trace_id
        return summary


class PredictionDaemon:
    """Serve prediction jobs over JSON lines, backed by one shared service.

    Parameters
    ----------
    default_timeout:
        Per-story wall-clock deadline (seconds) applied to submissions that
        do not carry their own ``timeout``; ``None`` disables deadlines.
    max_completed_jobs:
        How many *terminal* jobs (completed or interrupted) stay queryable
        via ``status`` before the oldest are evicted (their per-story
        results are only streamed, so eviction loses nothing but history).
        Bounds the daemon's memory over an arbitrarily long life; active
        jobs are never evicted.
    quota:
        A :class:`~repro.service.session.ClientQuota` bounding each
        client's share of the queue (max in-flight jobs / queued stories
        per connection); ``None`` leaves clients unlimited.  Rejections
        are typed ``error`` events (``error_type: "quota_exceeded"``) and
        counted in ``daemon.quota_rejections``.
    journal_dir:
        Directory of the restart-surviving job journal
        (:mod:`repro.service.journal`).  Every accepted job is journalled
        -- durably, under the default fsync policy -- *before* its
        ``accepted`` event is sent; on start the journal is replayed and
        jobs the previous process never finished are registered with
        status ``interrupted``, so ``status`` answers for them instead of
        claiming they never existed.  ``None`` (default) disables
        journalling.
    journal_fsync:
        Journal fsync policy: ``"always"`` (default, sync every record)
        or ``"never"`` (flush only; the tail may be lost on power cut).
    resume:
        With ``resume=True`` (and a journal), jobs replayed as
        ``interrupted`` are *re-run* instead of only reported: each
        interrupted job whose journalled submit record carried its
        manifest is re-submitted to the fresh service under its original
        id (counted in ``daemon.jobs_resumed``); its results are
        recomputed but not streamed anywhere -- the submitting client's
        connection died with the previous process -- so ``status``
        answers with live (then ``completed``) counts instead of a
        permanent ``interrupted``.  Jobs journalled before manifests were
        recorded (or by daemons without ``resume``) stay report-only
        ``interrupted``.
    trace:
        Enable in-memory request tracing: every accepted job gets a root
        ``job`` span whose children cover parse, quota check, manifest
        resolution, per-story queue wait / shard solve (down to the
        calibration phases, across the process-executor boundary) and
        result emission.  Spans are queryable per job via the ``trace``
        protocol op / ``repro trace``.  Off by default: the no-op tracer
        costs one attribute check per instrumentation site.
    trace_dir:
        Directory spans are additionally exported to as JSON lines
        (``spans.jsonl``), one record per finished span.  Implies
        ``trace=True``.
    trace_capacity:
        Ring-buffer capacity of the in-memory tracer (oldest spans are
        evicted first); bounds trace memory over a long daemon life.
    **service_kwargs:
        Forwarded to :class:`~repro.service.service.PredictionService`
        (workers, queue depth, shard size, autotune, backend, operator,
        executor -- ``executor="process"`` runs shard solves on a
        crash-respawning process pool -- ...).  All jobs share this one
        service, so every manifest benefits from the same warmed operator
        caches and autotuner state; the ``stats`` event reports the
        executor kind and worker-pool size the daemon is actually running
        with.

    Call :meth:`serve` with any registered transport address, or the named
    shortcuts :meth:`serve_unix` / :meth:`serve_tcp` / :meth:`serve_stdio`
    -- all run until a ``shutdown`` request (or EOF on stdio) and drain
    gracefully.
    """

    def __init__(
        self,
        default_timeout: "float | None" = None,
        max_completed_jobs: int = 256,
        quota: "ClientQuota | None" = None,
        journal_dir: "str | None" = None,
        journal_fsync: str = "always",
        resume: bool = False,
        trace: bool = False,
        trace_dir: "str | None" = None,
        trace_capacity: int = 4096,
        **service_kwargs,
    ) -> None:
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(f"default_timeout must be > 0, got {default_timeout}")
        if max_completed_jobs < 1:
            raise ValueError(
                f"max_completed_jobs must be >= 1, got {max_completed_jobs}"
            )
        self._default_timeout = default_timeout
        self._max_completed_jobs = max_completed_jobs
        self._quota = quota
        self._journal_dir = journal_dir
        # Validate the policy now (construction time), not at first serve.
        if journal_fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got "
                f"{journal_fsync!r}"
            )
        self._journal_fsync = journal_fsync
        self._resume = bool(resume)
        self._journal: "JobJournal | None" = None
        self._tracer: TracerLike = (
            Tracer(capacity=trace_capacity, export_dir=trace_dir)
            if (trace or trace_dir is not None)
            else NOOP_TRACER
        )
        self._log = service_logger()
        self._service_kwargs = service_kwargs
        self._service: "PredictionService | None" = None
        self._jobs: "dict[str, DaemonJob]" = {}
        self._job_sequence = 0
        self._accepting = False
        self._drain_on_stop = True
        self._stop: "asyncio.Event | None" = None
        self._job_tasks: "set[asyncio.Task]" = set()
        self._connections: "set[Connection]" = set()
        self._listener: "Listener | None" = None
        self._started_at = 0.0

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    async def serve(self, address: "str | Address") -> None:
        """Serve on any registered transport address until ``shutdown``.

        ``address`` follows the :func:`~repro.service.transport.parse_address`
        grammar: ``unix:/path/to.sock``, ``tcp:HOST:PORT``, ``stdio`` or a
        bare Unix-socket path.
        """
        await self._serve(create_listener(address))

    async def serve_unix(self, socket_path: str) -> None:
        """Serve on a Unix-domain socket until a ``shutdown`` request."""
        await self.serve(Address(scheme="unix", path=socket_path))

    async def serve_tcp(self, host: str, port: int) -> None:
        """Serve on a TCP socket until a ``shutdown`` request."""
        await self.serve(Address(scheme="tcp", host=host, port=port))

    async def serve_stdio(self) -> None:
        """Serve one client over stdin/stdout until ``shutdown`` or EOF."""
        await self.serve(Address(scheme="stdio"))

    @property
    def listener(self) -> "Listener | None":
        """The live listener while serving (e.g. to read a bound TCP port)."""
        return self._listener

    async def _serve(self, listener: Listener) -> None:
        async with self._running_service():
            self._listener = listener
            try:
                await listener.start(self._handle_connection)
                assert self._stop is not None
                stop_wait = asyncio.ensure_future(self._stop.wait())
                served = asyncio.ensure_future(listener.wait())
                # Either a shutdown request stops us, or the transport
                # itself finishes (stdio: the pipe client reached EOF).
                await asyncio.wait(
                    {stop_wait, served}, return_when=asyncio.FIRST_COMPLETED
                )
                for future in (stop_wait, served):
                    if not future.done():
                        future.cancel()
                await asyncio.gather(stop_wait, served, return_exceptions=True)
                self._accepting = False
                await listener.stop()
                await self._settle()
            finally:
                for connection in list(self._connections):
                    connection.close()
                self._connections.clear()
                listener.cleanup()
                self._listener = None

    @property
    def tracer(self) -> TracerLike:
        """The daemon's tracer (the shared no-op one when tracing is off)."""
        return self._tracer

    @contextlib.asynccontextmanager
    async def _running_service(self):
        self._service = PredictionService(
            tracer=self._tracer, **self._service_kwargs
        )
        self._service.start()
        self._stop = asyncio.Event()
        self._accepting = True
        self._drain_on_stop = True
        self._started_at = time.time()
        if self._journal_dir is not None:
            self._journal = JobJournal(self._journal_dir, fsync=self._journal_fsync)
            self._register_interrupted_jobs(self._journal.replay())
        try:
            yield self
        finally:
            await self._service.close(drain=self._drain_on_stop)
            self._accepting = False
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            # Flush (but keep) the tracer: its export handle must not leak,
            # and spans stay queryable after the server loop exits (tests,
            # post-mortem inspection).
            self._tracer.close()

    def _register_interrupted_jobs(self, replayed) -> None:
        """Re-register journalled jobs the previous process never finished.

        They answer ``status`` as ``interrupted`` -- with per-story counts
        reconstructed from the journal -- instead of ``unknown job``; the
        same retention cap as completed jobs bounds them.  With
        ``resume=True``, jobs whose submit record carried the manifest are
        additionally re-run on the fresh service (their interrupted entry
        is replaced by a live one); jobs without a journalled manifest
        cannot be reconstructed and stay report-only.
        """
        assert self._service is not None
        for job in replayed.values():
            self._jobs[job.id] = DaemonJob(
                id=job.id,
                submitted_at=job.submitted_at,
                timeout=None,
                skipped=list(job.skipped),
                interrupted=True,
                replayed_counts=job.story_counts(),
                trace_id=job.trace_id,
            )
            self._service.metrics.counter("daemon.jobs_interrupted").inc()
            log_job_event(
                self._log,
                "job.interrupted",
                job_id=job.id,
                trace_id=job.trace_id,
                stories=len(job.stories),
            )
            if self._resume and job.manifest is not None:
                task = asyncio.get_running_loop().create_task(
                    self._resume_job(job)
                )
                self._job_tasks.add(task)
                task.add_done_callback(self._job_tasks.discard)
        self._sync_journal_gauge()

    async def _resume_job(self, replayed: ReplayedJob) -> None:
        """Re-run one interrupted job from its journalled manifest.

        The submitting client's connection died with the previous daemon
        process, so the recomputed results stream into a null connection
        (they are discarded); what resume restores is the *work* and the
        job's queryable lifecycle -- ``status`` answers ``running`` then
        ``completed`` with real per-story counts, and a fresh submit
        record (manifest included) keeps the job resumable across a
        second crash.  A manifest that no longer resolves (e.g. a corpus
        store deleted since) leaves the job in its ``interrupted`` state.
        """
        assert self._service is not None
        manifest_payload = replayed.manifest
        assert manifest_payload is not None
        try:
            manifest = open_corpus(manifest_payload, source="<journal>")
            hours = manifest.hours or DEFAULT_HOURS
            training_times = [float(t) for t in range(1, hours + 1)]
            resolved = await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(manifest.resolve, training_times=training_times),
            )
        except (ManifestError, OSError) as error:
            log_job_event(
                self._log,
                "job.resume_failed",
                job_id=replayed.id,
                trace_id=replayed.trace_id,
                level=logging.WARNING,
                error=str(error),
            )
            return
        job = DaemonJob(
            id=replayed.id,
            submitted_at=time.time(),
            timeout=replayed.timeout,
            skipped=list(resolved.skipped),
            stories_pending=len(resolved.surfaces),
        )
        if self._tracer.enabled:
            span = self._tracer.span(
                "job",
                attributes={
                    "job": job.id,
                    "stories": len(resolved.surfaces),
                    "skipped": len(job.skipped),
                    "resumed": True,
                },
            )
            job.trace_id = span.trace_id
            job._span = span
        # Replace the interrupted entry: the job is live again.
        self._jobs[job.id] = job
        if self._journal is not None:
            self._journal.record_submit(
                job.id,
                stories=list(resolved.surfaces),
                skipped=job.skipped,
                timeout=job.timeout,
                trace_id=job.trace_id,
                manifest=manifest_payload,
            )
            self._sync_journal_gauge()
        self._service.metrics.counter("daemon.jobs_resumed").inc()
        log_job_event(
            self._log,
            "job.resumed",
            job_id=job.id,
            trace_id=job.trace_id,
            stories=len(resolved.surfaces),
            skipped=len(job.skipped),
        )
        default_model = str(self._service_kwargs.get("model", "dl"))
        story_models = {
            story.name: resolved.model_for(story.name, None) or default_model
            for story in manifest.stories
        }
        await self._run_job(
            _NullConnection(), job, resolved.surfaces, training_times, story_models
        )

    def _sync_journal_gauge(self) -> None:
        if self._journal is not None and self._service is not None:
            self._service.metrics.gauge("daemon.journal_records").set(
                self._journal.records_written
            )

    async def _settle(self) -> None:
        """Finish every accepted job according to the drain policy."""
        assert self._service is not None
        if not self._drain_on_stop:
            # Abort: cancel queued stories now so the streamers can finish.
            await self._service.close(drain=False)
        if self._job_tasks:
            await asyncio.gather(*list(self._job_tasks), return_exceptions=True)

    async def _handle_connection(self, connection: Connection) -> None:
        assert self._service is not None
        metrics = self._service.metrics
        metrics.counter("daemon.connections").inc()
        metrics.counter(
            "daemon.connections", labels={"transport": connection.scheme}
        ).inc()
        active_gauge = metrics.gauge("daemon.active_connections")
        active_gauge.inc()
        self._connections.add(connection)
        session = ClientSession(self, connection, metrics, quota=self._quota)
        try:
            await session.run()
        finally:
            active_gauge.dec()
            if connection.scheme == "stdio":
                # The one stdio peer reached EOF; its stdout stays open so
                # in-flight jobs stream their results during the drain --
                # _serve closes it after _settle().
                pass
            elif self._stop is not None and self._stop.is_set():
                # Shutdown path: the read loop exits promptly, but in-flight
                # job streamers may still owe this peer result events during
                # the drain -- _serve closes every registered connection
                # after _settle().
                pass
            else:
                # Peer hung up: release the connection now.
                self._connections.discard(connection)
                connection.close()

    # ------------------------------------------------------------------ #
    # SessionHost surface (the routing layer calls back into these)
    # ------------------------------------------------------------------ #
    @property
    def stop_event(self) -> asyncio.Event:
        assert self._stop is not None
        return self._stop

    def begin_shutdown(self, drain: bool) -> None:
        """Bar new submissions and record the drain policy (shutdown op)."""
        self._accepting = False
        self._drain_on_stop = bool(drain)

    def job_summaries(self) -> "list[dict]":
        return [job.summary() for job in self._jobs.values()]

    def job_summary(self, job_id: str) -> "dict | None":
        job = self._jobs.get(job_id)
        return job.summary() if job is not None else None

    def _sync_uptime_gauge(self) -> None:
        """Refresh ``daemon.uptime_seconds`` right before it is reported."""
        assert self._service is not None
        self._service.metrics.gauge("daemon.uptime_seconds").set(
            time.time() - self._started_at
        )

    def metrics_text(self) -> str:
        assert self._service is not None
        self._sync_uptime_gauge()
        return self._service.metrics.to_prometheus()

    def trace_payload(self, job_id: str) -> "dict | None":
        """Recent spans of one job for the ``trace`` protocol op.

        ``None`` for unknown jobs (the session answers ``unknown job``);
        an empty span list for jobs the daemon knows but never traced
        (tracing disabled, or the ring buffer already evicted them).
        """
        job = self._jobs.get(job_id)
        if job is None:
            return None
        spans = (
            self._tracer.spans(job.trace_id) if job.trace_id is not None else []
        )
        return {
            "event": "trace",
            "id": job_id,
            "trace": job.trace_id,
            "spans": spans,
        }

    async def handle_worker(self, session: ClientSession, message: dict) -> None:
        """Solve one shipped :class:`ShardPayload` (the ``worker`` op).

        This is what makes every ordinary daemon usable as a cluster
        worker: the router's :class:`~repro.service.cluster.WorkerPool`
        ships a pickled payload, this daemon solves it on the default
        loop executor (deliberately bypassing its own service queue --
        the router's worker count bounds in-flight shards fleet-wide)
        and answers with a ``worker_result`` event carrying the pickled
        :class:`~repro.service.execution.ShardSolveReport`, so the
        router's spans re-parent exactly as the process executor's do.
        """
        assert self._service is not None
        request_id = message.get("id")
        request_id = str(request_id) if request_id is not None else None
        data = message.get("payload")
        if not isinstance(data, str):
            await session.error(
                "a worker request needs a base64 'payload' field",
                job_id=request_id,
            )
            return
        try:
            payload = pickle.loads(base64.b64decode(data, validate=True))
        except Exception as error:  # binascii.Error, UnpicklingError, ...
            self._service.metrics.counter("daemon.worker_op_errors").inc()
            await session.error(
                f"undecodable worker payload: {error}", job_id=request_id
            )
            return
        try:
            report = await asyncio.get_running_loop().run_in_executor(
                None, solve_shard_report, payload
            )
        except Exception as error:
            # The router maps this error event onto the shard's bisection
            # path; the worker stays alive for the next shard.
            self._service.metrics.counter("daemon.worker_op_errors").inc()
            await session.error(
                f"worker shard solve failed: {error}", job_id=request_id
            )
            return
        self._service.metrics.counter("daemon.worker_shards_solved").inc()
        await session.connection.send(
            {
                "event": "worker_result",
                "id": request_id,
                "worker": f"pid-{os.getpid()}",
                "report": base64.b64encode(
                    pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii"),
            }
        )

    def stats_payload(self) -> dict:
        assert self._service is not None
        self._sync_uptime_gauge()
        active = sum(1 for job in self._jobs.values() if job.active)
        interrupted = sum(1 for job in self._jobs.values() if job.interrupted)
        jobs = {
            "active": active,
            "completed": len(self._jobs) - active - interrupted,
            "total": len(self._jobs),
        }
        payload = {
            "event": "stats",
            "uptime_seconds": time.time() - self._started_at,
            "jobs": jobs,
            "service": self._service.stats(),
            "metrics": self._service.metrics.snapshot(),
        }
        if self._journal is not None:
            # Journal state only appears when journalling is on, so the
            # default stats payload stays byte-compatible.
            jobs["interrupted"] = interrupted
            payload["journal"] = {
                "directory": self._journal.directory,
                "fsync": self._journal.fsync,
                "records_written": self._journal.records_written,
            }
        return payload

    # ------------------------------------------------------------------ #
    # Submission (job lifecycle proper)
    # ------------------------------------------------------------------ #
    async def handle_submit(self, session: ClientSession, message: dict) -> None:
        assert self._service is not None
        connection = session.connection
        if not self._accepting:
            await session.error("the daemon is shutting down")
            return
        unknown = sorted(set(message) - _SUBMIT_FIELDS)
        if unknown:
            await session.error(
                f"unknown submit field(s) {unknown}; expected a subset of "
                f"{sorted(_SUBMIT_FIELDS - {'op'})}"
            )
            return
        if "manifest" not in message:
            await session.error("submit needs a 'manifest' field")
            return
        job_id = str(message["id"]) if message.get("id") is not None else None
        if job_id is not None and job_id in self._jobs:
            await session.error(f"job id {job_id!r} already exists", job_id=job_id)
            return
        timeout = message.get("timeout", self._default_timeout)
        if timeout is not None and (
            not isinstance(timeout, (int, float))
            or isinstance(timeout, bool)
            or timeout <= 0
        ):
            await session.error(
                f"'timeout' must be a positive number, got {timeout!r}"
            )
            return
        quota_wall = time.time()
        quota_start = time.perf_counter()
        try:
            # Cheap fail-fast before any manifest work; the story quota is
            # checked again once the manifest is resolved and counted.
            session.check_job_quota()
        except QuotaExceededError as error:
            await session.reject_quota(error, job_id=job_id)
            return
        quota_seconds = time.perf_counter() - quota_start
        model_override = message.get("model")
        if model_override is not None:
            model_override = str(model_override)
            try:
                get_model(model_override)
            except UnknownModelError as error:
                await session.error(str(error), job_id=job_id)
                return
        payload = message["manifest"]
        if not isinstance(payload, dict):
            # A protocol manifest is always an inline JSON object; a string
            # must never be interpreted as a server-side file path.
            await session.error(
                f"invalid manifest: the manifest must be an object, got "
                f"{type(payload).__name__}",
                job_id=job_id,
            )
            return
        try:
            manifest = open_corpus(payload, source="<protocol>")
        except ManifestError as error:
            await session.error(f"invalid manifest: {error}", job_id=job_id)
            return
        if not manifest.stories:
            await session.error("the manifest contains no stories", job_id=job_id)
            return
        hours = manifest.hours or DEFAULT_HOURS
        training_times = [float(t) for t in range(1, hours + 1)]
        resolve_wall = time.time()
        resolve_start = time.perf_counter()
        try:
            # Resolution may build a synthetic corpus (seconds of CPU); keep
            # the event loop -- and every other client -- responsive.
            resolved = await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(
                    manifest.resolve, training_times=training_times
                ),
            )
        except ManifestError as error:
            await session.error(f"invalid manifest: {error}", job_id=job_id)
            return
        resolve_seconds = time.perf_counter() - resolve_start
        try:
            session.check_story_quota(len(resolved.surfaces))
        except QuotaExceededError as error:
            await session.reject_quota(error, job_id=job_id)
            return
        if job_id is None:
            # Generated ids must also dodge client-chosen ones ("job-1" is a
            # popular explicit id), or a generated job would silently
            # overwrite another job's registry entry.
            while True:
                self._job_sequence += 1
                job_id = f"job-{self._job_sequence}"
                if job_id not in self._jobs:
                    break
        job = DaemonJob(
            id=job_id,
            submitted_at=time.time(),
            timeout=timeout,
            skipped=list(resolved.skipped),
            stories_pending=len(resolved.surfaces),
        )
        self._jobs[job_id] = job
        session.track_job(job)
        if self._tracer.enabled:
            # The root span of everything this job does; the service and
            # the workers parent their spans under it via the TraceContext
            # threaded through submit().  The parse / quota / resolve work
            # already happened, so those children are recorded
            # retroactively from the measured intervals.
            span = self._tracer.span(
                "job",
                attributes={
                    "job": job_id,
                    "stories": len(resolved.surfaces),
                    "skipped": len(job.skipped),
                },
            )
            job.trace_id = span.trace_id
            job._span = span
            if session.last_parse is not None:
                parse_wall, parse_seconds = session.last_parse
                self._tracer.record_span(
                    "session.parse",
                    parent=span,
                    start=parse_wall,
                    duration=parse_seconds,
                    attributes={"transport": connection.scheme},
                )
            self._tracer.record_span(
                "quota.check",
                parent=span,
                start=quota_wall,
                duration=quota_seconds,
            )
            self._tracer.record_span(
                "manifest.resolve",
                parent=span,
                start=resolve_wall,
                duration=resolve_seconds,
                attributes={"stories": len(resolved.surfaces)},
            )
        if self._journal is not None:
            # Journalled (and, under fsync="always", durably synced) BEFORE
            # the accepted event: an acknowledged job is never lost.
            self._journal.record_submit(
                job_id,
                stories=list(resolved.surfaces),
                skipped=job.skipped,
                timeout=timeout,
                trace_id=job.trace_id,
                # The manifest itself makes the record re-runnable: a
                # restart with --resume re-submits it under the same id.
                manifest=payload,
            )
            self._sync_journal_gauge()
        self._service.metrics.counter("daemon.jobs_submitted").inc()
        log_job_event(
            self._log,
            "job.accepted",
            job_id=job_id,
            trace_id=job.trace_id,
            stories=len(resolved.surfaces),
            skipped=len(job.skipped),
            transport=connection.scheme,
        )
        await connection.send(
            {
                "event": "accepted",
                "id": job_id,
                "stories": list(resolved.surfaces),
                "skipped": job.skipped,
                "hours": hours,
                "timeout": timeout,
            }
        )
        # Fully resolved per-story model names (story-level override, then
        # the request's "model", then the manifest default, then the
        # service's default model), so every event -- skipped included --
        # attributes its story to a concrete model.
        default_model = str(self._service_kwargs.get("model", "dl"))
        story_models = {
            story.name: resolved.model_for(story.name, model_override)
            or default_model
            for story in manifest.stories
        }
        for story in job.skipped:
            await connection.send(
                {
                    "event": "result",
                    "id": job_id,
                    "story": story,
                    "status": "skipped",
                    "model": story_models.get(story, default_model),
                    "reason": "no influenced users at any distance in the "
                    "first observed hour",
                }
            )
        task = asyncio.get_running_loop().create_task(
            self._run_job(
                connection, job, resolved.surfaces, training_times, story_models
            )
        )
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)

    def _record_story_terminal(self, job: DaemonJob, story: str, status: str) -> None:
        """Story bookkeeping every terminal path shares (journal + quota)."""
        job.stories_pending = max(0, job.stories_pending - 1)
        if self._journal is not None:
            self._journal.record_story(job.id, story, status)
            self._sync_journal_gauge()

    async def _run_job(
        self,
        connection: Connection,
        job: DaemonJob,
        surfaces: dict,
        training_times: "list[float]",
        story_models: "dict[str, str | None] | None" = None,
    ) -> None:
        assert self._service is not None
        evaluation_times = training_times[1:]
        story_models = story_models or {}
        try:
            watchers = []
            for name, surface in surfaces.items():
                try:
                    # Story names are prefixed with the job id so concurrent
                    # jobs listing the same story never collide in the
                    # service's in-flight namespace.
                    story_job = await self._service.submit(
                        f"{job.id}:{name}",
                        surface,
                        training_times,
                        evaluation_times,
                        timeout=job.timeout,
                        model=story_models.get(name),
                        trace=job._span.context if job._span is not None else None,
                    )
                except (RuntimeError, ValueError) as error:
                    # RuntimeError: the service stopped accepting (abort
                    # shutdown) while this job was still submitting.
                    # ValueError: a name collision in the service's in-flight
                    # namespace.  Either way, report the story instead of
                    # letting the job task die with results half-streamed.
                    self._record_story_terminal(job, name, "cancelled")
                    await connection.send(
                        {
                            "event": "result",
                            "id": job.id,
                            "story": name,
                            "status": "cancelled",
                            "model": story_models.get(name, "dl"),
                            "error": str(error),
                        }
                    )
                    continue
                job.story_jobs[name] = story_job
                watchers.append(
                    asyncio.get_running_loop().create_task(
                        self._stream_story(connection, job, name, story_job)
                    )
                )
            if watchers:
                await asyncio.gather(*watchers)
        finally:
            job.completed = True
            if self._journal is not None:
                self._journal.record_job(job.id, "completed")
                self._sync_journal_gauge()
            self._prune_jobs()
            counts = job.story_counts()
            if job._span is not None:
                for status, count in counts.items():
                    if count:
                        job._span.set_attribute(status, count)
                job._span.finish()
            log_job_event(
                self._log,
                "job.completed",
                job_id=job.id,
                trace_id=job.trace_id,
                seconds=time.time() - job.submitted_at,
                stories=counts,
            )
            await connection.send(
                {
                    "event": "job",
                    "id": job.id,
                    "status": "completed",
                    "stories": counts,
                    "seconds": time.time() - job.submitted_at,
                }
            )

    def _prune_jobs(self) -> None:
        """Evict the oldest terminal jobs beyond the retention cap.

        A long-lived daemon would otherwise retain every DaemonJob -- with
        its per-story PredictionJob objects, surfaces and results -- for the
        life of the process.  Only terminal jobs (completed or replayed as
        interrupted) are evicted (dict order is submission order, so the
        oldest go first); their results were already streamed (or lost with
        the process that owned them), so eviction only trims ``status``
        history.
        """
        terminal = [
            job_id for job_id, job in self._jobs.items() if not job.active
        ]
        for job_id in terminal[: max(0, len(terminal) - self._max_completed_jobs)]:
            del self._jobs[job_id]

    async def _stream_story(
        self,
        connection: Connection,
        job: DaemonJob,
        name: str,
        story_job: PredictionJob,
    ) -> None:
        await story_job.finished()
        status = story_job.status.value
        self._record_story_terminal(job, name, status)
        payload = {
            "event": "result",
            "id": job.id,
            "story": name,
            "status": status,
        }
        if story_job.status is JobStatus.SUCCEEDED:
            assert story_job.result is not None
            payload.update(story_result_payload(story_job.result))
        else:
            # Failed / timed-out / cancelled stories never produced a
            # result, but the shard key still attributes them to a model.
            payload["model"] = story_job.key.model
            if story_job.error is not None:
                payload["error"] = str(story_job.error)
        emit_wall = time.time()
        emit_start = time.perf_counter()
        await connection.send(payload)
        if self._tracer.enabled:
            self._tracer.record_span(
                "result.emit",
                parent=story_job._span,
                start=emit_wall,
                duration=time.perf_counter() - emit_start,
                attributes={"story": name, "status": status},
            )
        log_job_event(
            self._log,
            "story.result",
            job_id=job.id,
            trace_id=job.trace_id,
            level=logging.DEBUG,
            story=name,
            status=status,
        )


class _NullConnection:
    """Sink for events of resumed jobs (their submitting client is gone).

    Quacks like :class:`~repro.service.transport.Connection` for the send
    side only; the daemon's job pipeline streams ``result`` / ``job``
    events into it and they are discarded.
    """

    scheme = "null"

    async def send(self, payload: dict) -> None:
        return None

    def close(self) -> None:
        return None


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
class DaemonClient:
    """Asyncio client for the daemon's JSON-lines protocol.

    Connect to any transport address::

        async with await DaemonClient.connect("unix:/tmp/repro.sock") as client:
            async for event in client.submit(manifest):
                ...

    ``tcp:HOST:PORT`` and bare Unix-socket paths work too (the
    :func:`~repro.service.transport.parse_address` grammar).  One client
    drives one request at a time; open several connections for concurrent
    submissions.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        address: "str | Address",
        retries: int = 0,
        backoff: float = 0.1,
    ) -> "DaemonClient":
        """Dial a daemon address (``unix:PATH``, ``tcp:HOST:PORT``, bare path).

        ``retries`` extra attempts are made after a refused or failed
        connection, sleeping ``backoff * 2**attempt`` seconds between them
        (capped at 2 s per sleep), so callers racing a daemon that is
        still binding its socket -- the router's
        :class:`~repro.service.cluster.WorkerPool` at fleet startup,
        ``repro submit --connect`` against a freshly spawned daemon --
        need no hand-rolled wait loops.  Address errors (a malformed or
        ``stdio`` address) never retry: they cannot heal.
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {backoff}")
        attempt = 0
        while True:
            try:
                reader, writer = await open_client_connection(address)
            except (ConnectionError, OSError):
                if attempt >= retries:
                    raise
                await asyncio.sleep(min(backoff * (2 ** attempt), 2.0))
                attempt += 1
            else:
                return cls(reader, writer)

    @classmethod
    async def connect_unix(cls, socket_path: str) -> "DaemonClient":
        return await cls.connect(Address(scheme="unix", path=socket_path))

    @classmethod
    async def connect_tcp(cls, host: str, port: int) -> "DaemonClient":
        return await cls.connect(Address(scheme="tcp", host=host, port=port))

    async def __aenter__(self) -> "DaemonClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    def close_nowait(self) -> None:
        """Close without awaiting the transport teardown.

        For synchronous shutdown paths -- an
        :class:`~repro.service.execution.ExecutionBackend.shutdown` is a
        plain method -- where awaiting ``wait_closed()`` is impossible;
        the event loop finishes the close in the background.
        """
        self._writer.close()

    async def _send(self, payload: dict) -> None:
        self._writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await self._writer.drain()

    async def _receive(self) -> dict:
        """Read one event line; typed error when the daemon dies mid-stream.

        EOF here means the daemon hung up *after* accepting the connection
        -- it was stopped or killed between a request and its response (or
        part-way through an event stream), which callers must be able to
        tell from a connect-time failure.  A truncated or malformed line is
        the same condition caught mid-write.
        """
        line = await self._reader.readline()
        if not line:
            raise DaemonConnectionError(
                "the daemon closed the connection mid-stream (it may have "
                "been stopped or killed); events already received are valid"
            )
        if not line.endswith(b"\n"):
            raise DaemonConnectionError(
                "the daemon died mid-response: the connection closed part-way "
                "through an event line"
            )
        try:
            return json.loads(line.decode("utf-8"))
        except json.JSONDecodeError as error:
            raise DaemonConnectionError(
                f"the daemon sent a malformed event line ({error}); the "
                f"connection is unusable"
            ) from None

    async def send(self, payload: dict) -> None:
        """Send one request line without awaiting its response.

        With :meth:`receive`, the pipelined half of the API: the cluster
        :class:`~repro.service.cluster.WorkerPool` keeps several worker
        requests in flight per connection and matches ``worker_result``
        events back by id, which the strict :meth:`request` call-and-wait
        shape cannot express.
        """
        await self._send(payload)

    async def receive(self) -> dict:
        """Read one event line (see :meth:`send` for the pipelined use)."""
        return await self._receive()

    async def request(self, payload: dict) -> dict:
        """Send one request and return its single response event."""
        await self._send(payload)
        return await self._receive()

    async def submit(
        self,
        manifest: dict,
        job_id: "str | None" = None,
        timeout: "float | None" = None,
        model: "str | None" = None,
    ) -> "AsyncIterator[dict]":
        """Submit a manifest; yield events through the final ``job`` event.

        Yields the ``accepted`` event, every per-story ``result`` event and
        the closing ``job`` event.  An ``error`` event ends the stream
        immediately (after being yielded) -- callers decide whether to
        raise.  ``model`` overrides the manifest-level default model
        (story-level ``"model"`` entries still win).
        """
        request: dict = {"op": "submit", "manifest": manifest}
        if job_id is not None:
            request["id"] = job_id
        if timeout is not None:
            request["timeout"] = timeout
        if model is not None:
            request["model"] = model
        await self._send(request)
        while True:
            event = await self._receive()
            yield event
            if event.get("event") == "error":
                return
            if event.get("event") == "job" and event.get("status") == "completed":
                return

    async def status(self, job_id: "str | None" = None) -> dict:
        request: dict = {"op": "status"}
        if job_id is not None:
            request["id"] = job_id
        return await self.request(request)

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def trace(self, job_id: str) -> dict:
        """One job's buffered span records (``trace`` event or ``error``)."""
        return await self.request({"op": "trace", "id": job_id})

    async def metrics_text(self) -> str:
        """The daemon's telemetry in Prometheus text exposition format."""
        event = await self.request({"op": "metrics"})
        return event.get("text", "")

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def shutdown(self, drain: bool = True) -> dict:
        return await self.request({"op": "shutdown", "drain": drain})
