"""Long-lived prediction daemon: a JSON-lines protocol over stdio or a socket.

:class:`PredictionDaemon` turns the one-shot
:class:`~repro.service.service.PredictionService` into a server that
outlives any single manifest: clients connect over stdin/stdout or a
Unix-domain socket, submit story manifests as **jobs**, and receive
per-story results and job-status events streamed back as they complete,
while the daemon keeps one shared sharded worker pool (and its cached
operator factorizations) warm across jobs.

Protocol
--------
Every request and every event is one JSON object per line (``\\n``
terminated, UTF-8).  Requests carry an ``op`` field:

``{"op": "submit", "manifest": {...}, "id": "job-1", "timeout": 30.0}``
    Score one story manifest (the same document ``repro serve-batch``
    reads, with corpus references and/or inline surfaces).  ``id`` names
    the job (generated when omitted); ``timeout`` is a per-story wall-clock
    deadline in seconds.  The daemon answers with an ``accepted`` event,
    then one ``result`` event per story as its shard completes, then a
    ``job`` event with final counts.
``{"op": "status", "id": "job-1"}``
    One ``status`` event with the job's current per-story counts.  Without
    ``id``, a summary of every known job.
``{"op": "stats"}``
    One ``stats`` event: daemon uptime and job counts, the service's
    counters (including autotuner state when enabled) and the full
    telemetry-registry snapshot.
``{"op": "ping"}`` / ``{"op": "shutdown", "drain": false}``
    Liveness probe / graceful stop.  ``shutdown`` drains every queued and
    running job before exiting unless ``drain`` is false, in which case
    queued jobs are cancelled and only in-flight shards finish.

Events mirror requests: ``accepted``, ``result``, ``job``, ``status``,
``stats``, ``pong``, ``shutdown`` and ``error`` (malformed JSON, unknown
ops and invalid manifests produce an ``error`` event on the offending
connection, never a dead daemon).

Results are bit-identical to the synchronous
:class:`~repro.core.prediction.BatchPredictor` on the same stories -- the
daemon only adds transport and scheduling, never numerics (the ``daemon``
benchmark section and the CI ``daemon-smoke`` job assert this).

:class:`DaemonClient` is the matching asyncio client used by ``repro
submit`` / ``repro daemon-stats``, the benchmark harness and
``examples/daemon_client.py``.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import AsyncIterator

from repro.core.errors import UnknownModelError
from repro.core.prediction import PredictionResult
from repro.models.registry import get_model
from repro.service.manifest import ManifestError, open_corpus
from repro.service.service import JobStatus, PredictionJob, PredictionService

DEFAULT_HOURS = 6
_SUBMIT_FIELDS = {"op", "manifest", "id", "timeout", "model"}


def story_result_payload(result: PredictionResult) -> dict:
    """Machine-readable per-story result, shared by every transport.

    The same structure ``repro predict-batch --json`` and ``repro
    serve-batch`` emit, so daemon clients and batch pipelines parse one
    format.  ``model`` names the registry model that produced the result,
    so mixed-model streams stay attributable.
    """
    return {
        "model": result.model,
        "overall_accuracy": result.overall_accuracy,
        "parameters": result.parameters.to_json_dict(),
        "accuracy_by_distance": {
            str(distance): result.accuracy_at_distance(distance)
            for distance in result.predicted.distances
        },
    }


@dataclass
class DaemonJob:
    """One submitted manifest tracked for its whole lifetime."""

    id: str
    submitted_at: float
    timeout: "float | None"
    skipped: "list[str]" = field(default_factory=list)
    story_jobs: "dict[str, PredictionJob]" = field(default_factory=dict)
    completed: bool = False

    def story_counts(self) -> dict:
        """Per-status story counts (``skipped`` included)."""
        counts = {status.value: 0 for status in JobStatus}
        for job in self.story_jobs.values():
            counts[job.status.value] += 1
        counts["skipped"] = len(self.skipped)
        return counts

    def summary(self) -> dict:
        counts = self.story_counts()
        return {
            "id": self.id,
            "status": "completed" if self.completed else "running",
            "stories": counts,
            "age_seconds": time.time() - self.submitted_at,
        }


class _Connection:
    """One JSON-lines peer: a serialized writer shared by event streamers."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self._write_lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True) + "\n"
        # Concurrent job streamers share this connection; the lock keeps
        # each event on its own line no matter how watchers interleave.
        async with self._write_lock:
            self.writer.write(line.encode("utf-8"))
            try:
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # the peer hung up; the read loop will see EOF and exit

    def close(self) -> None:
        try:
            self.writer.close()
        except RuntimeError:
            pass  # event loop already closing


class PredictionDaemon:
    """Serve prediction jobs over JSON lines, backed by one shared service.

    Parameters
    ----------
    default_timeout:
        Per-story wall-clock deadline (seconds) applied to submissions that
        do not carry their own ``timeout``; ``None`` disables deadlines.
    max_completed_jobs:
        How many *completed* jobs stay queryable via ``status`` before the
        oldest are evicted (their per-story results are only streamed, so
        eviction loses nothing but history).  Bounds the daemon's memory
        over an arbitrarily long life; active jobs are never evicted.
    **service_kwargs:
        Forwarded to :class:`~repro.service.service.PredictionService`
        (workers, queue depth, shard size, autotune, backend, operator,
        executor -- ``executor="process"`` runs shard solves on a
        crash-respawning process pool -- ...).  All jobs share this one
        service, so every manifest benefits from the same warmed operator
        caches and autotuner state; the ``stats`` event reports the
        executor kind and worker-pool size the daemon is actually running
        with.

    Call :meth:`serve_unix` (socket) or :meth:`serve_stdio` (pipe) -- both
    run until a ``shutdown`` request (or EOF on stdio) and drain gracefully.
    """

    def __init__(
        self,
        default_timeout: "float | None" = None,
        max_completed_jobs: int = 256,
        **service_kwargs,
    ) -> None:
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(f"default_timeout must be > 0, got {default_timeout}")
        if max_completed_jobs < 1:
            raise ValueError(
                f"max_completed_jobs must be >= 1, got {max_completed_jobs}"
            )
        self._default_timeout = default_timeout
        self._max_completed_jobs = max_completed_jobs
        self._service_kwargs = service_kwargs
        self._service: "PredictionService | None" = None
        self._jobs: "dict[str, DaemonJob]" = {}
        self._job_sequence = 0
        self._accepting = False
        self._drain_on_stop = True
        self._stop: "asyncio.Event | None" = None
        self._job_tasks: "set[asyncio.Task]" = set()
        self._connections: "set[_Connection]" = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    async def serve_unix(self, socket_path: str) -> None:
        """Serve on a Unix-domain socket until a ``shutdown`` request."""
        # A stale socket file from a crashed daemon would fail the bind;
        # binding over it is safe because connect() on a dead socket fails.
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        async with self._running_service():
            server = await asyncio.start_unix_server(
                self._handle_socket_client, path=socket_path
            )
            try:
                assert self._stop is not None
                await self._stop.wait()
                server.close()
                await server.wait_closed()
                await self._settle()
            finally:
                for connection in list(self._connections):
                    connection.close()
                if os.path.exists(socket_path):
                    os.unlink(socket_path)

    async def serve_stdio(self) -> None:
        """Serve one client over stdin/stdout until ``shutdown`` or EOF."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        async with self._running_service():
            connection = _Connection(reader, writer)
            self._connections.add(connection)
            try:
                await self._read_loop(connection)
                # EOF on stdin is the pipe client's shutdown: drain and exit.
                self._accepting = False
                await self._settle()
            finally:
                self._connections.discard(connection)

    def _running_service(self):
        daemon = self

        class _Scope:
            async def __aenter__(self):
                daemon._service = PredictionService(**daemon._service_kwargs)
                daemon._service.start()
                daemon._stop = asyncio.Event()
                daemon._accepting = True
                daemon._drain_on_stop = True
                daemon._started_at = time.time()
                return daemon

            async def __aexit__(self, exc_type, exc, tb):
                assert daemon._service is not None
                await daemon._service.close(drain=daemon._drain_on_stop)
                daemon._accepting = False

        return _Scope()

    async def _settle(self) -> None:
        """Finish every accepted job according to the drain policy."""
        assert self._service is not None
        if not self._drain_on_stop:
            # Abort: cancel queued stories now so the streamers can finish.
            await self._service.close(drain=False)
        if self._job_tasks:
            await asyncio.gather(*list(self._job_tasks), return_exceptions=True)

    async def _handle_socket_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        try:
            await self._read_loop(connection)
        finally:
            if self._stop is not None and self._stop.is_set():
                # Shutdown path: the read loop exits promptly, but in-flight
                # job streamers may still owe this peer result events during
                # the drain -- serve_unix closes every registered connection
                # after _settle().
                pass
            else:
                # Peer hung up: release the connection now.
                self._connections.discard(connection)
                connection.close()

    async def _read_loop(self, connection: _Connection) -> None:
        # The loop must exit the moment shutdown is requested, even while
        # parked in readline() on an idle connection that the peer keeps
        # open -- otherwise the stdio transport (and Server.wait_closed on
        # Python >= 3.12, which awaits every live handler) would hang until
        # the peer happened to hang up.
        assert self._stop is not None
        stop_wait = asyncio.ensure_future(self._stop.wait())
        try:
            while not self._stop.is_set():
                read = asyncio.ensure_future(connection.reader.readline())
                await asyncio.wait(
                    {read, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    read.cancel()
                    await asyncio.gather(read, return_exceptions=True)
                    return
                try:
                    line = read.result()
                except (ConnectionResetError, BrokenPipeError):
                    return
                if not line:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await self._dispatch(connection, text)
        finally:
            stop_wait.cancel()
            await asyncio.gather(stop_wait, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, connection: _Connection, text: str) -> None:
        assert self._service is not None
        self._service.metrics.counter("daemon.requests").inc()
        try:
            message = json.loads(text)
        except json.JSONDecodeError as error:
            await self._error(connection, f"invalid JSON: {error}")
            return
        if not isinstance(message, dict):
            await self._error(
                connection, f"a request must be an object, got {type(message).__name__}"
            )
            return
        op = message.get("op")
        if op == "submit":
            await self._handle_submit(connection, message)
        elif op == "status":
            await self._handle_status(connection, message)
        elif op == "stats":
            await connection.send(self._stats_payload())
        elif op == "metrics":
            # Prometheus text exposition of the shared telemetry registry;
            # `repro daemon-stats --prometheus` prints it verbatim.
            await connection.send(
                {"event": "metrics", "text": self._service.metrics.to_prometheus()}
            )
        elif op == "ping":
            await connection.send({"event": "pong"})
        elif op == "shutdown":
            drain = message.get("drain", True)
            self._accepting = False
            self._drain_on_stop = bool(drain)
            await connection.send({"event": "shutdown", "drain": self._drain_on_stop})
            assert self._stop is not None
            self._stop.set()
        else:
            await self._error(
                connection,
                f"unknown op {op!r}; expected one of "
                f"'submit', 'status', 'stats', 'metrics', 'ping', 'shutdown'",
            )

    async def _error(
        self, connection: _Connection, message: str, job_id: "str | None" = None
    ) -> None:
        assert self._service is not None
        self._service.metrics.counter("daemon.errors").inc()
        payload = {"event": "error", "error": message}
        if job_id is not None:
            payload["id"] = job_id
        await connection.send(payload)

    def _stats_payload(self) -> dict:
        assert self._service is not None
        active = sum(1 for job in self._jobs.values() if not job.completed)
        return {
            "event": "stats",
            "uptime_seconds": time.time() - self._started_at,
            "jobs": {
                "active": active,
                "completed": len(self._jobs) - active,
                "total": len(self._jobs),
            },
            "service": self._service.stats(),
            "metrics": self._service.metrics.snapshot(),
        }

    async def _handle_status(self, connection: _Connection, message: dict) -> None:
        job_id = message.get("id")
        if job_id is None:
            await connection.send(
                {
                    "event": "status",
                    "jobs": [job.summary() for job in self._jobs.values()],
                }
            )
            return
        job = self._jobs.get(str(job_id))
        if job is None:
            await self._error(
                connection, f"unknown job {job_id!r}", job_id=str(job_id)
            )
            return
        await connection.send({"event": "status", **job.summary()})

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def _handle_submit(self, connection: _Connection, message: dict) -> None:
        assert self._service is not None
        if not self._accepting:
            await self._error(connection, "the daemon is shutting down")
            return
        unknown = sorted(set(message) - _SUBMIT_FIELDS)
        if unknown:
            await self._error(
                connection,
                f"unknown submit field(s) {unknown}; expected a subset of "
                f"{sorted(_SUBMIT_FIELDS - {'op'})}",
            )
            return
        if "manifest" not in message:
            await self._error(connection, "submit needs a 'manifest' field")
            return
        job_id = str(message["id"]) if message.get("id") is not None else None
        if job_id is not None and job_id in self._jobs:
            await self._error(
                connection, f"job id {job_id!r} already exists", job_id=job_id
            )
            return
        timeout = message.get("timeout", self._default_timeout)
        if timeout is not None and (
            not isinstance(timeout, (int, float))
            or isinstance(timeout, bool)
            or timeout <= 0
        ):
            await self._error(
                connection, f"'timeout' must be a positive number, got {timeout!r}"
            )
            return
        model_override = message.get("model")
        if model_override is not None:
            model_override = str(model_override)
            try:
                get_model(model_override)
            except UnknownModelError as error:
                await self._error(connection, str(error), job_id=job_id)
                return
        payload = message["manifest"]
        if not isinstance(payload, dict):
            # A protocol manifest is always an inline JSON object; a string
            # must never be interpreted as a server-side file path.
            await self._error(
                connection,
                f"invalid manifest: the manifest must be an object, got "
                f"{type(payload).__name__}",
                job_id=job_id,
            )
            return
        try:
            manifest = open_corpus(payload, source="<protocol>")
        except ManifestError as error:
            await self._error(connection, f"invalid manifest: {error}", job_id=job_id)
            return
        if not manifest.stories:
            await self._error(
                connection, "the manifest contains no stories", job_id=job_id
            )
            return
        hours = manifest.hours or DEFAULT_HOURS
        training_times = [float(t) for t in range(1, hours + 1)]
        try:
            # Resolution may build a synthetic corpus (seconds of CPU); keep
            # the event loop -- and every other client -- responsive.
            resolved = await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(
                    manifest.resolve, training_times=training_times
                ),
            )
        except ManifestError as error:
            await self._error(connection, f"invalid manifest: {error}", job_id=job_id)
            return
        if job_id is None:
            # Generated ids must also dodge client-chosen ones ("job-1" is a
            # popular explicit id), or a generated job would silently
            # overwrite another job's registry entry.
            while True:
                self._job_sequence += 1
                job_id = f"job-{self._job_sequence}"
                if job_id not in self._jobs:
                    break
        job = DaemonJob(
            id=job_id,
            submitted_at=time.time(),
            timeout=timeout,
            skipped=list(resolved.skipped),
        )
        self._jobs[job_id] = job
        self._service.metrics.counter("daemon.jobs_submitted").inc()
        await connection.send(
            {
                "event": "accepted",
                "id": job_id,
                "stories": list(resolved.surfaces),
                "skipped": job.skipped,
                "hours": hours,
                "timeout": timeout,
            }
        )
        # Fully resolved per-story model names (story-level override, then
        # the request's "model", then the manifest default, then the
        # service's default model), so every event -- skipped included --
        # attributes its story to a concrete model.
        default_model = str(self._service_kwargs.get("model", "dl"))
        story_models = {
            story.name: resolved.model_for(story.name, model_override)
            or default_model
            for story in manifest.stories
        }
        for story in job.skipped:
            await connection.send(
                {
                    "event": "result",
                    "id": job_id,
                    "story": story,
                    "status": "skipped",
                    "model": story_models.get(story, default_model),
                    "reason": "no influenced users at any distance in the "
                    "first observed hour",
                }
            )
        task = asyncio.get_running_loop().create_task(
            self._run_job(
                connection, job, resolved.surfaces, training_times, story_models
            )
        )
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)

    async def _run_job(
        self,
        connection: _Connection,
        job: DaemonJob,
        surfaces: dict,
        training_times: "list[float]",
        story_models: "dict[str, str | None] | None" = None,
    ) -> None:
        assert self._service is not None
        evaluation_times = training_times[1:]
        story_models = story_models or {}
        try:
            watchers = []
            for name, surface in surfaces.items():
                try:
                    # Story names are prefixed with the job id so concurrent
                    # jobs listing the same story never collide in the
                    # service's in-flight namespace.
                    story_job = await self._service.submit(
                        f"{job.id}:{name}",
                        surface,
                        training_times,
                        evaluation_times,
                        timeout=job.timeout,
                        model=story_models.get(name),
                    )
                except (RuntimeError, ValueError) as error:
                    # RuntimeError: the service stopped accepting (abort
                    # shutdown) while this job was still submitting.
                    # ValueError: a name collision in the service's in-flight
                    # namespace.  Either way, report the story instead of
                    # letting the job task die with results half-streamed.
                    await connection.send(
                        {
                            "event": "result",
                            "id": job.id,
                            "story": name,
                            "status": "cancelled",
                            "model": story_models.get(name, "dl"),
                            "error": str(error),
                        }
                    )
                    continue
                job.story_jobs[name] = story_job
                watchers.append(
                    asyncio.get_running_loop().create_task(
                        self._stream_story(connection, job, name, story_job)
                    )
                )
            if watchers:
                await asyncio.gather(*watchers)
        finally:
            job.completed = True
            self._prune_jobs()
            await connection.send(
                {
                    "event": "job",
                    "id": job.id,
                    "status": "completed",
                    "stories": job.story_counts(),
                    "seconds": time.time() - job.submitted_at,
                }
            )

    def _prune_jobs(self) -> None:
        """Evict the oldest completed jobs beyond the retention cap.

        A long-lived daemon would otherwise retain every DaemonJob -- with
        its per-story PredictionJob objects, surfaces and results -- for the
        life of the process.  Only completed jobs are evicted (dict order is
        submission order, so the oldest go first); their results were
        already streamed, so eviction only trims ``status`` history.
        """
        completed = [job_id for job_id, job in self._jobs.items() if job.completed]
        for job_id in completed[: max(0, len(completed) - self._max_completed_jobs)]:
            del self._jobs[job_id]

    async def _stream_story(
        self,
        connection: _Connection,
        job: DaemonJob,
        name: str,
        story_job: PredictionJob,
    ) -> None:
        await story_job.finished()
        payload = {
            "event": "result",
            "id": job.id,
            "story": name,
            "status": story_job.status.value,
        }
        if story_job.status is JobStatus.SUCCEEDED:
            assert story_job.result is not None
            payload.update(story_result_payload(story_job.result))
        else:
            # Failed / timed-out / cancelled stories never produced a
            # result, but the shard key still attributes them to a model.
            payload["model"] = story_job.key.model
            if story_job.error is not None:
                payload["error"] = str(story_job.error)
        await connection.send(payload)


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
class DaemonClient:
    """Asyncio client for the daemon's JSON-lines protocol (Unix socket).

    Use as an async context manager::

        async with await DaemonClient.connect_unix(path) as client:
            async for event in client.submit(manifest):
                ...

    One client drives one request at a time; open several connections for
    concurrent submissions.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect_unix(cls, socket_path: str) -> "DaemonClient":
        reader, writer = await asyncio.open_unix_connection(socket_path)
        return cls(reader, writer)

    async def __aenter__(self) -> "DaemonClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _send(self, payload: dict) -> None:
        self._writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await self._writer.drain()

    async def _receive(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("the daemon closed the connection")
        return json.loads(line.decode("utf-8"))

    async def request(self, payload: dict) -> dict:
        """Send one request and return its single response event."""
        await self._send(payload)
        return await self._receive()

    async def submit(
        self,
        manifest: dict,
        job_id: "str | None" = None,
        timeout: "float | None" = None,
        model: "str | None" = None,
    ) -> "AsyncIterator[dict]":
        """Submit a manifest; yield events through the final ``job`` event.

        Yields the ``accepted`` event, every per-story ``result`` event and
        the closing ``job`` event.  An ``error`` event ends the stream
        immediately (after being yielded) -- callers decide whether to
        raise.  ``model`` overrides the manifest-level default model
        (story-level ``"model"`` entries still win).
        """
        request: dict = {"op": "submit", "manifest": manifest}
        if job_id is not None:
            request["id"] = job_id
        if timeout is not None:
            request["timeout"] = timeout
        if model is not None:
            request["model"] = model
        await self._send(request)
        while True:
            event = await self._receive()
            yield event
            if event.get("event") == "error":
                return
            if event.get("event") == "job" and event.get("status") == "completed":
                return

    async def status(self, job_id: "str | None" = None) -> dict:
        request: dict = {"op": "status"}
        if job_id is not None:
            request["id"] = job_id
        return await self.request(request)

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def metrics_text(self) -> str:
        """The daemon's telemetry in Prometheus text exposition format."""
        event = await self.request({"op": "metrics"})
        return event.get("text", "")

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def shutdown(self, drain: bool = True) -> dict:
        return await self.request({"op": "shutdown", "drain": drain})
