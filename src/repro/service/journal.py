"""Daemon job journal: restart-surviving job lifecycle records.

A long-lived daemon that dies (OOM kill, host reboot, ``kill -9``) used to
take every in-flight job's existence with it -- a client asking ``status``
after the restart got ``unknown job``, indistinguishable from a job that
was never submitted.  The journal closes that gap: with ``--journal DIR``
the daemon appends one JSON object per line to ``DIR/journal.jsonl`` at
each lifecycle edge --

``{"type": "submit", "job": ..., "stories": [...], "skipped": [...]}``
    A job was accepted (written -- and with ``fsync="always"`` durably
    synced -- *before* the ``accepted`` event reaches the client, so an
    acknowledged job is never lost).
``{"type": "story", "job": ..., "story": ..., "status": ...}``
    One story reached a terminal status (succeeded / failed / timed_out /
    cancelled / skipped).
``{"type": "job", "job": ..., "status": "completed"}``
    The job finished and streamed its final counts.
``{"type": "interrupted", ...}``
    Written during replay compaction: a summary of a job the previous
    daemon process never finished.

On start the daemon replays the journal: jobs with a ``submit`` record but
no terminal ``job`` record were in flight when the process died and are
re-registered with status ``interrupted`` -- their per-story statuses
reconstructed from the ``story`` records, stories with no terminal record
reported as ``interrupted`` themselves.  ``status`` then answers for every
previously in-flight job; nothing silently vanishes.  Replay also
**compacts**: completed jobs' records are dropped and interrupted jobs are
rewritten as single ``interrupted`` summaries, so the journal stays
proportional to unfinished work, not daemon lifetime.

The fsync policy is configurable: ``"always"`` (default) syncs every
record to disk -- an acknowledged submit survives a power cut;
``"never"`` flushes to the OS but leaves syncing to the kernel, trading
durability of the last few records for lower submit latency.

A torn final line (the process died mid-write) is expected and ignored on
replay; every complete record before it still counts.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import IO, Iterable

#: Valid fsync policies for :class:`JobJournal`.
FSYNC_POLICIES = ("always", "never")

JOURNAL_FILENAME = "journal.jsonl"


@dataclass
class ReplayedJob:
    """One job reconstructed from journal records.

    ``story_statuses`` maps story name to its last recorded terminal
    status; stories the dead daemon never finished are *absent* here and
    materialise as ``interrupted`` in :meth:`story_counts`.
    """

    id: str
    submitted_at: float
    stories: "list[str]" = field(default_factory=list)
    skipped: "list[str]" = field(default_factory=list)
    story_statuses: "dict[str, str]" = field(default_factory=dict)
    status: str = "interrupted"  # "completed" once a terminal job record is seen
    #: Trace id the job's spans were recorded under (tracing enabled only);
    #: survives the restart so an exported spans.jsonl stays correlatable.
    trace_id: "str | None" = None
    #: Per-story timeout the original submission carried.
    timeout: "float | None" = None
    #: The submitted manifest document, when the daemon journalled it --
    #: what ``--resume`` needs to re-run the job.  ``None`` for records
    #: written before manifests were journalled.
    manifest: "dict | None" = None

    @property
    def finished(self) -> bool:
        return self.status != "interrupted"

    def story_counts(self) -> "dict[str, int]":
        """Per-status story counts, unfinished stories as ``interrupted``."""
        counts: "dict[str, int]" = {}
        for story in self.stories:
            status = self.story_statuses.get(story, "interrupted")
            counts[status] = counts.get(status, 0) + 1
        counts["skipped"] = counts.get("skipped", 0) + len(self.skipped)
        return counts

    def summary_record(self) -> dict:
        """The compact ``interrupted`` record replay compaction rewrites."""
        record = {
            "type": "interrupted",
            "job": self.id,
            "t": self.submitted_at,
            "stories": self.stories,
            "skipped": self.skipped,
            "story_statuses": self.story_statuses,
        }
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.timeout is not None:
            record["timeout"] = self.timeout
        if self.manifest is not None:
            # The manifest must survive compaction, or a job would stop
            # being resumable after the first restart that didn't resume it.
            record["manifest"] = self.manifest
        return record


def _parse_records(lines: Iterable[str], source: str) -> "list[dict]":
    """Parse journal lines, tolerating a torn final line (died mid-write)."""
    records: "list[dict]" = []
    pending_error: "str | None" = None
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        if pending_error is not None:
            # A malformed line *followed by more records* is corruption,
            # not a torn tail; refuse to guess at the job history.
            raise ValueError(pending_error)
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            pending_error = (
                f"{source}:{number}: malformed journal record is not the "
                f"final line; the journal is corrupt"
            )
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def replay_records(records: Iterable[dict]) -> "dict[str, ReplayedJob]":
    """Fold journal records into per-job replay state, submission order."""
    jobs: "dict[str, ReplayedJob]" = {}
    for record in records:
        kind = record.get("type")
        job_id = str(record.get("job", ""))
        if not job_id:
            continue
        if kind == "submit":
            trace = record.get("trace")
            timeout = record.get("timeout")
            manifest = record.get("manifest")
            jobs[job_id] = ReplayedJob(
                id=job_id,
                submitted_at=float(record.get("t", 0.0)),
                stories=[str(s) for s in record.get("stories", [])],
                skipped=[str(s) for s in record.get("skipped", [])],
                trace_id=str(trace) if trace is not None else None,
                timeout=float(timeout) if timeout is not None else None,
                manifest=manifest if isinstance(manifest, dict) else None,
            )
        elif kind == "story":
            job = jobs.get(job_id)
            if job is not None:
                job.story_statuses[str(record.get("story", ""))] = str(
                    record.get("status", "interrupted")
                )
        elif kind == "job":
            job = jobs.get(job_id)
            if job is not None:
                job.status = str(record.get("status", "completed"))
        elif kind == "interrupted":
            trace = record.get("trace")
            timeout = record.get("timeout")
            manifest = record.get("manifest")
            job = ReplayedJob(
                id=job_id,
                submitted_at=float(record.get("t", 0.0)),
                stories=[str(s) for s in record.get("stories", [])],
                skipped=[str(s) for s in record.get("skipped", [])],
                story_statuses={
                    str(k): str(v)
                    for k, v in (record.get("story_statuses") or {}).items()
                },
                trace_id=str(trace) if trace is not None else None,
                timeout=float(timeout) if timeout is not None else None,
                manifest=manifest if isinstance(manifest, dict) else None,
            )
            jobs[job_id] = job
    return jobs


class JobJournal:
    """Append-only JSON-lines journal of daemon job lifecycles.

    Create it on the daemon's journal directory, call :meth:`replay` once
    before serving (it also opens the file for appending and compacts),
    then record each lifecycle edge.  All writes happen on the event-loop
    thread; the file handle is never shared across threads.
    """

    def __init__(self, directory: str, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.directory = directory
        self.path = os.path.join(directory, JOURNAL_FILENAME)
        self.fsync = fsync
        self._handle: "IO[str] | None" = None
        self._records_written = 0

    @property
    def records_written(self) -> int:
        """Records appended by *this* process (not replayed history)."""
        return self._records_written

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def replay(self) -> "dict[str, ReplayedJob]":
        """Read prior records, compact the file, open it for appending.

        Returns every journalled job that was still unfinished when the
        previous daemon process died (``status == "interrupted"``), in
        submission order.  Completed jobs are dropped from the rewritten
        journal; interrupted jobs are kept as single summary records so
        they survive *further* restarts too.
        """
        if self._handle is not None:
            raise RuntimeError("replay() must run before the journal is open")
        os.makedirs(self.directory, exist_ok=True)
        jobs: "dict[str, ReplayedJob]" = {}
        if os.path.exists(self.path):
            with open(self.path, encoding="utf-8") as handle:
                records = _parse_records(handle, source=self.path)
            jobs = replay_records(records)
        interrupted = {
            job_id: job for job_id, job in jobs.items() if not job.finished
        }
        # Compact: rewrite atomically so a crash mid-compaction leaves the
        # old journal intact, then append from the rewritten file.
        temp_path = self.path + ".compact"
        with open(temp_path, "w", encoding="utf-8") as handle:
            for job in interrupted.values():
                handle.write(json.dumps(job.summary_record(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        return interrupted

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _append(self, record: dict) -> None:
        if self._handle is None:
            # Journal never replayed (unit use): open lazily.
            os.makedirs(self.directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        self._records_written += 1

    def record_submit(
        self,
        job_id: str,
        stories: "Iterable[str]",
        skipped: "Iterable[str]",
        timeout: "float | None" = None,
        trace_id: "str | None" = None,
        manifest: "dict | None" = None,
    ) -> None:
        """Journal an accepted job -- call *before* acknowledging it.

        ``trace_id`` correlates the journal record with the job's spans
        when tracing is enabled; omitted records stay byte-identical to the
        pre-tracing format.  ``manifest`` (the submitted document itself)
        is what makes the record re-runnable by ``--resume``; daemons that
        don't pass it journal the same records as before.
        """
        record: dict = {
            "type": "submit",
            "job": job_id,
            "t": time.time(),
            "stories": list(stories),
            "skipped": list(skipped),
            "timeout": timeout,
        }
        if trace_id is not None:
            record["trace"] = trace_id
        if manifest is not None:
            record["manifest"] = manifest
        self._append(record)

    def record_story(self, job_id: str, story: str, status: str) -> None:
        """Journal one story reaching a terminal status."""
        self._append(
            {"type": "story", "job": job_id, "story": story, "status": status}
        )

    def record_job(self, job_id: str, status: str = "completed") -> None:
        """Journal a job reaching its terminal status."""
        self._append({"type": "job", "job": job_id, "status": status})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync == "always":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
