"""In-process metrics for the prediction service and daemon.

A tiny, dependency-free metrics registry in the spirit of a Prometheus
client: :class:`Counter` (monotone totals), :class:`Gauge` (instantaneous
levels such as queue depth) and :class:`Histogram` (solve-time
distributions over fixed buckets), owned by a :class:`MetricsRegistry`
whose :meth:`MetricsRegistry.snapshot` returns one plain-JSON-able dict.

The registry is shared between the asyncio side of
:class:`~repro.service.service.PredictionService` and its worker threads,
so every instrument takes the registry's lock on update; updates are a few
hundred nanoseconds against shard solves measured in milliseconds, so the
lock never shows up in profiles.  Snapshots are consistent (taken under the
same lock) and return copies -- mutating a snapshot never corrupts the
registry.

The daemon exposes snapshots through its ``stats`` protocol command and the
``repro daemon-stats`` CLI; :meth:`MetricsRegistry.to_prometheus` renders
the same state in the Prometheus text exposition format (the daemon's
``metrics`` command, ``repro daemon-stats --prometheus``).

Instruments may carry **labels** (``registry.counter("service.jobs_succeeded",
labels={"model": "dl"})``): each label combination is its own instrument,
keyed ``name{key="value",...}`` in the snapshot, and the exposition
renderer emits them as proper Prometheus labels -- this is how per-model
traffic through the multi-model service stays attributable, and how the
cluster backend's per-worker series
(``cluster.worker_queue_depth{worker="tcp:host:port"}``, alongside the
unlabelled ``cluster.shards_stolen`` / ``cluster.reroutes`` counters)
attribute fleet load to individual worker daemons.
"""

from __future__ import annotations

import re
import threading
from typing import Mapping, Sequence

#: Default histogram bucket upper bounds (seconds), chosen around the
#: observed per-shard / per-story solve times of the batched engine
#: (sub-millisecond cache hits up to multi-second cold calibrations).
DEFAULT_TIME_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically increasing total.  Create via :meth:`MetricsRegistry.counter`."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level (queue depth, in-flight shards, ...)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram of observed values (typically seconds).

    ``buckets`` are the upper bounds of each bucket; an implicit ``+Inf``
    bucket always exists, so ``observe`` never drops a value.  The snapshot
    reports cumulative counts per bound (Prometheus ``le`` convention) plus
    ``count``, ``sum``, ``min`` and ``max``.
    """

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self._lock = lock
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self._bounds)
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    index = i
                    break
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """Cumulative bucket counts and summary stats, as one plain dict."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        cumulative, running = {}, 0
        for bound, count in zip(self._bounds, self._bucket_counts):
            running += count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + self._bucket_counts[-1]
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "mean": (self._sum / self._count) if self._count else None,
            "buckets": cumulative,
        }


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labels: "Mapping[str, str] | None") -> str:
    """Canonical ``{key="value",...}`` suffix for a label set (sorted keys)."""
    if not labels:
        return ""
    parts = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + parts + "}"


def _format_value(value: float) -> str:
    """Exact text form of a sample value.

    Counters are integral in practice and must round-trip exactly --
    ``%g`` would collapse 12345678 to 1.23457e+07 after only 8 digits --
    so integral floats render as integers and the rest via ``repr``
    (shortest exact representation).
    """
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _split_labels(full_name: str) -> "tuple[str, str]":
    """Split a registry key into (base name, label suffix or '')."""
    brace = full_name.find("{")
    if brace < 0:
        return full_name, ""
    return full_name[:brace], full_name[brace:]


def _prometheus_name(base: str, namespace: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", base)
    return f"{namespace}_{name}" if namespace else name


class MetricsRegistry:
    """Owns a named set of instruments; the service and daemon share one.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, so independent components
    (service, daemon, tests) can reference metrics without coordinating
    creation order.  Asking for an existing name with a different instrument
    kind raises.  The optional ``labels`` mapping gives each label
    combination its own instrument (keyed ``name{key="value"}``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, labels: "Mapping[str, str] | None" = None
    ) -> Counter:
        full = name + _label_suffix(labels)
        return self._get_or_create(full, Counter, lambda: Counter(full, self._lock))

    def gauge(self, name: str, labels: "Mapping[str, str] | None" = None) -> Gauge:
        full = name + _label_suffix(labels)
        return self._get_or_create(full, Gauge, lambda: Gauge(full, self._lock))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: "Mapping[str, str] | None" = None,
    ) -> Histogram:
        full = name + _label_suffix(labels)
        return self._get_or_create(
            full, Histogram, lambda: Histogram(full, self._lock, buckets)
        )

    def snapshot(self) -> dict:
        """One consistent {name: value-or-histogram-dict} view of every metric."""
        with self._lock:
            out: dict = {}
            for name, metric in sorted(self._metrics.items()):
                if isinstance(metric, Histogram):
                    out[name] = metric._snapshot_locked()
                else:
                    out[name] = metric._value
            return out

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Render every instrument in the Prometheus text exposition format.

        Counters become ``<ns>_<name>_total``, gauges keep their name,
        histograms emit the standard cumulative ``_bucket{le=...}`` series
        plus ``_sum`` / ``_count``.  Dots and dashes in registry names map
        to underscores; instrument labels (e.g. ``model="dl"``) are
        preserved as Prometheus labels.

        Label variants of the same base metric are grouped under a single
        ``# HELP`` / ``# TYPE`` comment pair, as the exposition format
        requires -- plain lexicographic ordering of registry keys would
        let an unrelated metric name sort *between* a bare series and its
        ``{label}`` variants and split the group.  The rendering is taken
        under the registry lock, so it is a consistent point-in-time view
        -- the same guarantee ``snapshot()`` gives.
        """
        with self._lock:
            groups: "dict[tuple[str, str], list[tuple[str, Counter | Gauge | Histogram]]]" = {}
            for full_name, metric in self._metrics.items():
                base, labels = _split_labels(full_name)
                if isinstance(metric, Counter):
                    kind = "counter"
                elif isinstance(metric, Gauge):
                    kind = "gauge"
                else:
                    kind = "histogram"
                groups.setdefault((base, kind), []).append((labels, metric))
            lines: "list[str]" = []
            for base, kind in sorted(groups):
                name = _prometheus_name(base, namespace)
                series = f"{name}_total" if kind == "counter" else name
                lines.append(f"# HELP {series} Registry metric {base}.")
                lines.append(f"# TYPE {series} {kind}")
                variants = sorted(groups[(base, kind)], key=lambda pair: pair[0])
                for labels, metric in variants:
                    if isinstance(metric, Histogram):
                        snap = metric._snapshot_locked()
                        inner = labels[1:-1] if labels else ""
                        for bound, count in snap["buckets"].items():
                            label_set = ",".join(
                                part for part in (inner, f'le="{bound}"') if part
                            )
                            lines.append(f"{name}_bucket{{{label_set}}} {count}")
                        lines.append(
                            f"{name}_sum{labels} {_format_value(snap['sum'])}"
                        )
                        lines.append(f"{name}_count{labels} {snap['count']}")
                    else:
                        lines.append(
                            f"{series}{labels} {_format_value(metric._value)}"
                        )
            return "\n".join(lines) + "\n" if lines else ""
