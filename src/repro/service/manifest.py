"""Story manifests and the :func:`open_corpus` entry point.

A manifest is a JSON document naming the stories a service run should score.
Stories come from three sources, freely mixed where it makes sense:

* **corpus stories** reference a representative story of the synthetic
  Digg-like corpus (built once per manifest from the ``corpus`` block);
* **inline stories** carry their observed density surface directly, so a
  manifest can describe thousands of cascades without any simulation;
* **store stories** reference a columnar corpus store
  (:mod:`repro.corpus`) by name via the ``store`` block; they resolve to
  *lazy* handles whose values stay on disk until their shard is solved.

Example::

    {
      "metric": "hops",
      "hours": 6,
      "model": "dl",
      "corpus": {"users": 2000, "background_stories": 40, "seed": 2009},
      "stories": [
        "s1",
        {"story": "s2", "model": "logistic"},
        {"name": "cascade-17",
         "distances": [1, 2, 3, 4, 5],
         "times": [1, 2, 3, 4, 5, 6],
         "values": [[5.0, 2.0, 2.5, 1.5, 1.0], ...]}
      ]
    }

``metric`` (``hops`` | ``interests``) and ``hours`` (training window length,
>= 2) apply to the whole manifest; both are optional with the CLI defaults.
``model`` selects the prediction model by :mod:`repro.models` registry name
-- manifest-level as the default for every story, per story as an override
-- so one manifest can mix models (the sharder keeps them in separate
shards).  The ``corpus`` block mirrors the corpus flags of the other
subcommands (``users``, ``background_stories``, ``seed``, ``horizon``) and
is only required when at least one corpus story is listed.

A store-backed manifest replaces ``corpus`` with ``store`` (the two are
mutually exclusive -- a name reference must resolve unambiguously)::

    {"store": "path/to/store", "stories": ["story-000001", "story-000002"]}

Omitting ``"stories"`` selects every story in the store.  Inline stories
may also carry optional ``group_sizes`` and ``unit`` fields (defaults:
all-ones groups, percent), which is what lets ``repro corpus export``
round-trip any store bit-identically through the inline format.

**Use** :func:`open_corpus` **for everything**: it accepts a decoded
payload, a manifest JSON path, a store directory or a store ``index.json``
path, and returns a :class:`StoryManifest` whose :meth:`~StoryManifest.resolve`
materialises the surfaces.  ``parse_manifest`` / ``load_manifest`` /
``resolve_manifest`` survive as thin deprecated aliases.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cascade.density import DENSITY_UNITS, DensitySurface
from repro.core.errors import UnknownModelError
from repro.corpus.store import CorpusStore, CorpusStoreError, LazySurface
from repro.models.registry import get_model

VALID_METRICS = ("hops", "interests")

#: Corpus-builder fields used when neither the manifest's ``corpus`` block
#: nor the caller's overrides set them -- the same defaults as the CLI's
#: corpus flags, so a manifest scores identically from the library and from
#: ``repro serve-batch``.  Also the set of keys a ``corpus`` block may use.
CORPUS_FIELD_DEFAULTS = {
    "users": 2000,
    "background_stories": 40,
    "horizon": 50.0,
    "seed": 2009,
}


@dataclass(frozen=True)
class ManifestStory:
    """One story entry: a corpus/store reference or an inline surface.

    ``model`` is the story's explicit model override (``None`` falls back
    to the manifest-level default, then to the consumer's default).
    """

    name: str
    corpus_story: "str | None" = None
    surface: "DensitySurface | None" = None
    model: "str | None" = None

    @property
    def is_inline(self) -> bool:
        return self.surface is not None


class ManifestError(ValueError):
    """Raised when a manifest does not parse, validate or resolve."""


@dataclass
class ResolvedManifest:
    """Manifest stories resolved into observed density surfaces.

    ``surfaces`` maps story name to a concrete
    :class:`~repro.cascade.density.DensitySurface` (inline and synthetic
    corpus stories) or a lazy :class:`~repro.corpus.store.LazySurface`
    (store-backed stories) -- both satisfy the sharder's and the service's
    surface contract, and lazy handles are only materialised inside shard
    solves.

    ``skipped`` names stories whose first observed hour is empty (no
    influenced users at any distance), which cannot anchor phi and are
    excluded up front -- mirroring ``repro predict-batch``.

    ``models`` records each story's *explicit* model override (story-level
    ``"model"`` or a store-recorded model, skipped stories included);
    stories without one are absent.  Use :meth:`model_for` for the
    effective name including the manifest-level default and a caller-side
    override.
    """

    surfaces: "dict[str, DensitySurface | LazySurface]" = field(default_factory=dict)
    skipped: "list[str]" = field(default_factory=list)
    models: "dict[str, str]" = field(default_factory=dict)
    default_model: "str | None" = None

    def model_for(self, name: str, override: "str | None" = None) -> "str | None":
        """Effective model of one story: story-level, then override, then manifest."""
        explicit = self.models.get(name)
        if explicit is not None:
            return explicit
        if override is not None:
            return override
        return self.default_model


@dataclass(frozen=True)
class StoryManifest:
    """A parsed manifest, ready to be resolved into density surfaces."""

    stories: tuple[ManifestStory, ...]
    metric: str = "hops"
    hours: "int | None" = None
    corpus_config: "dict | None" = None
    source: str = "<memory>"
    model: "str | None" = None
    store: "str | None" = None

    @property
    def needs_corpus(self) -> bool:
        """True when a story needs the *synthetic* corpus (not the store)."""
        return self.store is None and any(
            not story.is_inline for story in self.stories
        )

    def resolve(
        self,
        corpus_overrides: "dict | None" = None,
        training_times: "Sequence[float] | None" = None,
        include_empty: bool = False,
    ) -> ResolvedManifest:
        """Materialise every manifest story as an observed density surface.

        ``corpus_overrides`` supplies corpus-builder fields (users, seed,
        ...) that take precedence over the manifest's ``corpus`` block --
        the CLI passes explicitly given corpus flags here, mirroring how
        ``--hours`` overrides the manifest's ``hours``.  Unset fields fall
        back to :data:`CORPUS_FIELD_DEFAULTS`.  ``training_times``
        determines which hour must be non-empty (default: each surface's
        first observed hour) and is validated against every story's
        observation grid up front.  ``include_empty=True`` keeps
        empty-first-hour stories in ``surfaces`` instead of ``skipped``
        (``repro corpus build`` uses it so a store preserves the corpus
        verbatim).

        Store-backed stories resolve to lazy handles; only their axes are
        read here (plus one memory-mapped row for the empty-anchor check),
        never the full values matrix.
        """
        corpus = None
        store = None
        if self.store is not None:
            if corpus_overrides:
                raise ManifestError(
                    f"{self.source}: corpus overrides {sorted(corpus_overrides)} "
                    f"do not apply to a store-backed manifest; rebuild the "
                    f"store instead"
                )
            try:
                store = CorpusStore.open(self.store)
            except (CorpusStoreError, FileNotFoundError, OSError) as error:
                raise ManifestError(
                    f"{self.source}: cannot open the corpus store "
                    f"{self.store!r}: {error}"
                ) from error
        elif self.needs_corpus:
            from repro.cascade.digg import (
                SyntheticDiggConfig,
                build_synthetic_digg_dataset,
            )

            fields = dict(CORPUS_FIELD_DEFAULTS)
            fields.update(self.corpus_config or {})
            fields.update(corpus_overrides or {})
            try:
                config = SyntheticDiggConfig(
                    num_users=_coerce(
                        int, fields["users"], "corpus 'users' must be an integer"
                    ),
                    num_background_stories=_coerce(
                        int,
                        fields["background_stories"],
                        "corpus 'background_stories' must be an integer",
                    ),
                    horizon_hours=_coerce(
                        float, fields["horizon"], "corpus 'horizon' must be a number"
                    ),
                    seed=_coerce(
                        int, fields["seed"], "corpus 'seed' must be an integer"
                    ),
                )
            except ValueError as error:
                # SyntheticDiggConfig's own bounds checks (e.g. >= 100 users)
                # become manifest errors too; _coerce already raises
                # ManifestError, a ValueError subclass, re-raised unchanged.
                if isinstance(error, ManifestError):
                    raise
                raise ManifestError(f"invalid corpus block: {error}") from error
            corpus = build_synthetic_digg_dataset(config)

        resolved = ResolvedManifest(default_model=self.model)
        window = sorted(float(t) for t in training_times) if training_times else None
        anchor = window[0] if window else None
        # Stories sharing an observation grid (every story of a store
        # shard, all synthetic-corpus stories) validate the window once.
        window_cache: "dict[bytes, list[float]]" = {}
        for story in self.stories:
            if story.is_inline:
                surface = story.surface
            elif store is not None:
                try:
                    surface = store.handle(story.corpus_story)
                except CorpusStoreError as error:
                    raise ManifestError(
                        f"{self.source}: story {story.name!r} references "
                        f"{story.corpus_story!r}, which is not in the corpus "
                        f"store at {store.root}: {error}"
                    ) from error
                if story.model is None:
                    stored_model = store.model_for(story.corpus_story)
                    if stored_model is not None and stored_model != self.model:
                        resolved.models[story.name] = stored_model
            else:
                assert corpus is not None
                try:
                    if self.metric == "hops":
                        surface = corpus.hop_density_surface(story.corpus_story)
                    else:
                        surface = corpus.interest_density_surface(story.corpus_story)
                except KeyError as error:
                    raise ManifestError(
                        f"{self.source}: story {story.name!r} references "
                        f"unknown corpus story {story.corpus_story!r}; the "
                        f"corpus has {corpus.story_names}"
                    ) from error
            first_hour = anchor if anchor is not None else float(surface.times[0])
            if window is not None:
                # Validate the whole training window up front: a missing
                # later hour would otherwise surface as a cryptic per-job
                # KeyError from deep inside calibration.
                times_key = surface.times.tobytes()
                missing = window_cache.get(times_key)
                if missing is None:
                    missing = [
                        hour
                        for hour in window
                        if not np.any(np.isclose(surface.times, hour))
                    ]
                    window_cache[times_key] = missing
                if missing:
                    raise ManifestError(
                        f"{self.source}: story {story.name!r} has no "
                        f"observation at training hour(s) {missing}; its "
                        f"times span [{float(surface.times[0]):g}, "
                        f"{float(surface.times[-1]):g}]"
                    )
            if story.model is not None:
                # Recorded for skipped stories too, so consumers can
                # attribute every output line (including "skipped") to its
                # model.
                resolved.models[story.name] = story.model
            if include_empty:
                resolved.surfaces[story.name] = surface
                continue
            # Lazy handles answer the first-hour total straight from the
            # index, so resolving a store-backed manifest never pages in
            # shard data.
            if isinstance(surface, LazySurface):
                anchor_total = surface.profile_sum(first_hour)
            else:
                anchor_total = surface.profile(first_hour).sum()
            if anchor_total <= 0:
                resolved.skipped.append(story.name)
                continue
            resolved.surfaces[story.name] = surface
        return resolved


def _coerce(kind, value, description: str):
    """Coerce a manifest field, mapping bad values to ManifestError."""
    try:
        return kind(value)
    except (TypeError, ValueError) as error:
        raise ManifestError(f"{description}: {error}") from error


def _story_context(source: str, index: int, name: "str | None" = None) -> str:
    """The error prefix every story-level problem carries: where, which, who."""
    base = f"{source}: story #{index}"
    return f"{base} ({name!r})" if name else base


def _inline_surface(entry: dict, name: str, index: int, source: str) -> DensitySurface:
    context = _story_context(source, index, name)
    for required in ("distances", "times", "values"):
        if required not in entry:
            raise ManifestError(
                f"{context}: inline story is missing the {required!r} field"
            )
    distances = _coerce(
        lambda v: np.asarray(v, dtype=float),
        entry["distances"],
        f"{context}: field 'distances' has non-numeric values",
    )
    times = _coerce(
        lambda v: np.asarray(v, dtype=float),
        entry["times"],
        f"{context}: field 'times' has non-numeric values",
    )
    values = _coerce(
        lambda v: np.asarray(v, dtype=float),
        entry["values"],
        f"{context}: field 'values' has non-numeric values",
    )
    if values.shape != (times.size, distances.size):
        raise ManifestError(
            f"{context}: field 'values' has shape {values.shape}; expected "
            f"(times={times.size}, distances={distances.size})"
        )
    if "group_sizes" in entry:
        group_sizes = _coerce(
            lambda v: np.asarray(v, dtype=float),
            entry["group_sizes"],
            f"{context}: field 'group_sizes' has non-numeric values",
        )
        if group_sizes.shape != (distances.size,):
            raise ManifestError(
                f"{context}: field 'group_sizes' has shape {group_sizes.shape}; "
                f"expected ({distances.size},)"
            )
    else:
        group_sizes = np.ones(distances.size)
    unit = str(entry.get("unit", "percent"))
    if unit not in DENSITY_UNITS:
        raise ManifestError(
            f"{context}: field 'unit' must be one of {DENSITY_UNITS}, got {unit!r}"
        )
    try:
        return DensitySurface(
            distances=distances,
            times=times,
            values=values,
            group_sizes=group_sizes,
            unit=unit,
            metadata={"story": name, "source": "manifest_inline"},
        )
    except ValueError as error:
        # DensitySurface's own validation (e.g. negative densities) keeps
        # the story context too.
        raise ManifestError(f"{context}: {error}") from error


def _validate_model(name, description: str) -> str:
    """Check a manifest model name against the live registry."""
    model = str(name)
    try:
        get_model(model)
    except UnknownModelError as error:
        raise ManifestError(f"{description}: {error}") from error
    return model


def _parse_story(entry, index: int, seen: "set[str]", source: str) -> ManifestStory:
    if isinstance(entry, str):
        entry = {"story": entry}
    if not isinstance(entry, dict):
        raise ManifestError(
            f"{_story_context(source, index)} must be a name or an object, "
            f"got {type(entry).__name__}"
        )
    model = None
    if entry.get("model") is not None:
        model = _validate_model(
            entry["model"],
            f"{_story_context(source, index)} has an invalid 'model'",
        )
    if "story" in entry:
        inline_fields = [f for f in ("distances", "times", "values") if f in entry]
        if inline_fields:
            raise ManifestError(
                f"{_story_context(source, index)} mixes a corpus reference "
                f"('story': {entry['story']!r}) with inline surface fields "
                f"{inline_fields}; use one or the other"
            )
        name = str(entry.get("name", entry["story"]))
        story = ManifestStory(name=name, corpus_story=str(entry["story"]), model=model)
    else:
        if "name" not in entry:
            raise ManifestError(
                f"{_story_context(source, index)}: inline story needs a "
                f"'name' field"
            )
        name = str(entry["name"])
        story = ManifestStory(
            name=name, surface=_inline_surface(entry, name, index, source), model=model
        )
    if name in seen:
        raise ManifestError(
            f"{_story_context(source, index, name)}: duplicate story name "
            f"{name!r} in the manifest"
        )
    seen.add(name)
    return story


def _parse_payload(payload: dict, source: str = "<memory>") -> StoryManifest:
    """Validate a decoded manifest document (the non-deprecated parse path)."""
    if not isinstance(payload, dict):
        raise ManifestError(
            f"{source}: the manifest root must be an object, got "
            f"{type(payload).__name__}"
        )
    metric = str(payload.get("metric", "hops"))
    if metric not in VALID_METRICS:
        raise ManifestError(
            f"{source}: unknown metric {metric!r}; expected one of {VALID_METRICS}"
        )
    hours = payload.get("hours")
    if hours is not None:
        hours = _coerce(int, hours, f"{source}: 'hours' must be an integer")
        if hours < 2:
            raise ManifestError(
                f"{source}: 'hours' must be at least 2 (hour 1 builds phi, "
                f"later hours are the calibration targets), got {hours}"
            )
    model = payload.get("model")
    if model is not None:
        model = _validate_model(model, f"{source}: the manifest's 'model' is invalid")
    corpus = payload.get("corpus")
    if corpus is not None:
        if not isinstance(corpus, dict):
            raise ManifestError(
                f"{source}: 'corpus' must be an object of corpus-builder fields"
            )
        unknown = sorted(set(corpus) - set(CORPUS_FIELD_DEFAULTS))
        if unknown:
            raise ManifestError(
                f"{source}: unknown corpus field(s) {unknown}; expected a "
                f"subset of {sorted(CORPUS_FIELD_DEFAULTS)}"
            )
    store = payload.get("store")
    if store is not None:
        if not isinstance(store, str) or not store:
            raise ManifestError(
                f"{source}: 'store' must be the path of a corpus store, got "
                f"{store!r}"
            )
        if corpus is not None:
            raise ManifestError(
                f"{source}: 'store' and 'corpus' are mutually exclusive: a "
                f"name reference must resolve from exactly one source"
            )
    entries = payload.get("stories")
    if entries is None and store is not None:
        # A bare store manifest selects every story in the store.
        try:
            entries = list(CorpusStore.open(store))
        except (CorpusStoreError, FileNotFoundError, OSError) as error:
            raise ManifestError(
                f"{source}: cannot open the corpus store {store!r}: {error}"
            ) from error
    if entries is None:
        entries = []
    if not isinstance(entries, list):
        raise ManifestError(f"{source}: 'stories' must be a list")
    seen: "set[str]" = set()
    stories = tuple(
        _parse_story(entry, i, seen, source) for i, entry in enumerate(entries)
    )
    manifest = StoryManifest(
        stories=stories,
        metric=metric,
        hours=hours,
        corpus_config=corpus,
        source=source,
        model=model,
        store=store,
    )
    if manifest.needs_corpus and corpus is None:
        referenced = [s.name for s in stories if not s.is_inline]
        raise ManifestError(
            f"{source}: stories {referenced} reference the synthetic corpus "
            f"but the manifest has no 'corpus' (or 'store') block"
        )
    return manifest


def _store_manifest(store: CorpusStore) -> StoryManifest:
    """A manifest covering every story of an already-open store."""
    return StoryManifest(
        stories=tuple(
            ManifestStory(name=name, corpus_story=name) for name in store
        ),
        metric=store.metric,
        hours=store.hours,
        corpus_config=None,
        source=str(store.root),
        model=store.model,
        store=str(store.root),
    )


def open_corpus(path_or_payload, source: "str | None" = None) -> StoryManifest:
    """The single entry point from "something naming stories" to a manifest.

    Accepts, and transparently distinguishes:

    * a decoded manifest **payload** (``dict``) -- inline surfaces, corpus
      refs and/or a ``store`` block;
    * a **manifest JSON file** path;
    * a **corpus store**: its directory, its ``index.json`` path, an index
      file saved under another name, or an already-open
      :class:`~repro.corpus.store.CorpusStore` -- yielding a manifest over
      every store story.

    ``source`` overrides the provenance recorded in error messages
    (defaults to the path, or ``<memory>`` for payloads).  Missing paths
    raise ``FileNotFoundError`` (so CLIs keep their "does not exist"
    handling); everything else invalid raises :class:`ManifestError`.
    """
    if isinstance(path_or_payload, dict):
        return _parse_payload(path_or_payload, source or "<memory>")
    if isinstance(path_or_payload, CorpusStore):
        return _store_manifest(path_or_payload)
    path = Path(str(path_or_payload))
    if CorpusStore.locate_index(path) is not None:
        try:
            return _store_manifest(CorpusStore.open(path))
        except CorpusStoreError as error:
            raise ManifestError(str(error)) from error
    if path.is_dir():
        raise ManifestError(
            f"{path} is a directory but not a corpus store (no "
            f"index.json inside)"
        )
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ManifestError(f"{path} is not valid JSON: {error}") from error
    if isinstance(payload, dict) and payload.get("format") == "repro-corpus-store":
        # A store index saved under a non-standard file name.
        try:
            return _store_manifest(CorpusStore.open(path))
        except CorpusStoreError as error:
            raise ManifestError(str(error)) from error
    return _parse_payload(payload, source or str(path))


# ---------------------------------------------------------------------- #
# Deprecated aliases (the pre-open_corpus API surface)
# ---------------------------------------------------------------------- #
def parse_manifest(payload: dict, source: str = "<memory>") -> StoryManifest:
    """Deprecated alias: use :func:`open_corpus` instead."""
    warnings.warn(
        "parse_manifest() is deprecated; use "
        "repro.service.open_corpus(payload) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _parse_payload(payload, source)


def load_manifest(path: str) -> StoryManifest:
    """Deprecated alias: use :func:`open_corpus` instead."""
    warnings.warn(
        "load_manifest() is deprecated; use repro.service.open_corpus(path) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return open_corpus(path)


def resolve_manifest(
    manifest: StoryManifest,
    corpus_overrides: "dict | None" = None,
    training_times: "Sequence[float] | None" = None,
) -> ResolvedManifest:
    """Deprecated alias: use :meth:`StoryManifest.resolve` instead."""
    warnings.warn(
        "resolve_manifest() is deprecated; use StoryManifest.resolve() "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return manifest.resolve(corpus_overrides, training_times)
