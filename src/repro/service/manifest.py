"""Story manifests: the input format of ``repro serve-batch``.

A manifest is a JSON document naming the stories a service run should score.
Stories come from two sources, freely mixed:

* **corpus stories** reference a representative story of the synthetic
  Digg-like corpus (built once per manifest from the ``corpus`` block);
* **inline stories** carry their observed density surface directly, so a
  manifest can describe thousands of cascades without any simulation.

Example::

    {
      "metric": "hops",
      "hours": 6,
      "model": "dl",
      "corpus": {"users": 2000, "background_stories": 40, "seed": 2009},
      "stories": [
        "s1",
        {"story": "s2", "model": "logistic"},
        {"name": "cascade-17",
         "distances": [1, 2, 3, 4, 5],
         "times": [1, 2, 3, 4, 5, 6],
         "values": [[5.0, 2.0, 2.5, 1.5, 1.0], ...]}
      ]
    }

``metric`` (``hops`` | ``interests``) and ``hours`` (training window length,
>= 2) apply to the whole manifest; both are optional with the CLI defaults.
``model`` selects the prediction model by :mod:`repro.models` registry name
-- manifest-level as the default for every story, per story as an override
-- so one manifest can mix models (the sharder keeps them in separate
shards).  The ``corpus`` block mirrors the corpus flags of the other
subcommands (``users``, ``background_stories``, ``seed``, ``horizon``) and
is only required when at least one corpus story is listed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cascade.density import DensitySurface
from repro.core.errors import UnknownModelError
from repro.models.registry import get_model

VALID_METRICS = ("hops", "interests")

#: Corpus-builder fields used when neither the manifest's ``corpus`` block
#: nor the caller's overrides set them -- the same defaults as the CLI's
#: corpus flags, so a manifest scores identically from the library and from
#: ``repro serve-batch``.  Also the set of keys a ``corpus`` block may use.
CORPUS_FIELD_DEFAULTS = {
    "users": 2000,
    "background_stories": 40,
    "horizon": 50.0,
    "seed": 2009,
}


@dataclass(frozen=True)
class ManifestStory:
    """One story entry: either a corpus reference or an inline surface.

    ``model`` is the story's explicit model override (``None`` falls back
    to the manifest-level default, then to the consumer's default).
    """

    name: str
    corpus_story: "str | None" = None
    surface: "DensitySurface | None" = None
    model: "str | None" = None

    @property
    def is_inline(self) -> bool:
        return self.surface is not None


@dataclass(frozen=True)
class StoryManifest:
    """A parsed manifest, ready to be resolved into density surfaces."""

    stories: tuple[ManifestStory, ...]
    metric: str = "hops"
    hours: "int | None" = None
    corpus_config: "dict | None" = None
    source: str = "<memory>"
    model: "str | None" = None

    @property
    def needs_corpus(self) -> bool:
        """True when at least one story references the synthetic corpus."""
        return any(not story.is_inline for story in self.stories)


class ManifestError(ValueError):
    """Raised when a manifest does not parse or validate."""


def _coerce(kind, value, description: str):
    """Coerce a manifest field, mapping bad values to ManifestError."""
    try:
        return kind(value)
    except (TypeError, ValueError) as error:
        raise ManifestError(f"{description}: {error}") from error


def _inline_surface(entry: dict, name: str) -> DensitySurface:
    for required in ("distances", "times", "values"):
        if required not in entry:
            raise ManifestError(
                f"inline story {name!r} is missing the {required!r} field"
            )
    distances = _coerce(
        lambda v: np.asarray(v, dtype=float),
        entry["distances"],
        f"inline story {name!r} has non-numeric 'distances'",
    )
    times = _coerce(
        lambda v: np.asarray(v, dtype=float),
        entry["times"],
        f"inline story {name!r} has non-numeric 'times'",
    )
    values = _coerce(
        lambda v: np.asarray(v, dtype=float),
        entry["values"],
        f"inline story {name!r} has non-numeric 'values'",
    )
    if values.shape != (times.size, distances.size):
        raise ManifestError(
            f"inline story {name!r} has values of shape {values.shape}; expected "
            f"(times={times.size}, distances={distances.size})"
        )
    return DensitySurface(
        distances=distances,
        times=times,
        values=values,
        group_sizes=np.ones(distances.size),
        metadata={"story": name, "source": "manifest_inline"},
    )


def _validate_model(name, description: str) -> str:
    """Check a manifest model name against the live registry."""
    model = str(name)
    try:
        get_model(model)
    except UnknownModelError as error:
        raise ManifestError(f"{description}: {error}") from error
    return model


def _parse_story(entry, index: int, seen: "set[str]") -> ManifestStory:
    if isinstance(entry, str):
        entry = {"story": entry}
    if not isinstance(entry, dict):
        raise ManifestError(
            f"story #{index} must be a name or an object, got {type(entry).__name__}"
        )
    model = None
    if entry.get("model") is not None:
        model = _validate_model(entry["model"], f"story #{index} has an invalid 'model'")
    if "story" in entry:
        inline_fields = [f for f in ("distances", "times", "values") if f in entry]
        if inline_fields:
            raise ManifestError(
                f"story #{index} mixes a corpus reference ('story': "
                f"{entry['story']!r}) with inline surface fields "
                f"{inline_fields}; use one or the other"
            )
        name = str(entry.get("name", entry["story"]))
        story = ManifestStory(name=name, corpus_story=str(entry["story"]), model=model)
    else:
        if "name" not in entry:
            raise ManifestError(f"inline story #{index} needs a 'name' field")
        name = str(entry["name"])
        story = ManifestStory(
            name=name, surface=_inline_surface(entry, name), model=model
        )
    if name in seen:
        raise ManifestError(f"duplicate story name {name!r} in the manifest")
    seen.add(name)
    return story


def parse_manifest(payload: dict, source: str = "<memory>") -> StoryManifest:
    """Validate a decoded manifest document."""
    if not isinstance(payload, dict):
        raise ManifestError(f"the manifest root must be an object, got {type(payload).__name__}")
    metric = str(payload.get("metric", "hops"))
    if metric not in VALID_METRICS:
        raise ManifestError(
            f"unknown metric {metric!r}; expected one of {VALID_METRICS}"
        )
    hours = payload.get("hours")
    if hours is not None:
        hours = _coerce(int, hours, "'hours' must be an integer")
        if hours < 2:
            raise ManifestError(
                f"'hours' must be at least 2 (hour 1 builds phi, later hours are "
                f"the calibration targets), got {hours}"
            )
    model = payload.get("model")
    if model is not None:
        model = _validate_model(model, "the manifest's 'model' is invalid")
    entries = payload.get("stories", [])
    if not isinstance(entries, list):
        raise ManifestError("'stories' must be a list")
    seen: "set[str]" = set()
    stories = tuple(_parse_story(entry, i, seen) for i, entry in enumerate(entries))
    corpus = payload.get("corpus")
    if corpus is not None:
        if not isinstance(corpus, dict):
            raise ManifestError("'corpus' must be an object of corpus-builder fields")
        unknown = sorted(set(corpus) - set(CORPUS_FIELD_DEFAULTS))
        if unknown:
            raise ManifestError(
                f"unknown corpus field(s) {unknown}; expected a subset of "
                f"{sorted(CORPUS_FIELD_DEFAULTS)}"
            )
    manifest = StoryManifest(
        stories=stories,
        metric=metric,
        hours=hours,
        corpus_config=corpus,
        source=source,
        model=model,
    )
    if manifest.needs_corpus and corpus is None:
        referenced = [s.name for s in stories if not s.is_inline]
        raise ManifestError(
            f"stories {referenced} reference the synthetic corpus but the "
            f"manifest has no 'corpus' block"
        )
    return manifest


def load_manifest(path: str) -> StoryManifest:
    """Read and validate a manifest JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ManifestError(f"{path} is not valid JSON: {error}") from error
    return parse_manifest(payload, source=path)


@dataclass
class ResolvedManifest:
    """Manifest stories resolved into observed density surfaces.

    ``skipped`` names stories whose first observed hour is empty (no
    influenced users at any distance), which cannot anchor phi and are
    excluded up front -- mirroring ``repro predict-batch``.

    ``models`` records each story's *explicit* model override (story-level
    ``"model"``, skipped stories included); stories without one are absent.
    Use :meth:`model_for` for the effective name including the
    manifest-level default and a caller-side override.
    """

    surfaces: "dict[str, DensitySurface]" = field(default_factory=dict)
    skipped: "list[str]" = field(default_factory=list)
    models: "dict[str, str]" = field(default_factory=dict)
    default_model: "str | None" = None

    def model_for(self, name: str, override: "str | None" = None) -> "str | None":
        """Effective model of one story: story-level, then override, then manifest."""
        explicit = self.models.get(name)
        if explicit is not None:
            return explicit
        if override is not None:
            return override
        return self.default_model


def resolve_manifest(
    manifest: StoryManifest,
    corpus_overrides: "dict | None" = None,
    training_times: "Sequence[float] | None" = None,
) -> ResolvedManifest:
    """Materialise every manifest story as an observed density surface.

    ``corpus_overrides`` supplies corpus-builder fields (users, seed, ...)
    that take precedence over the manifest's ``corpus`` block -- the CLI
    passes explicitly given corpus flags here, mirroring how ``--hours``
    overrides the manifest's ``hours``.  Unset fields fall back to
    :data:`CORPUS_FIELD_DEFAULTS`.  ``training_times`` determines which hour
    must be non-empty (default: each surface's first observed hour).
    """
    corpus = None
    if manifest.needs_corpus:
        from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset

        fields = dict(CORPUS_FIELD_DEFAULTS)
        fields.update(manifest.corpus_config or {})
        fields.update(corpus_overrides or {})
        try:
            config = SyntheticDiggConfig(
                num_users=_coerce(
                    int, fields["users"], "corpus 'users' must be an integer"
                ),
                num_background_stories=_coerce(
                    int,
                    fields["background_stories"],
                    "corpus 'background_stories' must be an integer",
                ),
                horizon_hours=_coerce(
                    float, fields["horizon"], "corpus 'horizon' must be a number"
                ),
                seed=_coerce(int, fields["seed"], "corpus 'seed' must be an integer"),
            )
        except ValueError as error:
            # SyntheticDiggConfig's own bounds checks (e.g. >= 100 users)
            # become manifest errors too; _coerce already raises ManifestError,
            # a ValueError subclass, which re-raises unchanged here.
            if isinstance(error, ManifestError):
                raise
            raise ManifestError(f"invalid corpus block: {error}") from error
        corpus = build_synthetic_digg_dataset(config)

    resolved = ResolvedManifest(default_model=manifest.model)
    window = sorted(float(t) for t in training_times) if training_times else None
    anchor = window[0] if window else None
    for story in manifest.stories:
        if story.is_inline:
            surface = story.surface
        else:
            assert corpus is not None
            try:
                if manifest.metric == "hops":
                    surface = corpus.hop_density_surface(story.corpus_story)
                else:
                    surface = corpus.interest_density_surface(story.corpus_story)
            except KeyError as error:
                raise ManifestError(
                    f"story {story.name!r} references unknown corpus story "
                    f"{story.corpus_story!r}; the corpus has {corpus.story_names}"
                ) from error
        first_hour = anchor if anchor is not None else float(surface.times[0])
        if window is not None:
            # Validate the whole training window up front: a missing later
            # hour would otherwise surface as a cryptic per-job KeyError from
            # deep inside calibration.
            missing = [
                hour for hour in window if not np.any(np.isclose(surface.times, hour))
            ]
            if missing:
                raise ManifestError(
                    f"story {story.name!r} has no observation at training "
                    f"hour(s) {missing}; its times span "
                    f"[{float(surface.times[0]):g}, {float(surface.times[-1]):g}]"
                )
        if story.model is not None:
            # Recorded for skipped stories too, so consumers can attribute
            # every output line (including "skipped") to its model.
            resolved.models[story.name] = story.model
        if surface.profile(first_hour).sum() <= 0:
            resolved.skipped.append(story.name)
            continue
        resolved.surfaces[story.name] = surface
    return resolved
