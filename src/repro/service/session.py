"""Daemon session layer: framing, request routing and per-client quotas.

One :class:`ClientSession` serves one :class:`~repro.service.transport.Connection`
for its whole lifetime: it owns the JSON-lines read loop, parses and
validates each request, routes the ``submit`` / ``status`` / ``stats`` /
``metrics`` / ``trace`` / ``worker`` / ``ping`` / ``shutdown`` ops, and
emits ``error`` events for
everything malformed -- never a dead daemon.  Domain work (manifest
resolution, job creation, result streaming) stays on the host daemon
behind the narrow :class:`SessionHost` protocol, so the protocol surface
and the job lifecycle evolve independently.

Sessions also enforce the per-client :class:`ClientQuota`: a shared daemon
queue is only fair if one greedy client cannot monopolise it, so a client
over its in-flight-job or queued-story budget is rejected with a typed
``error`` event carrying the structured
:meth:`~repro.core.errors.QuotaExceededError.payload` (``error_type:
"quota_exceeded"`` plus the tripped limit), and every rejection is counted
in the :class:`~repro.service.telemetry.MetricsRegistry`
(``daemon.quota_rejections``, labelled by which limit tripped).  A
"client" is one connection: reconnecting resets the budget, which is the
standard socket-server notion of fairness and needs no authentication
layer.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Protocol

from repro.core.errors import QuotaExceededError
from repro.service.telemetry import MetricsRegistry
from repro.service.transport import Connection


@dataclass(frozen=True)
class ClientQuota:
    """Per-client bounds on the shared daemon queue.

    Attributes
    ----------
    max_jobs:
        Maximum jobs a client may have in flight (submitted and not yet
        completed) at once; ``None`` means unlimited.
    max_stories:
        Maximum stories queued or running across a client's in-flight
        jobs; a submit whose manifest would push the client past it is
        rejected whole.  ``None`` means unlimited.
    """

    max_jobs: "int | None" = None
    max_stories: "int | None" = None

    def __post_init__(self) -> None:
        for name, value in (("max_jobs", self.max_jobs), ("max_stories", self.max_stories)):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def unlimited(self) -> bool:
        return self.max_jobs is None and self.max_stories is None


class TrackedJob(Protocol):
    """What a session needs to know about a job it submitted (quota math)."""

    @property
    def active(self) -> bool: ...

    @property
    def stories_pending(self) -> int: ...


class SessionHost(Protocol):
    """The daemon surface a session routes requests into."""

    @property
    def stop_event(self) -> asyncio.Event: ...

    async def handle_submit(self, session: "ClientSession", message: dict) -> None: ...

    def job_summaries(self) -> "list[dict]": ...

    def job_summary(self, job_id: str) -> "dict | None": ...

    def stats_payload(self) -> dict: ...

    def metrics_text(self) -> str: ...

    def trace_payload(self, job_id: str) -> "dict | None": ...

    async def handle_worker(self, session: "ClientSession", message: dict) -> None: ...

    def begin_shutdown(self, drain: bool) -> None: ...


#: The ops a request may carry, in the order the error message lists them.
KNOWN_OPS = (
    "submit",
    "status",
    "stats",
    "metrics",
    "trace",
    "worker",
    "ping",
    "shutdown",
)


class ClientSession:
    """One connected peer: read loop, request routing, quota state."""

    def __init__(
        self,
        host: SessionHost,
        connection: Connection,
        metrics: MetricsRegistry,
        quota: "ClientQuota | None" = None,
    ) -> None:
        self._host = host
        self.connection = connection
        self._metrics = metrics
        self._quota = quota
        self._jobs: "list[TrackedJob]" = []
        #: ``(wall_start, seconds)`` of the last request's parse+validation,
        #: read by the daemon to record a retroactive ``session.parse`` span
        #: under the job it accepts.
        self.last_parse: "tuple[float, float] | None" = None

    # ------------------------------------------------------------------ #
    # Quota accounting
    # ------------------------------------------------------------------ #
    def track_job(self, job: TrackedJob) -> None:
        """Attribute a submitted job to this client for quota accounting."""
        self._jobs.append(job)

    def active_jobs(self) -> int:
        return sum(1 for job in self._jobs if job.active)

    def active_stories(self) -> int:
        return sum(job.stories_pending for job in self._jobs if job.active)

    def check_job_quota(self) -> None:
        """Raises :class:`QuotaExceededError` when one more job is too many."""
        if self._quota is None or self._quota.max_jobs is None:
            return
        in_flight = self.active_jobs()
        if in_flight + 1 > self._quota.max_jobs:
            raise QuotaExceededError(
                kind="jobs",
                limit=self._quota.max_jobs,
                in_flight=in_flight,
                requested=1,
            )

    def check_story_quota(self, requested: int) -> None:
        """Raises when ``requested`` more stories would bust the budget."""
        if self._quota is None or self._quota.max_stories is None:
            return
        in_flight = self.active_stories()
        if in_flight + requested > self._quota.max_stories:
            raise QuotaExceededError(
                kind="stories",
                limit=self._quota.max_stories,
                in_flight=in_flight,
                requested=requested,
            )

    # ------------------------------------------------------------------ #
    # Read loop and routing
    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        """Serve this peer until EOF, hangup or daemon shutdown.

        The loop must exit the moment shutdown is requested, even while
        parked in readline() on an idle connection that the peer keeps
        open -- otherwise the stdio transport (and Server.wait_closed on
        Python >= 3.12, which awaits every live handler) would hang until
        the peer happened to hang up.
        """
        stop = self._host.stop_event
        stop_wait = asyncio.ensure_future(stop.wait())
        try:
            while not stop.is_set():
                read = asyncio.ensure_future(self.connection.reader.readline())
                await asyncio.wait(
                    {read, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    read.cancel()
                    await asyncio.gather(read, return_exceptions=True)
                    return
                try:
                    line = read.result()
                except (ConnectionResetError, BrokenPipeError):
                    return
                if not line:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await self.dispatch(text)
        finally:
            stop_wait.cancel()
            await asyncio.gather(stop_wait, return_exceptions=True)

    async def dispatch(self, text: str) -> None:
        """Parse one request line and route its op."""
        self._metrics.counter("daemon.requests").inc()
        wall_start = time.time()
        parse_start = time.perf_counter()
        try:
            message = json.loads(text)
        except json.JSONDecodeError as error:
            await self.error(f"invalid JSON: {error}")
            return
        if not isinstance(message, dict):
            await self.error(
                f"a request must be an object, got {type(message).__name__}"
            )
            return
        op = message.get("op")
        self.last_parse = (wall_start, time.perf_counter() - parse_start)
        if op == "submit":
            await self._host.handle_submit(self, message)
        elif op == "status":
            await self._handle_status(message)
        elif op == "stats":
            await self.connection.send(self._host.stats_payload())
        elif op == "metrics":
            # Prometheus text exposition of the shared telemetry registry;
            # `repro daemon-stats --prometheus` prints it verbatim.
            await self.connection.send(
                {"event": "metrics", "text": self._host.metrics_text()}
            )
        elif op == "trace":
            await self._handle_trace(message)
        elif op == "worker":
            # Cluster mode: a router daemon ships one pickled ShardPayload
            # for this daemon to solve and return as a ShardSolveReport.
            await self._host.handle_worker(self, message)
        elif op == "ping":
            await self.connection.send({"event": "pong"})
        elif op == "shutdown":
            drain = bool(message.get("drain", True))
            # Bar new submissions and record the drain policy before the
            # ack goes out, then wake every read loop.
            self._host.begin_shutdown(drain)
            await self.connection.send({"event": "shutdown", "drain": drain})
            self._host.stop_event.set()
        else:
            ops = ", ".join(f"'{known}'" for known in KNOWN_OPS)
            await self.error(f"unknown op {op!r}; expected one of {ops}")

    async def _handle_status(self, message: dict) -> None:
        job_id = message.get("id")
        if job_id is None:
            await self.connection.send(
                {"event": "status", "jobs": self._host.job_summaries()}
            )
            return
        summary = self._host.job_summary(str(job_id))
        if summary is None:
            await self.error(f"unknown job {job_id!r}", job_id=str(job_id))
            return
        await self.connection.send({"event": "status", **summary})

    async def _handle_trace(self, message: dict) -> None:
        job_id = message.get("id")
        if job_id is None:
            await self.error("a trace request needs an 'id' field")
            return
        payload = self._host.trace_payload(str(job_id))
        if payload is None:
            await self.error(f"unknown job {job_id!r}", job_id=str(job_id))
            return
        await self.connection.send(payload)

    async def error(
        self,
        message: str,
        job_id: "str | None" = None,
        extra: "dict | None" = None,
    ) -> None:
        """Emit an ``error`` event (optionally with typed extra fields)."""
        self._metrics.counter("daemon.errors").inc()
        payload: dict = {"event": "error", "error": message}
        if job_id is not None:
            payload["id"] = job_id
        if extra:
            payload.update(extra)
        await self.connection.send(payload)

    async def reject_quota(
        self, error: QuotaExceededError, job_id: "str | None" = None
    ) -> None:
        """Emit the typed quota-rejection error event and count it."""
        self._metrics.counter("daemon.quota_rejections").inc()
        self._metrics.counter(
            "daemon.quota_rejections", labels={"kind": error.kind}
        ).inc()
        await self.error(str(error), job_id=job_id, extra=error.payload())
