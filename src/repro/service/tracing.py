"""Dependency-free tracing for the service stack.

One job flows through five layers (CLI -> transport/session -> daemon job
lifecycle -> service shard queue -> thread/process executor -> solver), and
aggregate metrics cannot say *where* a slow job spent its time.  This module
provides the correlation substrate:

* :class:`TraceContext` -- an immutable ``(trace_id, span_id)`` pair that is
  cheap to copy, picklable, and JSON-serializable, so it can ride inside
  ``submit`` requests, job records, :class:`~repro.service.execution.ShardPayload`
  (across the process-pool pickle boundary) and the journal.
* :class:`Span` -- a named timed region with wall-clock ``start``, a
  monotonic-clock ``duration``, attributes, and a parent link.
* :class:`Tracer` -- thread-safe in-memory ring buffer of finished span
  records, with optional JSON-lines export (``--trace-dir``).
* :class:`NoOpTracer` / :data:`NOOP_TRACER` -- the zero-cost default: every
  instrumentation site first checks ``tracer.enabled`` (a plain attribute
  read) and otherwise receives the shared :data:`NULL_SPAN` whose methods do
  nothing, so a service constructed without a tracer pays only an attribute
  lookup per site.

Span *records* (the unit stored, exported, and shipped back from process
workers) are plain dicts::

    {"name": ..., "trace_id": ..., "span_id": ..., "parent_id": ...,
     "start": <epoch seconds>, "duration": <seconds>, "attributes": {...}}

The analysis helpers at the bottom (:func:`span_tree`, :func:`critical_path`,
:func:`phase_totals`, :func:`validate_trace`, :func:`render_trace`,
:func:`chrome_trace`, :func:`speedscope_profile`) power the ``repro trace``
CLI and the daemon-smoke well-formedness check; they operate on record lists
so they work identically on live daemon responses and on exported
``spans.jsonl`` files.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, IO, Mapping, Sequence, Union

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "NoOpTracer",
    "NOOP_TRACER",
    "NULL_SPAN",
    "SPANS_FILENAME",
    "span_tree",
    "SpanNode",
    "trace_for_job",
    "validate_trace",
    "phase_totals",
    "worker_attribution",
    "critical_path",
    "render_trace",
    "chrome_trace",
    "speedscope_profile",
    "load_span_file",
]

#: File name used for JSON-lines span export inside ``--trace-dir``.
SPANS_FILENAME = "spans.jsonl"


def _new_id() -> str:
    """A 64-bit random hex id -- unique enough for per-process correlation."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of a span: which trace, which parent."""

    trace_id: str
    span_id: str

    def to_wire(self) -> "dict[str, str]":
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: object) -> "TraceContext | None":
        if not isinstance(data, Mapping):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


ParentLike = Union[TraceContext, "Span", None]


def _parent_context(parent: ParentLike) -> "TraceContext | None":
    if parent is None:
        return None
    if isinstance(parent, TraceContext):
        return parent
    return parent.context


class Span:
    """A timed region.  Use as a context manager or call :meth:`finish`.

    ``start`` is wall-clock epoch seconds (for cross-process alignment);
    ``duration`` is measured on the monotonic clock so NTP steps can never
    produce negative phases.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attributes",
        "_t0",
        "_tracer",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer | None",
        name: str,
        *,
        trace_id: "str | None" = None,
        parent_id: "str | None" = None,
        attributes: "dict[str, Any] | None" = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.duration: "float | None" = None
        self.attributes: "dict[str, Any]" = dict(attributes) if attributes else {}
        self._t0 = time.perf_counter()
        self._tracer = tracer
        self._finished = False

    @property
    def context(self) -> TraceContext:
        """This span's identity, for parenting children (picklable)."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish(self, duration: "float | None" = None) -> None:
        """Close the span (idempotent) and hand the record to the tracer."""
        if self._finished:
            return
        self._finished = True
        self.duration = duration if duration is not None else time.perf_counter() - self._t0
        if self._tracer is not None:
            self._tracer._store(self.to_record())

    def to_record(self) -> "dict[str, Any]":
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration if self.duration is not None else 0.0,
            "attributes": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id})"


class Tracer:
    """Thread-safe ring buffer of finished spans with optional JSONL export."""

    enabled = True

    def __init__(
        self,
        capacity: int = 4096,
        export_dir: "str | Path | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self._lock = threading.Lock()
        self._records: "deque[dict[str, Any]]" = deque(maxlen=capacity)
        self._export_path: "Path | None" = None
        self._export_handle: "IO[str] | None" = None
        if export_dir is not None:
            directory = Path(export_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self._export_path = directory / SPANS_FILENAME

    @property
    def export_path(self) -> "Path | None":
        return self._export_path

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        attributes: "dict[str, Any] | None" = None,
    ) -> Span:
        """Open a live span; close it via ``with`` or :meth:`Span.finish`."""
        ctx = _parent_context(parent)
        return Span(
            self,
            name,
            trace_id=ctx.trace_id if ctx is not None else None,
            parent_id=ctx.span_id if ctx is not None else None,
            attributes=attributes,
        )

    def record_span(
        self,
        name: str,
        *,
        parent: ParentLike = None,
        start: float,
        duration: float,
        attributes: "dict[str, Any] | None" = None,
    ) -> TraceContext:
        """Record a span retroactively from an already-measured interval.

        Used for phases whose boundaries are only known after the fact
        (queue wait is measured at dequeue time, request parse before any
        tracer decision was possible).
        """
        ctx = _parent_context(parent)
        trace_id = ctx.trace_id if ctx is not None else _new_id()
        span_id = _new_id()
        self._store(
            {
                "name": name,
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_id": ctx.span_id if ctx is not None else None,
                "start": start,
                "duration": float(duration),
                "attributes": dict(attributes) if attributes else {},
            }
        )
        return TraceContext(trace_id=trace_id, span_id=span_id)

    def ingest(self, records: "Sequence[Mapping[str, Any]]") -> None:
        """Adopt foreign span records (e.g. shipped back from a worker)."""
        for record in records:
            if isinstance(record, Mapping) and "span_id" in record and "name" in record:
                self._store(dict(record))

    def spans(self, trace_id: "str | None" = None) -> "list[dict[str, Any]]":
        """Snapshot of buffered records, optionally filtered to one trace."""
        with self._lock:
            snapshot = list(self._records)
        if trace_id is None:
            return snapshot
        return [r for r in snapshot if r.get("trace_id") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def close(self) -> None:
        with self._lock:
            if self._export_handle is not None:
                self._export_handle.close()
                self._export_handle = None

    def _store(self, record: "dict[str, Any]") -> None:
        with self._lock:
            self._records.append(record)
            if self._export_path is not None:
                if self._export_handle is None:
                    self._export_handle = open(self._export_path, "a", encoding="utf-8")
                self._export_handle.write(json.dumps(record, default=str) + "\n")
                self._export_handle.flush()


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NoOpTracer`."""

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    start = 0.0
    duration = 0.0
    attributes: "dict[str, Any]" = {}

    @property
    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def finish(self, duration: "float | None" = None) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class NoOpTracer:
    """The zero-cost default tracer: every operation is a constant no-op."""

    enabled = False
    export_path = None

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        attributes: "dict[str, Any] | None" = None,
    ) -> _NullSpan:
        return NULL_SPAN

    def record_span(
        self,
        name: str,
        *,
        parent: ParentLike = None,
        start: float,
        duration: float,
        attributes: "dict[str, Any] | None" = None,
    ) -> "TraceContext | None":
        return _parent_context(parent)

    def ingest(self, records: "Sequence[Mapping[str, Any]]") -> None:
        return None

    def spans(self, trace_id: "str | None" = None) -> "list[dict[str, Any]]":
        return []

    def clear(self) -> None:
        return None

    def close(self) -> None:
        return None


NOOP_TRACER = NoOpTracer()

TracerLike = Union[Tracer, NoOpTracer]


# ---------------------------------------------------------------------------
# Trace analysis: tree reconstruction, validation, timing, exports.
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed node of a span tree."""

    record: "dict[str, Any]"
    children: "list[SpanNode]"

    @property
    def name(self) -> str:
        return str(self.record.get("name", ""))

    @property
    def span_id(self) -> str:
        return str(self.record.get("span_id", ""))

    @property
    def start(self) -> float:
        return float(self.record.get("start", 0.0))

    @property
    def duration(self) -> float:
        return float(self.record.get("duration", 0.0))

    @property
    def end(self) -> float:
        return self.start + self.duration


def _dedupe(records: "Sequence[Mapping[str, Any]]") -> "list[dict[str, Any]]":
    """Keep the last record per span_id (re-exported spans win)."""
    by_id: "dict[str, dict[str, Any]]" = {}
    for record in records:
        span_id = record.get("span_id")
        if isinstance(span_id, str):
            by_id[span_id] = dict(record)
    return list(by_id.values())


def span_tree(
    records: "Sequence[Mapping[str, Any]]",
    trace_id: "str | None" = None,
) -> "list[SpanNode]":
    """Reconstruct the span forest for one trace (or all records).

    Returns the list of roots: spans with no parent, or whose parent is not
    present in ``records`` (orphans -- :func:`validate_trace` flags those).
    Children are sorted by start time.
    """
    selected = [
        r
        for r in _dedupe(records)
        if trace_id is None or r.get("trace_id") == trace_id
    ]
    nodes = {str(r["span_id"]): SpanNode(record=r, children=[]) for r in selected}
    roots: "list[SpanNode]" = []
    for node in nodes.values():
        parent_id = node.record.get("parent_id")
        parent = nodes.get(parent_id) if isinstance(parent_id, str) else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.start)
    roots.sort(key=lambda node: node.start)
    return roots


def trace_for_job(
    records: "Sequence[Mapping[str, Any]]", job_id: str
) -> "str | None":
    """Find the trace id of a daemon job from its root ``job`` span."""
    for record in records:
        attributes = record.get("attributes")
        if (
            record.get("name") == "job"
            and isinstance(attributes, Mapping)
            and attributes.get("job") == job_id
        ):
            trace_id = record.get("trace_id")
            if isinstance(trace_id, str):
                return trace_id
    return None


def validate_trace(
    records: "Sequence[Mapping[str, Any]]", trace_id: str
) -> "list[str]":
    """Well-formedness problems of one trace; empty list means OK.

    Checks: exactly one root, no orphan spans (parent id referenced but
    missing from the record set), and no negative durations.
    """
    selected = [r for r in _dedupe(records) if r.get("trace_id") == trace_id]
    problems: "list[str]" = []
    if not selected:
        return [f"trace {trace_id}: no spans"]
    ids = {r.get("span_id") for r in selected}
    roots = [r for r in selected if r.get("parent_id") is None]
    orphans = [
        r
        for r in selected
        if r.get("parent_id") is not None and r.get("parent_id") not in ids
    ]
    if len(roots) != 1:
        names = sorted(str(r.get("name")) for r in roots)
        problems.append(f"expected exactly 1 root span, found {len(roots)} ({names})")
    for record in orphans:
        problems.append(
            f"orphan span {record.get('name')} ({record.get('span_id')}): "
            f"parent {record.get('parent_id')} not in trace"
        )
    for record in selected:
        duration = record.get("duration")
        if not isinstance(duration, (int, float)) or duration < 0:
            problems.append(
                f"span {record.get('name')} ({record.get('span_id')}): "
                f"bad duration {duration!r}"
            )
    return problems


def phase_totals(
    records: "Sequence[Mapping[str, Any]]", trace_id: "str | None" = None
) -> "dict[str, float]":
    """Total seconds per span name (one trace or all), sorted descending."""
    totals: "dict[str, float]" = {}
    for record in _dedupe(records):
        if trace_id is not None and record.get("trace_id") != trace_id:
            continue
        name = str(record.get("name", ""))
        duration = record.get("duration")
        if isinstance(duration, (int, float)):
            totals[name] = totals.get(name, 0.0) + float(duration)
    return dict(sorted(totals.items(), key=lambda item: -item[1]))


def worker_attribution(
    records: "Sequence[Mapping[str, Any]]", trace_id: "str | None" = None
) -> "dict[str, int]":
    """Span count per ``worker`` attribute (one trace or all), name-sorted.

    The fleet's answer to "which worker did what": thread/process workers
    label their shard spans with thread or process names, and the cluster
    backend labels them with the worker daemon's address -- an empty
    result for a cluster-executed job means worker spans never made it
    back, which is exactly what ``repro trace --check`` guards in the CI
    ``cluster-smoke`` job.
    """
    counts: "dict[str, int]" = {}
    for record in _dedupe(records):
        if trace_id is not None and record.get("trace_id") != trace_id:
            continue
        attributes = record.get("attributes")
        if not isinstance(attributes, Mapping):
            continue
        worker = attributes.get("worker")
        if worker is None:
            continue
        counts[str(worker)] = counts.get(str(worker), 0) + 1
    return dict(sorted(counts.items()))


def _subtree_weight(node: SpanNode) -> float:
    return node.duration + sum(_subtree_weight(child) for child in node.children)


def critical_path(root: SpanNode) -> "list[SpanNode]":
    """Chain from the root to the leaf that finishes last in each subtree.

    The classic longest-pole walk: at every level descend into the child
    with the latest end time, which is the child actually holding the
    parent's completion open.  Children whose ends are indistinguishable
    (within 0.1% of the parent's duration -- e.g. four shard-mates all
    completed by the same solve) tie-break toward the heaviest subtree, so
    the walk descends into the story that actually carries the shard spans.
    """
    path = [root]
    node = root
    while node.children:
        latest = max(child.end for child in node.children)
        epsilon = max(node.duration * 1e-3, 1e-4)
        candidates = [c for c in node.children if latest - c.end <= epsilon]
        node = max(candidates, key=_subtree_weight)
        path.append(node)
    return path


_INTERESTING_ATTRS = (
    "story",
    "stories",
    "shard",
    "model",
    "worker",
    "attempt",
    "retry_of",
    "status",
    "cache_hits",
    "cache_misses",
    "error",
)


def _format_node(node: SpanNode) -> str:
    attributes = node.record.get("attributes")
    parts = [f"{node.name}", f"{node.duration * 1000.0:.1f}ms"]
    if isinstance(attributes, Mapping):
        for key in _INTERESTING_ATTRS:
            if key in attributes:
                parts.append(f"{key}={attributes[key]}")
    return "  ".join(parts)


def render_trace(
    records: "Sequence[Mapping[str, Any]]", trace_id: str
) -> str:
    """Human-readable span tree plus critical path for one trace."""
    roots = span_tree(records, trace_id)
    if not roots:
        return f"trace {trace_id}: no spans"
    lines: "list[str]" = [f"trace {trace_id}"]

    def walk(node: SpanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_format_node(node))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + _format_node(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(node.children):
            walk(child, child_prefix, index == len(node.children) - 1, False)

    for root in roots:
        walk(root, "", True, True)

    main = max(roots, key=lambda node: node.duration)
    path = critical_path(main)
    total = main.duration if main.duration > 0 else 1.0
    lines.append("")
    lines.append("critical path (self = time not accounted to the next step):")
    for index, node in enumerate(path):
        on_path_child = path[index + 1] if index + 1 < len(path) else None
        self_seconds = node.duration - (
            on_path_child.duration if on_path_child is not None else 0.0
        )
        lines.append(
            f"  {node.duration * 1000.0:9.1f}ms  "
            f"self {max(self_seconds, 0.0) * 1000.0:8.1f}ms  {node.name}"
        )
    # The acceptance-criterion view: the critical story's direct children
    # are its sequential phases (queue wait, shard solve, result emission);
    # their sum should track the job's wall-clock closely.
    base = next((n for n in path if n.name == "story"), main)
    phase_sum = sum(child.duration for child in base.children)
    lines.append(
        f"  sequential phases under '{base.name}' cover {phase_sum:.3f}s "
        f"of {main.duration:.3f}s wall-clock ({100.0 * phase_sum / total:.0f}%)"
    )
    return "\n".join(lines)


def _lane(record: "Mapping[str, Any]") -> str:
    attributes = record.get("attributes")
    if isinstance(attributes, Mapping):
        worker = attributes.get("worker")
        if isinstance(worker, str) and worker:
            return worker
    return "service"


def chrome_trace(
    records: "Sequence[Mapping[str, Any]]", trace_id: "str | None" = None
) -> "dict[str, Any]":
    """Chrome trace-event JSON (load via chrome://tracing or Perfetto)."""
    selected = [
        r
        for r in _dedupe(records)
        if trace_id is None or r.get("trace_id") == trace_id
    ]
    if not selected:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(float(r.get("start", 0.0)) for r in selected)
    lanes = sorted({_lane(r) for r in selected})
    tid_of = {lane: index + 1 for index, lane in enumerate(lanes)}
    events: "list[dict[str, Any]]" = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in tid_of.items()
    ]
    for record in selected:
        events.append(
            {
                "name": str(record.get("name", "")),
                "ph": "X",
                "pid": 1,
                "tid": tid_of[_lane(record)],
                "ts": (float(record.get("start", 0.0)) - t0) * 1e6,
                "dur": float(record.get("duration", 0.0)) * 1e6,
                "args": dict(record.get("attributes") or {}),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def speedscope_profile(
    records: "Sequence[Mapping[str, Any]]", trace_id: str
) -> "dict[str, Any]":
    """Speedscope ``evented`` profile (https://speedscope.app) for one trace.

    Child intervals are clamped into their parent and opened/closed in DFS
    order so the event stream is always properly nested, as the format
    requires, even when wall-clock starts from different processes disagree
    by a few milliseconds.
    """
    roots = span_tree(records, trace_id)
    frames: "list[dict[str, str]]" = []
    frame_index: "dict[str, int]" = {}

    def frame_of(name: str) -> int:
        if name not in frame_index:
            frame_index[name] = len(frames)
            frames.append({"name": name})
        return frame_index[name]

    events: "list[dict[str, Any]]" = []
    if not roots:
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": []},
            "profiles": [],
        }
    t0 = min(node.start for node in roots)
    end_value = max(node.end for node in roots) - t0

    def emit(node: SpanNode, lo: float, hi: float, cursor: float) -> float:
        start = min(max(node.start - t0, lo, cursor), hi)
        end = min(max(node.end - t0, start), hi)
        frame = frame_of(node.name)
        events.append({"type": "O", "frame": frame, "at": start})
        inner = start
        for child in node.children:
            inner = emit(child, start, end, inner)
        events.append({"type": "C", "frame": frame, "at": end})
        return end

    cursor = 0.0
    for root in roots:
        cursor = emit(root, 0.0, end_value, cursor)

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": f"trace {trace_id}",
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": end_value,
                "events": events,
            }
        ],
    }


def load_span_file(path: "str | Path") -> "list[dict[str, Any]]":
    """Read a ``spans.jsonl`` export, tolerating a torn final line."""
    records: "list[dict[str, Any]]" = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except FileNotFoundError:
        return []
    return records
