"""Structured JSON logging for the service layer.

The daemon emits one JSON object per log line on the ``repro.service``
logger -- one record per job state change, always carrying ``job_id`` and
``trace_id`` so log lines, metrics and spans correlate.  Nothing is emitted
unless a handler is attached (``repro daemon --log-level`` installs one),
so library users who never configure logging pay only the stdlib's
disabled-logger fast path.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, IO

__all__ = [
    "SERVICE_LOGGER_NAME",
    "JsonLineFormatter",
    "service_logger",
    "configure_service_logging",
    "log_job_event",
]

#: The logger every service-layer component logs through.
SERVICE_LOGGER_NAME = "repro.service"

#: ``--log-level`` choices, mapped to stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonLineFormatter(logging.Formatter):
    """Render each log record as a single JSON object.

    The event name is the log message; structured fields ride in the
    record's ``fields`` attribute (set via ``extra=``) and are merged into
    the top level so consumers can filter on ``job_id`` / ``trace_id``
    directly.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: "dict[str, Any]" = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def service_logger() -> logging.Logger:
    return logging.getLogger(SERVICE_LOGGER_NAME)


def configure_service_logging(
    level: str = "info", stream: "IO[str] | None" = None
) -> logging.Logger:
    """Attach a JSON-lines handler to the service logger (idempotent).

    Returns the configured logger.  ``level`` is one of :data:`LOG_LEVELS`.
    """
    try:
        resolved = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LOG_LEVELS)}"
        ) from None
    logger = service_logger()
    logger.setLevel(resolved)
    logger.propagate = False
    target = stream if stream is not None else sys.stderr
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler) and handler.stream is target:
            handler.setLevel(resolved)
            break
    else:
        handler = logging.StreamHandler(target)
        handler.setLevel(resolved)
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
    return logger


def log_job_event(
    logger: logging.Logger,
    event: str,
    *,
    job_id: str,
    trace_id: "str | None" = None,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured record for a job state change."""
    if not logger.isEnabledFor(level):
        return
    payload: "dict[str, Any]" = {"job_id": job_id, "trace_id": trace_id}
    payload.update(fields)
    logger.log(level, event, extra={"fields": payload})
