"""Daemon transport layer: addresses, listeners and client connections.

The daemon used to hard-wire its two transports (stdin/stdout and a Unix
socket) into :mod:`repro.service.daemon`; this module is the carved-out
transport substrate, so new transports -- TCP today, the cluster mode's
router/worker links tomorrow -- plug in without touching protocol or job
lifecycle code:

* :class:`Address` / :func:`parse_address` -- the textual address grammar
  shared by ``repro daemon --listen`` and ``repro submit --connect``:
  ``unix:/path/to.sock``, ``tcp:HOST:PORT``, ``stdio``, or a bare path
  (treated as a Unix socket path, which is what every pre-transport
  ``--socket`` flag passed).
* :class:`Connection` -- one JSON-lines peer with a serialized writer, so
  concurrent job streamers sharing a connection never interleave within a
  line.
* :class:`Listener` -- the server side: ``start(handler)`` accepts
  connections and invokes the handler per peer; :class:`StdioListener`,
  :class:`UnixListener` and :class:`TcpListener` implement it.
* a **transport registry** mirroring the solver/model/executor registries:
  :func:`register_transport` / :func:`get_transport` /
  :func:`available_transports`, with :func:`create_listener` and
  :func:`open_client_connection` dispatching on an address's scheme.

The Unix listener probes an existing socket file with a connect before
binding: a *live* daemon answers and the listener raises
:class:`~repro.core.errors.AddressInUseError` instead of clobbering it; a
stale file from a crashed daemon refuses the probe and is reclaimed.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.core.errors import AddressInUseError, UnknownTransportError


class AddressError(ValueError):
    """An address string does not parse under the transport grammar."""


@dataclass(frozen=True)
class Address:
    """One parsed daemon address: a scheme plus its scheme-specific fields."""

    scheme: str
    path: "str | None" = None
    host: "str | None" = None
    port: "int | None" = None

    def __str__(self) -> str:
        if self.scheme == "unix":
            return f"unix:{self.path}"
        if self.scheme == "tcp":
            return f"tcp:{self.host}:{self.port}"
        return self.scheme


def parse_address(spec: "str | Address") -> Address:
    """Parse ``unix:/path``, ``tcp:host:port``, ``stdio`` or a bare path.

    A bare string with no recognised scheme prefix is a Unix socket path --
    exactly what the pre-transport ``--socket PATH`` flags passed, so every
    existing invocation keeps working unchanged.
    """
    if isinstance(spec, Address):
        return spec
    text = str(spec).strip()
    if not text:
        raise AddressError("empty address; expected unix:PATH, tcp:HOST:PORT or stdio")
    if text == "stdio":
        return Address(scheme="stdio")
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise AddressError(f"address {text!r} is missing its socket path")
        return Address(scheme="unix", path=path)
    if text.startswith("tcp:"):
        rest = text[len("tcp:"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise AddressError(
                f"address {text!r} must be tcp:HOST:PORT (e.g. tcp:127.0.0.1:7631)"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise AddressError(
                f"address {text!r} has a non-numeric port {port_text!r}"
            ) from None
        if not 0 <= port <= 65535:
            raise AddressError(f"address {text!r} port {port} is out of range")
        return Address(scheme="tcp", host=host, port=port)
    # Backward compatibility: a bare path is a Unix socket path.
    return Address(scheme="unix", path=text)


def load_worker_addresses(path: str) -> "list[Address]":
    """Parse a cluster workers file: one dialable address per line.

    The file format of ``repro daemon --workers-file``: each non-blank
    line is one worker address under the :func:`parse_address` grammar
    (``unix:PATH``, ``tcp:HOST:PORT``, bare Unix path); ``#`` starts a
    comment, inline or whole-line.  ``stdio`` is rejected -- a router
    must be able to *dial* every worker.  Errors carry ``file:line`` so
    a typo in a 40-host fleet file points at its own line.
    """
    addresses: "list[Address]" = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            try:
                address = parse_address(text)
            except AddressError as error:
                raise AddressError(f"{path}:{number}: {error}") from None
            if address.scheme == "stdio":
                raise AddressError(
                    f"{path}:{number}: 'stdio' is not a dialable worker "
                    f"address; use unix:PATH or tcp:HOST:PORT"
                )
            addresses.append(address)
    return addresses


class Connection:
    """One JSON-lines peer: a serialized writer shared by event streamers."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        scheme: str = "unix",
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.scheme = scheme
        self._write_lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True) + "\n"
        # Concurrent job streamers share this connection; the lock keeps
        # each event on its own line no matter how watchers interleave.
        async with self._write_lock:
            self.writer.write(line.encode("utf-8"))
            try:
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # the peer hung up; the read loop will see EOF and exit

    def close(self) -> None:
        try:
            self.writer.close()
        except RuntimeError:
            pass  # event loop already closing


#: The per-peer callback a listener invokes: it owns the connection for the
#: peer's whole lifetime and returns when the peer is done.
ConnectionHandler = Callable[[Connection], Awaitable[None]]


class Listener:
    """Server side of one transport; subclasses bind and accept peers.

    Lifecycle: :meth:`start` binds and begins invoking ``handler`` per
    connection; :meth:`wait` completes when the transport itself is
    finished serving (never, for socket transports -- stdio finishes when
    its single peer reaches EOF); :meth:`stop` stops accepting new
    connections; :meth:`cleanup` releases OS resources (idempotent, safe
    in ``finally``).
    """

    scheme = "base"

    def __init__(self, address: Address) -> None:
        self.address = address

    async def start(self, handler: ConnectionHandler) -> None:
        raise NotImplementedError

    async def wait(self) -> None:
        # Socket transports serve until told to stop.
        await asyncio.Event().wait()

    async def stop(self) -> None:
        raise NotImplementedError

    def cleanup(self) -> None:
        """Release OS resources; idempotent."""

    def describe(self) -> str:
        """Human-readable bound address (the CLI's "listening on" line)."""
        return str(self.address)


class StdioListener(Listener):
    """One connection over this process's stdin/stdout."""

    scheme = "stdio"

    def __init__(self, address: Address) -> None:
        super().__init__(address)
        self._task: "asyncio.Task | None" = None

    async def start(self, handler: ConnectionHandler) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        connection = Connection(reader, writer, scheme=self.scheme)
        self._task = loop.create_task(handler(connection))

    async def wait(self) -> None:
        # EOF on stdin is the pipe client's shutdown: the handler returns
        # and the daemon drains.  Shield keeps a cancelled waiter from
        # killing the handler task itself.
        if self._task is not None:
            await asyncio.shield(self._task)

    async def stop(self) -> None:
        if self._task is not None and not self._task.done():
            await asyncio.gather(self._task, return_exceptions=True)


class UnixListener(Listener):
    """A Unix-domain socket server."""

    scheme = "unix"

    def __init__(self, address: Address) -> None:
        super().__init__(address)
        assert address.path is not None
        self.path = address.path
        self._server: "asyncio.AbstractServer | None" = None
        self._bound = False

    async def _reclaim_stale_socket(self) -> None:
        """Unlink an existing socket file only if no live daemon answers it.

        Unlinking unconditionally would clobber a *running* daemon's socket
        (its clients would hang against an orphaned bind); a connect probe
        tells live from stale: a live daemon accepts, a stale file from a
        crashed daemon refuses.
        """
        if not os.path.exists(self.path):
            return
        try:
            _, writer = await asyncio.open_unix_connection(self.path)
        except OSError:
            os.unlink(self.path)  # stale: nobody home, reclaim the path
        else:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            raise AddressInUseError(
                f"a daemon is already listening on {self.path}; stop it or "
                f"pick a different socket path"
            )

    async def start(self, handler: ConnectionHandler) -> None:
        await self._reclaim_stale_socket()

        async def on_client(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            await handler(Connection(reader, writer, scheme=self.scheme))

        self._server = await asyncio.start_unix_server(on_client, path=self.path)
        self._bound = True

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def cleanup(self) -> None:
        # Only unlink a socket *we* bound: when start() found a live daemon
        # (AddressInUseError) the file belongs to that daemon, not us.
        if self._bound and os.path.exists(self.path):
            os.unlink(self.path)


class TcpListener(Listener):
    """A TCP server (the substrate the cluster mode's fan-out reuses)."""

    scheme = "tcp"

    def __init__(self, address: Address) -> None:
        super().__init__(address)
        assert address.host is not None and address.port is not None
        self.host = address.host
        self.port = address.port
        self._server: "asyncio.AbstractServer | None" = None

    async def start(self, handler: ConnectionHandler) -> None:
        async def on_client(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            await handler(Connection(reader, writer, scheme=self.scheme))

        self._server = await asyncio.start_server(on_client, self.host, self.port)
        if self.port == 0 and self._server.sockets:
            # An ephemeral bind resolved to a concrete port; report it so
            # tests and supervisors can discover where to connect.
            self.port = self._server.sockets[0].getsockname()[1]
            self.address = Address(scheme="tcp", host=self.host, port=self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def _connect_unix(address: Address) -> "tuple[asyncio.StreamReader, asyncio.StreamWriter]":
    assert address.path is not None
    return await asyncio.open_unix_connection(address.path)


async def _connect_tcp(address: Address) -> "tuple[asyncio.StreamReader, asyncio.StreamWriter]":
    assert address.host is not None and address.port is not None
    return await asyncio.open_connection(address.host, address.port)


@dataclass(frozen=True)
class TransportSpec:
    """One registered transport: its listener factory and client connector.

    ``connector`` is ``None`` for transports that cannot be dialled from
    another process (stdio: the pipe pair belongs to whoever spawned the
    daemon).
    """

    scheme: str
    description: str
    listener: Callable[[Address], Listener]
    connector: "Callable[[Address], Awaitable[tuple[asyncio.StreamReader, asyncio.StreamWriter]]] | None" = None


_TRANSPORTS: "dict[str, TransportSpec]" = {}


def register_transport(spec: TransportSpec) -> None:
    """Register (or replace) a transport under its scheme.

    Mirrors the solver/model/executor registries: runtime registration is
    first-class, so an embedding can add e.g. a TLS transport without
    patching this module.
    """
    _TRANSPORTS[spec.scheme] = spec


def unregister_transport(scheme: str) -> None:
    _TRANSPORTS.pop(scheme, None)


def get_transport(scheme: str) -> TransportSpec:
    """Look up a transport; raises :class:`UnknownTransportError` with the
    registered schemes when the name is unknown."""
    try:
        return _TRANSPORTS[scheme]
    except KeyError:
        raise UnknownTransportError(scheme, tuple(_TRANSPORTS)) from None


def available_transports() -> "tuple[str, ...]":
    """The registered transport schemes, sorted."""
    return tuple(sorted(_TRANSPORTS))


def transport_descriptions() -> "dict[str, str]":
    """{scheme: one-line description} for every registered transport."""
    return {
        scheme: _TRANSPORTS[scheme].description for scheme in available_transports()
    }


def create_listener(spec: "str | Address") -> Listener:
    """A ready-to-start listener for an address (dispatch on its scheme)."""
    address = parse_address(spec)
    return get_transport(address.scheme).listener(address)


async def open_client_connection(
    spec: "str | Address",
) -> "tuple[asyncio.StreamReader, asyncio.StreamWriter]":
    """Dial a daemon address; raises on non-connectable schemes (stdio)."""
    address = parse_address(spec)
    transport = get_transport(address.scheme)
    if transport.connector is None:
        raise AddressError(
            f"transport {address.scheme!r} cannot be connected to from "
            f"another process; use unix:PATH or tcp:HOST:PORT"
        )
    return await transport.connector(address)


register_transport(
    TransportSpec(
        scheme="stdio",
        description="one client over this process's stdin/stdout pipes",
        listener=StdioListener,
    )
)
register_transport(
    TransportSpec(
        scheme="unix",
        description="Unix-domain socket (unix:PATH or a bare path)",
        listener=UnixListener,
        connector=_connect_unix,
    )
)
register_transport(
    TransportSpec(
        scheme="tcp",
        description="TCP socket (tcp:HOST:PORT)",
        listener=TcpListener,
        connector=_connect_tcp,
    )
)
