"""Cluster execution backend: a router daemon driving a worker-daemon fleet.

The third registered :class:`~repro.service.execution.ExecutionBackend`
(``cluster``): instead of solving shards on an in-process pool, the
*router* daemon fans each picklable
:class:`~repro.service.execution.ShardPayload` out to one of N *worker*
daemons over the existing JSON-lines socket protocol.  Workers are
ordinary ``repro daemon`` processes -- the ``worker`` protocol op (solve
one payload, answer a ``worker_result`` event carrying the pickled
:class:`~repro.service.execution.ShardSolveReport`) is answered by every
daemon, which is what makes any daemon usable as a cluster worker.  The
report crosses the wire exactly as it crosses the process executor's
pickle boundary, so spans recorded in workers re-parent under the
router's shard spans identically and the results are bit-identical by
construction (the ``service.cluster`` benchmark section and the CI
``cluster-smoke`` job assert a zero delta against the thread executor).

Topology::

    clients --> router daemon (executor="cluster")
                  |  WorkerPool: one persistent DaemonClient per worker
                  +--> worker daemon A   (repro daemon --listen tcp:...)
                  +--> worker daemon B
                  +--> ...

Scheduling is **hash-routed with work stealing**:

* :func:`route_hash` maps a :class:`~repro.service.sharding.ShardKey` to
  a stable integer (SHA-256 over the key's deterministic signature, never
  Python's randomized ``hash()``), so a given spatial/temporal signature
  lands on the same worker run after run and that worker's operator
  cache stays hot across jobs -- the same cache-affinity argument the
  process backend makes per worker process, lifted to hosts.
* When the hash-preferred worker's queue depth exceeds the fleet median,
  the shard is **stolen** by the least-loaded worker
  (``cluster.shards_stolen``): corpora whose stories share one shard key
  would otherwise serialize on a single worker.
* When a worker connection drops -- refused at dial time, EOF mid-shard,
  the worker SIGKILLed -- its in-flight shards fail with
  :class:`~repro.service.execution.WorkerCrashError` and are **rerouted**
  (``cluster.reroutes``): the service's existing bisection-retry path
  requeues them, the dead worker is excluded from routing, and the job
  completes on the survivors.  A worker-side *solve* error (a poisoned
  surface) instead raises :class:`ClusterShardError`, which takes the
  same bisection path without declaring the worker dead.

Telemetry: the pool reports into the registry the service binds via
:meth:`~repro.service.execution.ExecutionBackend.bind_metrics` --
``cluster.worker_queue_depth{worker=}`` per-worker gauges,
``cluster.workers_alive``, and the ``cluster.shards_stolen`` /
``cluster.reroutes`` counters -- and :meth:`ClusterExecutionBackend.describe`
feeds the per-worker fleet table ``repro daemon-stats`` renders.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import pickle

from repro.core.errors import DaemonConnectionError
from repro.service.daemon import DaemonClient
from repro.service.execution import (
    ExecutionBackend,
    ShardOutcomes,
    ShardPayload,
    ShardRequest,
    ShardSolveReport,
    WorkerCrashError,
    register_executor,
)
from repro.service.sharding import ShardKey
from repro.service.telemetry import MetricsRegistry
from repro.service.transport import Address, AddressError, parse_address


class ClusterShardError(RuntimeError):
    """A worker daemon answered a shard with an error event.

    The worker is alive and healthy -- it *reported* the failure over a
    working connection -- so unlike :class:`WorkerCrashError` this does
    not mark the worker dead; it only fails the shard, which the service
    retries through the same bisection path.
    """


def route_hash(key: ShardKey) -> int:
    """Stable routing hash of a shard key: same key, same worker, any run.

    Python's ``hash()`` is per-process randomized for strings, so it
    would scatter a corpus across the fleet differently on every router
    restart and forfeit worker-cache affinity; SHA-256 over the key's
    deterministic :meth:`~repro.service.sharding.ShardKey.signature`
    (plus the temporal grids, which the signature omits) is stable
    across processes, hosts and restarts.
    """
    material = "|".join(
        (key.signature(), repr(key.training_times), repr(key.evaluation_times))
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class _WorkerLink:
    """One worker daemon: its connection, in-flight shards and liveness."""

    def __init__(self, address: Address) -> None:
        self.address = address
        #: Stable label for metrics/spans: the configured address string.
        self.label = str(address)
        self.client: "DaemonClient | None" = None
        #: request id -> future awaiting that shard's ``worker_result``.
        self.pending: "dict[str, asyncio.Future]" = {}
        self.inflight = 0
        self.alive = False
        self.shards_solved = 0
        self.reader: "asyncio.Task | None" = None


class WorkerPool:
    """Persistent connections to a worker-daemon fleet, with routing.

    One :class:`~repro.service.daemon.DaemonClient` per declared worker,
    dialed lazily on the first shard (with the client's capped-backoff
    ``retries`` so a router racing its own workers' startup wins), kept
    open for the router's whole life.  Requests are pipelined: several
    shards ride one connection concurrently, matched back to their
    futures by request id from a per-connection reader task.

    Parameters
    ----------
    addresses:
        The worker addresses (``unix:PATH`` / ``tcp:HOST:PORT`` strings
        or parsed :class:`~repro.service.transport.Address` values);
        ``stdio`` is rejected, a router must be able to dial its workers.
    connect_retries / connect_backoff:
        Forwarded to :meth:`DaemonClient.connect` per worker.
    metrics:
        The registry the pool's gauges and counters report into; the
        backend rebinds it to the service's shared registry via
        :meth:`ClusterExecutionBackend.bind_metrics`.
    """

    def __init__(
        self,
        addresses,
        connect_retries: int = 5,
        connect_backoff: float = 0.2,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        parsed = [parse_address(address) for address in addresses]
        if not parsed:
            raise ValueError(
                "a cluster needs at least one worker address (--worker ADDR "
                "or --workers-file FILE)"
            )
        for address in parsed:
            if address.scheme == "stdio":
                raise AddressError(
                    "'stdio' is not a dialable worker address; use unix:PATH "
                    "or tcp:HOST:PORT"
                )
        self._links = [_WorkerLink(address) for address in parsed]
        self._connect_retries = connect_retries
        self._connect_backoff = connect_backoff
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._connect_lock = asyncio.Lock()
        self._connected = False
        self._closed = False
        self._sequence = 0
        self.shards_stolen = 0
        self.reroutes = 0

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        self._metrics = registry
        # Pre-register the fleet counters so the Prometheus export shows
        # them at 0 from the first scrape, not only after the first event.
        registry.counter("cluster.shards_stolen")
        registry.counter("cluster.reroutes")

    @property
    def workers(self) -> "list[_WorkerLink]":
        return list(self._links)

    def alive_workers(self) -> "list[_WorkerLink]":
        return [link for link in self._links if link.alive]

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    async def ensure_connected(self) -> None:
        """Dial every worker once (concurrently); tolerate partial failure.

        A worker that stays unreachable after the connect retries starts
        life dead -- routing simply excludes it -- but a fleet with *no*
        reachable worker is a configuration error and raises.
        """
        async with self._connect_lock:
            if self._connected:
                return
            if self._closed:
                raise RuntimeError("the worker pool has been shut down")
            errors = await asyncio.gather(
                *(self._dial(link) for link in self._links)
            )
            if not self.alive_workers():
                details = "; ".join(error for error in errors if error)
                raise WorkerCrashError(
                    f"no cluster worker is reachable ({details})"
                )
            self._connected = True
            self._sync_gauges()

    async def _dial(self, link: _WorkerLink) -> "str | None":
        try:
            link.client = await DaemonClient.connect(
                link.address,
                retries=self._connect_retries,
                backoff=self._connect_backoff,
            )
        except (ConnectionError, OSError) as error:
            return f"{link.label}: {error}"
        link.alive = True
        link.reader = asyncio.get_running_loop().create_task(
            self._read_loop(link)
        )
        return None

    async def _read_loop(self, link: _WorkerLink) -> None:
        """Match this worker's event stream back to pending shard futures."""
        assert link.client is not None
        try:
            while True:
                event = await link.client.receive()
                request_id = event.get("id")
                future = (
                    link.pending.pop(str(request_id), None)
                    if request_id is not None
                    else None
                )
                if future is None or future.done():
                    continue
                if event.get("event") == "worker_result":
                    future.set_result(event)
                else:
                    # An error event for a specific shard: the worker is
                    # fine, the shard is not -- bisection territory.
                    future.set_exception(
                        ClusterShardError(
                            f"worker {link.label} failed the shard: "
                            f"{event.get('error', 'unknown error')}"
                        )
                    )
        except (DaemonConnectionError, ConnectionError, OSError):
            self._mark_dead(link)
        except asyncio.CancelledError:
            raise

    def _mark_dead(self, link: _WorkerLink) -> None:
        """Fail the worker's in-flight shards so the service reroutes them."""
        if not link.alive:
            return
        link.alive = False
        pending = list(link.pending.values())
        link.pending.clear()
        for future in pending:
            if not future.done():
                self.reroutes += 1
                self._metrics.counter("cluster.reroutes").inc()
                future.set_exception(
                    WorkerCrashError(
                        f"worker {link.label} dropped its connection with "
                        f"this shard in flight; the shard will be rerouted"
                    )
                )
        self._sync_gauges()

    def shutdown(self) -> None:
        """Cancel readers and close every connection (sync, idempotent)."""
        self._closed = True
        for link in self._links:
            if link.reader is not None:
                link.reader.cancel()
                link.reader = None
            if link.client is not None:
                link.client.close_nowait()
                link.client = None
            link.alive = False

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, key: ShardKey) -> _WorkerLink:
        """Pick the worker for a shard: hash affinity, then work stealing.

        The hash-preferred worker keeps its operator cache hot; but when
        its queue depth exceeds the fleet median (strictly -- a balanced
        fleet never steals), the least-loaded worker steals the shard.
        Only live workers participate, which is what reroutes a dead
        worker's retried shards onto the survivors.
        """
        alive = self.alive_workers()
        if not alive:
            raise WorkerCrashError(
                "every cluster worker is dead; the shard cannot be routed"
            )
        preferred = alive[route_hash(key) % len(alive)]
        depths = sorted(link.inflight for link in alive)
        median = depths[(len(depths) - 1) // 2]
        if preferred.inflight > median:
            target = min(alive, key=lambda link: link.inflight)
            if target is not preferred:
                self.shards_stolen += 1
                self._metrics.counter("cluster.shards_stolen").inc()
                return target
        return preferred

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    async def solve_payload(
        self, payload: ShardPayload
    ) -> "tuple[str, ShardSolveReport]":
        """Route one payload to a worker and await its report."""
        await self.ensure_connected()
        link = self.route(payload.key)
        assert link.client is not None
        self._sequence += 1
        request_id = f"w-{self._sequence}"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        link.pending[request_id] = future
        link.inflight += 1
        self._queue_gauge(link)
        try:
            data = base64.b64encode(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
            try:
                await link.client.send(
                    {"op": "worker", "id": request_id, "payload": data}
                )
            except (ConnectionError, OSError) as error:
                # The send itself failed: the reader may not have seen the
                # EOF yet, so fail the worker here and reroute.
                link.pending.pop(request_id, None)
                self._mark_dead(link)
                self.reroutes += 1
                self._metrics.counter("cluster.reroutes").inc()
                raise WorkerCrashError(
                    f"worker {link.label} is unreachable ({error}); the "
                    f"shard will be rerouted"
                ) from error
            event = await future
        finally:
            link.pending.pop(request_id, None)
            link.inflight -= 1
            self._queue_gauge(link)
        report = pickle.loads(base64.b64decode(event["report"]))
        link.shards_solved += 1
        return link.label, report

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def _queue_gauge(self, link: _WorkerLink) -> None:
        self._metrics.gauge(
            "cluster.worker_queue_depth", labels={"worker": link.label}
        ).set(link.inflight)

    def _sync_gauges(self) -> None:
        self._metrics.gauge("cluster.workers_alive").set(
            len(self.alive_workers())
        )
        for link in self._links:
            self._queue_gauge(link)

    def fleet_stats(self) -> "list[dict]":
        """Per-worker state for ``stats`` payloads / ``daemon-stats``."""
        return [
            {
                "worker": link.label,
                "alive": link.alive,
                "inflight": link.inflight,
                "shards_solved": link.shards_solved,
            }
            for link in self._links
        ]


class ClusterExecutionBackend(ExecutionBackend):
    """Shard solving fanned out to a worker-daemon fleet over sockets.

    Parameters
    ----------
    max_workers:
        The router-side concurrency bound: how many shards the service
        keeps in flight across the whole fleet (the workers' own loop
        executors solve whatever arrives; this is the only admission
        control, exactly as ``max_workers`` bounds the in-process pools).
    workers:
        Worker daemon addresses (strings under the
        :func:`~repro.service.transport.parse_address` grammar, or
        parsed ``Address`` values).  Required and non-empty.
    connect_retries / connect_backoff:
        Per-worker dial policy (capped exponential backoff), so a router
        started alongside its workers tolerates their bind latency.
    """

    kind = "cluster"

    def __init__(
        self,
        max_workers: int,
        workers=None,
        connect_retries: int = 5,
        connect_backoff: float = 0.2,
    ) -> None:
        super().__init__(max_workers)
        if not workers:
            raise ValueError(
                "the cluster executor needs worker addresses "
                "(executor_options={'workers': [...]} / --worker ADDR)"
            )
        self._pool = WorkerPool(
            workers,
            connect_retries=connect_retries,
            connect_backoff=connect_backoff,
        )
        self._started = False

    @property
    def pool(self) -> WorkerPool:
        """The live worker pool (tests kill workers through its links)."""
        return self._pool

    def bind_metrics(self, registry) -> None:
        self._pool.bind_metrics(registry)

    def start(self) -> None:
        # Dialing is async and start() is sync by contract, so connections
        # open lazily on the first solve; start() just arms the pool.
        self._started = True

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown()

    async def solve(
        self, request: ShardRequest
    ) -> "tuple[str, ShardOutcomes]":
        assert self._started, "backend not started"
        return await self._pool.solve_payload(request.make_payload())

    def describe(self) -> dict:
        info = super().describe()
        info["fleet"] = self._pool.fleet_stats()
        info["shards_stolen"] = self._pool.shards_stolen
        info["reroutes"] = self._pool.reroutes
        return info


register_executor("cluster", ClusterExecutionBackend, overwrite=True)
