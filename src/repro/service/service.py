"""Async multi-story prediction service over the batched solver engine.

:class:`PredictionService` turns the synchronous
:class:`~repro.core.prediction.BatchPredictor` into a concurrent scoring
service for whole corpora of cascades:

* **submit** -- ``await service.submit(name, surface)`` enqueues one story
  and returns a :class:`PredictionJob` with per-job status, result and
  cancellation.
* **shard** -- queued jobs are grouped by
  :class:`~repro.service.sharding.CorpusSharder` signature, so every
  dispatched batch shares its cached operator factorizations and advances as
  the columns of one vectorised PDE solve.
* **drain** -- a bounded worker pool offloads the numpy-heavy shard solves
  to threads (the solver spends its time in LAPACK/BLAS, which release the
  GIL), while the asyncio side stays responsive for submissions, streaming
  and cancellation.
* **backpressure** -- at most ``queue_depth`` jobs may be queued or running;
  further ``submit`` calls suspend until capacity frees up, so an unbounded
  producer cannot exhaust memory.

Results are numerically identical to running :class:`BatchPredictor` on the
same corpus synchronously -- the service only reorganises *when* each shard
is solved, never *how* (the equivalence tests and the ``service`` section of
the substrate benchmark assert this).

For synchronous callers (CLI, benchmarks, examples) the module-level
:func:`score_corpus_sync` wraps the whole submit/await cycle in one
``asyncio.run`` call.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import AsyncIterator, Iterable, Mapping, Sequence

from repro.cascade.density import DensitySurface
from repro.core.parameters import DLParameters
from repro.core.prediction import BatchPredictor, PredictionResult
from repro.service.sharding import CorpusSharder, ShardKey

DEFAULT_MAX_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 128
DEFAULT_MAX_SHARD_SIZE = 32


class JobStatus(str, Enum):
    """Lifecycle of one submitted story."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


class JobCancelledError(RuntimeError):
    """Raised by :meth:`PredictionJob.wait` when the job was cancelled."""


@dataclass
class PredictionJob:
    """One story queued for scoring.

    Attributes
    ----------
    name:
        Story name (unique within the jobs awaited together).
    surface:
        The observed density surface being scored.
    key:
        The shard signature the job was grouped by.
    status:
        Current :class:`JobStatus`.
    result:
        The :class:`PredictionResult` once ``status`` is ``SUCCEEDED``.
    error:
        The exception once ``status`` is ``FAILED``.
    """

    name: str
    surface: DensitySurface
    key: ShardKey
    status: JobStatus = JobStatus.PENDING
    result: "PredictionResult | None" = None
    error: "BaseException | None" = None
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _service: "PredictionService | None" = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """True once the job reached a terminal status."""
        return self._done.is_set()

    async def finished(self) -> "PredictionJob":
        """Suspend until the job reaches a terminal status; never raises."""
        await self._done.wait()
        return self

    async def wait(self) -> PredictionResult:
        """Suspend until the job finishes; return its result.

        Raises the shard's exception when the job ``FAILED`` and
        :class:`JobCancelledError` when it was cancelled.
        """
        await self._done.wait()
        if self.status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.name!r} was cancelled")
        if self.status is JobStatus.FAILED:
            assert self.error is not None
            raise self.error
        assert self.result is not None
        return self.result

    def cancel(self) -> bool:
        """Cancel the job if it has not started; True when it was cancelled."""
        if self._service is None:
            return False
        return self._service.cancel(self)


class PredictionService:
    """Score corpora of cascades concurrently through an async job queue.

    Parameters
    ----------
    parameters:
        Forwarded to :class:`~repro.core.prediction.BatchPredictor`: ``None``
        calibrates each story from its training window, a single
        :class:`DLParameters` is shared, a mapping assigns per story name.
    points_per_unit, max_step, backend, operator, calibration_batch:
        Solver configuration, exactly as for ``BatchPredictor``.
    max_workers:
        Number of shard solves in flight at once (thread-pool size).
    queue_depth:
        Backpressure bound: the maximum number of jobs queued or running
        before :meth:`submit` suspends.
    max_shard_size:
        Largest number of stories solved in one batch; bigger shards
        amortize factorizations further but increase per-batch latency.

    Use as an async context manager (``async with PredictionService() as
    service:``) or call :meth:`start` / :meth:`close` explicitly.
    """

    def __init__(
        self,
        parameters: "DLParameters | Mapping[str, DLParameters] | None" = None,
        points_per_unit: int = 20,
        max_step: float = 0.02,
        backend: str = "internal",
        operator: str = "auto",
        calibration_batch: bool = True,
        max_workers: int = DEFAULT_MAX_WORKERS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_shard_size: "int | None" = DEFAULT_MAX_SHARD_SIZE,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self._parameters = parameters
        self._predictor_config = dict(
            points_per_unit=points_per_unit,
            max_step=max_step,
            backend=backend,
            operator=operator,
            calibration_batch=calibration_batch,
        )
        self._sharder = CorpusSharder(
            points_per_unit=points_per_unit,
            max_step=max_step,
            backend=backend,
            operator=operator,
            max_shard_size=max_shard_size,
        )
        self._max_workers = max_workers
        self._queue_depth = queue_depth
        self._max_shard_size = max_shard_size

        self._started = False
        self._closed = False
        self._active_names: "set[str]" = set()
        self._pending: "dict[ShardKey, list[PredictionJob]]" = {}
        self._slots: "asyncio.Semaphore | None" = None
        self._workers: "asyncio.Semaphore | None" = None
        self._kick: "asyncio.Event | None" = None
        self._dispatcher: "asyncio.Task | None" = None
        self._inflight: "set[asyncio.Task]" = set()
        self._executor: "ThreadPoolExecutor | None" = None
        self._counts = {status: 0 for status in JobStatus}
        self._shards_solved = 0
        self._stories_solved = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionService":
        """Create the queue machinery; must run inside an event loop."""
        if self._started:
            return self
        if self._closed:
            raise RuntimeError("the service has been closed; create a new one")
        self._slots = asyncio.Semaphore(self._queue_depth)
        self._workers = asyncio.Semaphore(self._max_workers)
        self._kick = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-service"
        )
        self._dispatcher = asyncio.get_running_loop().create_task(self._dispatch_loop())
        self._started = True
        return self

    async def close(self) -> None:
        """Drain every queued/running job, then tear the pool down."""
        if not self._started or self._closed:
            self._closed = True
            return
        # Reject new submissions immediately -- including ones currently
        # parked on the backpressure semaphore, which re-check this flag
        # after acquiring a slot -- so nothing can be enqueued after the
        # drain loop decides the queue is empty.
        self._closed = True
        while self._has_pending() or self._inflight:
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
            else:
                # Pending but not dispatched yet: yield so the dispatcher runs.
                await asyncio.sleep(0)
        assert self._dispatcher is not None and self._executor is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._executor.shutdown(wait=True)
        self._closed = True

    async def __aenter__(self) -> "PredictionService":
        return self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _require_open(self) -> None:
        if not self._started:
            raise RuntimeError(
                "the service is not running; use 'async with PredictionService()' "
                "or call start() first"
            )
        if self._closed:
            raise RuntimeError("the service has been closed; create a new one")

    # ------------------------------------------------------------------ #
    # Submission / results
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        name: str,
        surface: DensitySurface,
        training_times: "Sequence[float] | None" = None,
        evaluation_times: "Sequence[float] | None" = None,
    ) -> PredictionJob:
        """Queue one story; suspends while the service is at ``queue_depth``.

        The returned job completes once its shard has been solved; await
        :meth:`PredictionJob.wait` (or :meth:`stream` several jobs) for the
        :class:`~repro.core.prediction.PredictionResult`.

        ``name`` must be unique among the jobs currently queued or running:
        shard solves are keyed by story name, so a duplicate would silently
        receive another surface's result.  A name becomes reusable once its
        job reaches a terminal status.
        """
        self._require_open()
        if name in self._active_names:
            raise ValueError(
                f"a job named {name!r} is already queued or running; story "
                f"names must be unique among in-flight jobs"
            )
        # Reserve the name *before* suspending on backpressure, so a second
        # concurrent submit with the same name fails fast instead of both
        # passing the check while parked on a full queue.
        self._active_names.add(name)
        try:
            key = self._sharder.key_for(surface, training_times, evaluation_times)
            assert self._slots is not None and self._kick is not None
            await self._slots.acquire()  # backpressure
            if self._closed:
                # close() started while this submit was parked on the
                # semaphore; enqueueing now would leave the job pending
                # forever (the dispatcher is being torn down).
                self._slots.release()
                raise RuntimeError("the service has been closed; job not accepted")
        except BaseException:
            self._active_names.discard(name)
            raise
        job = PredictionJob(name=name, surface=surface, key=key, _service=self)
        self._pending.setdefault(key, []).append(job)
        self._counts[JobStatus.PENDING] += 1
        self._kick.set()
        return job

    async def stream(
        self, jobs: Iterable[PredictionJob]
    ) -> AsyncIterator[PredictionJob]:
        """Yield jobs as they finish (any terminal status), earliest first."""
        waiters = {asyncio.ensure_future(job.finished()): job for job in jobs}
        try:
            while waiters:
                done, _ = await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
                for waiter in done:
                    yield waiters.pop(waiter)
        finally:
            for waiter in waiters:
                waiter.cancel()

    async def score_corpus(
        self,
        surfaces: "Mapping[str, DensitySurface]",
        training_times: "Sequence[float] | None" = None,
        evaluation_times: "Sequence[float] | None" = None,
    ) -> "dict[str, PredictionResult]":
        """Submit a whole corpus and await every result, keyed by story name."""
        jobs = [
            await self.submit(name, surface, training_times, evaluation_times)
            for name, surface in surfaces.items()
        ]
        return {job.name: await job.wait() for job in jobs}

    def cancel(self, job: PredictionJob) -> bool:
        """Cancel a queued job; returns False once it is running or done."""
        if job.status is not JobStatus.PENDING:
            return False
        queued = self._pending.get(job.key, [])
        if job in queued:
            queued.remove(job)
            if not queued:
                self._pending.pop(job.key, None)
        self._transition(job, JobStatus.CANCELLED)
        job._done.set()
        assert self._slots is not None
        self._slots.release()
        return True

    def stats(self) -> dict:
        """Counters for monitoring and smoke tests."""
        return {
            "queued": self._counts[JobStatus.PENDING],
            "running": self._counts[JobStatus.RUNNING],
            "succeeded": self._counts[JobStatus.SUCCEEDED],
            "failed": self._counts[JobStatus.FAILED],
            "cancelled": self._counts[JobStatus.CANCELLED],
            "shards_solved": self._shards_solved,
            "stories_solved": self._stories_solved,
            "queue_depth": self._queue_depth,
            "max_workers": self._max_workers,
            "max_shard_size": self._max_shard_size,
        }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _has_pending(self) -> bool:
        return any(self._pending.values())

    def _next_batch(self) -> "list[PredictionJob]":
        """Pop the next shard batch (oldest signature first)."""
        for key in list(self._pending):
            queued = self._pending[key]
            if not queued:
                del self._pending[key]
                continue
            size = self._max_shard_size or len(queued)
            batch = queued[:size]
            remainder = queued[size:]
            if remainder:
                self._pending[key] = remainder
            else:
                del self._pending[key]
            return batch
        return []

    async def _dispatch_loop(self) -> None:
        assert self._kick is not None and self._workers is not None
        while True:
            await self._kick.wait()
            self._kick.clear()
            while self._has_pending():
                await self._workers.acquire()
                batch = self._next_batch()
                if not batch:
                    self._workers.release()
                    break
                task = asyncio.get_running_loop().create_task(self._run_shard(batch))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    _TERMINAL_STATUSES = (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)

    def _transition(self, job: PredictionJob, status: JobStatus) -> None:
        self._counts[job.status] -= 1
        job.status = status
        self._counts[status] += 1
        if status in self._TERMINAL_STATUSES:
            self._active_names.discard(job.name)

    async def _run_shard(self, jobs: "list[PredictionJob]") -> None:
        assert self._workers is not None and self._slots is not None
        assert self._executor is not None
        # A job can be cancelled between dispatch and this task running;
        # cancel() already completed it and released its queue slot, so only
        # still-pending jobs belong to this shard.  No await separates the
        # filter from the RUNNING transition, so cancel() cannot interleave.
        jobs = [job for job in jobs if job.status is JobStatus.PENDING]
        if not jobs:
            self._workers.release()
            return
        for job in jobs:
            self._transition(job, JobStatus.RUNNING)
        try:
            outcomes = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._solve_shard, jobs
            )
            solved = 0
            for job in jobs:
                outcome = outcomes[job.name]
                if isinstance(outcome, BaseException):
                    job.error = outcome
                    self._transition(job, JobStatus.FAILED)
                else:
                    job.result = outcome
                    self._transition(job, JobStatus.SUCCEEDED)
                    solved += 1
            if solved:
                self._shards_solved += 1
                self._stories_solved += solved
        except Exception as error:  # noqa: BLE001 - failures surface via job.wait()
            for job in jobs:
                job.error = error
                self._transition(job, JobStatus.FAILED)
        finally:
            for job in jobs:
                job._done.set()
                self._slots.release()
            self._workers.release()

    def _solve_shard(
        self, jobs: "list[PredictionJob]"
    ) -> "dict[str, PredictionResult | BaseException]":
        """Synchronous shard solve, run on a worker thread.

        The per-story workflow is exactly the synchronous
        :class:`BatchPredictor` path: fit each story, then evaluate the whole
        shard in batched solves sharing the cached operators.  A story whose
        *fit* fails (bad surface, calibration error) is mapped to its own
        exception without poisoning its shard-mates; only a failure of the
        joint evaluate solve is shard-wide (and surfaces through the caller's
        except path).
        """
        key = jobs[0].key
        predictor = BatchPredictor(parameters=self._parameters, **self._predictor_config)
        outcomes: "dict[str, PredictionResult | BaseException]" = {}
        fitted = []
        for job in jobs:
            try:
                predictor.fit_story(job.name, job.surface, key.training_times)
                fitted.append(job)
            except Exception as error:  # noqa: BLE001 - per-story failure
                outcomes[job.name] = error
        if fitted:
            results = predictor.evaluate(
                {job.name: job.surface for job in fitted},
                times=key.evaluation_times,
            )
            for job in fitted:
                outcomes[job.name] = results[job.name]
        return outcomes


def score_corpus_sync(
    surfaces: "Mapping[str, DensitySurface]",
    training_times: "Sequence[float] | None" = None,
    evaluation_times: "Sequence[float] | None" = None,
    **service_kwargs,
) -> "dict[str, PredictionResult]":
    """Score a corpus through the service from synchronous code.

    Spins up a :class:`PredictionService` (keyword arguments are forwarded to
    its constructor) inside ``asyncio.run``, scores every story and returns
    the per-story results.  The benchmark's ``service`` section and the
    examples use this; the CLI's ``serve-batch`` drives the service directly
    so it can stream each result as it completes.
    """

    async def _run() -> "dict[str, PredictionResult]":
        async with PredictionService(**service_kwargs) as service:
            return await service.score_corpus(surfaces, training_times, evaluation_times)

    return asyncio.run(_run())
