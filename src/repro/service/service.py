"""Async multi-story prediction service over the unified model registry.

:class:`PredictionService` turns any registered prediction model
(:mod:`repro.models` -- the DL model by default, any baseline or
runtime-registered model by name) into a concurrent scoring service for
whole corpora of cascades:

* **submit** -- ``await service.submit(name, surface)`` enqueues one story
  and returns a :class:`PredictionJob` with per-job status, result and
  cancellation.
* **shard** -- queued jobs are grouped by
  :class:`~repro.service.sharding.CorpusSharder` signature (which includes
  the model name, so shards never mix models); for the DL model every
  dispatched batch shares its cached operator factorizations and advances as
  the columns of one vectorised PDE solve.
* **drain** -- a bounded worker pool offloads the numpy-heavy shard solves
  through a pluggable :class:`~repro.service.execution.ExecutionBackend`:
  ``executor="thread"`` (the default) keeps the classic in-process thread
  pool (the solver spends its time in LAPACK/BLAS, which release the GIL),
  ``executor="process"`` ships picklable shard payloads to a
  ``ProcessPoolExecutor`` and scales calibration-heavy corpora past the
  GIL entirely; either way the asyncio side stays responsive for
  submissions, streaming and cancellation.
* **backpressure** -- at most ``queue_depth`` jobs may be queued or running;
  further ``submit`` calls suspend until capacity frees up, so an unbounded
  producer cannot exhaust memory.
* **timeouts** -- each job may carry a wall-clock deadline (per submit or a
  service-wide default); a job past its deadline completes as ``TIMED_OUT``
  immediately, without stalling its shard-mates or later jobs.
* **retry / requeue** -- a shard-wide solve failure does not sink the whole
  shard: the shard is split in half and both halves are requeued (bounded
  by ``max_shard_retries`` attempts per job), so a single poisoned story is
  bisected away from its shard-mates and fails alone.
* **telemetry** -- a :class:`~repro.service.telemetry.MetricsRegistry`
  (job/shard/story counters, queue-depth gauge, solve-time histograms) is
  updated throughout; the daemon exposes it over its ``stats`` command.
* **autotuning** -- with ``autotune=True`` shard sizes follow a
  :class:`~repro.service.sharding.ShardAutotuner`: an EWMA of observed
  per-story solve times sizes each batch to a target latency instead of the
  fixed ``max_shard_size`` grouping.

Results are numerically identical to running the model's direct synchronous
path on the same corpus (``BatchPredictor`` for ``dl``, ``fit`` +
``evaluate`` for every other registered model) -- the service only
reorganises *when* each shard is solved, never *how* (the equivalence tests
and the ``service`` section of the substrate benchmark assert this).

For synchronous callers (CLI, benchmarks, examples) the module-level
:func:`score_corpus_sync` wraps the whole submit/await cycle in one
``asyncio.run`` call.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import AsyncIterator, Iterable, Mapping, Sequence

from repro.cascade.density import DensitySurface
from repro.core.config import (
    CalibrationConfig,
    ModelSpec,
    SolverConfig,
    merge_calibration_config,
    merge_solver_config,
)
from repro.core.parameters import DLParameters
from repro.core.prediction import PredictionResult
from repro.models.registry import get_model
from repro.service.execution import (
    ExecutionBackend,
    ShardPayload,
    ShardRequest,
    ShardSolveReport,
    WorkerCrashError,
    create_executor,
    get_executor_factory,
    solve_shard_report,
)
from repro.service.sharding import CorpusSharder, ShardAutotuner, ShardKey
from repro.service.telemetry import MetricsRegistry
from repro.service.tracing import NOOP_TRACER, Span, TraceContext, TracerLike

DEFAULT_MAX_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 128
DEFAULT_MAX_SHARD_SIZE = 32
#: Default bound on how often one job may be requeued after shard-wide solve
#: failures.  Each retry halves the failing shard, so 6 attempts bisect a
#: poisoned story out of any shard up to 64 stories wide.
DEFAULT_MAX_SHARD_RETRIES = 6


class JobStatus(str, Enum):
    """Lifecycle of one submitted story."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


class JobCancelledError(RuntimeError):
    """Raised by :meth:`PredictionJob.wait` when the job was cancelled."""


class JobTimeoutError(RuntimeError):
    """Raised by :meth:`PredictionJob.wait` when the job exceeded its deadline."""


@dataclass
class PredictionJob:
    """One story queued for scoring.

    Attributes
    ----------
    name:
        Story name (unique within the jobs awaited together).
    surface:
        The observed density surface being scored.
    key:
        The shard signature the job was grouped by.
    status:
        Current :class:`JobStatus`.
    result:
        The :class:`PredictionResult` once ``status`` is ``SUCCEEDED``.
    error:
        The exception once ``status`` is ``FAILED`` or ``TIMED_OUT``.
    timeout:
        Wall-clock deadline in seconds, measured from submission; ``None``
        means no deadline.
    attempts:
        How many times the job's shard has been requeued after a shard-wide
        solve failure.
    """

    name: str
    surface: DensitySurface
    key: ShardKey
    status: JobStatus = JobStatus.PENDING
    result: "PredictionResult | None" = None
    error: "BaseException | None" = None
    timeout: "float | None" = None
    attempts: int = 0
    #: Trace context this job's spans parent to (e.g. the daemon's root
    #: ``job`` span); ``None`` starts a fresh trace per story when tracing
    #: is enabled.
    trace: "TraceContext | None" = None
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _service: "PredictionService | None" = field(default=None, repr=False)
    _deadline_handle: "asyncio.TimerHandle | None" = field(default=None, repr=False)
    #: Live ``story`` span (tracing enabled only); finished by _complete.
    _span: "Span | None" = field(default=None, repr=False)
    #: Wall-clock / monotonic enqueue stamps feeding queue-wait telemetry;
    #: reset on requeue so the wait reflects the latest enqueue.
    _enqueued_at: float = field(default=0.0, repr=False)
    _enqueued_pc: float = field(default=0.0, repr=False)
    #: Context of the most recent shard span this job was solved under;
    #: a retried job's next shard span parents here (the re-parenting link
    #: from a bisected half back to the failed shard).
    _shard_trace: "TraceContext | None" = field(default=None, repr=False)
    #: Side channel for the thread path: _solve_shard parks the shard's
    #: ShardSolveReport here (on the batch's first job) for _run_shard.
    _solve_report: "ShardSolveReport | None" = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """True once the job reached a terminal status."""
        return self._done.is_set()

    async def finished(self) -> "PredictionJob":
        """Suspend until the job reaches a terminal status; never raises."""
        await self._done.wait()
        return self

    async def wait(self) -> PredictionResult:
        """Suspend until the job finishes; return its result.

        Raises the shard's exception when the job ``FAILED``,
        :class:`JobCancelledError` when it was cancelled and
        :class:`JobTimeoutError` when it exceeded its wall-clock deadline.
        """
        await self._done.wait()
        if self.status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.name!r} was cancelled")
        if self.status is JobStatus.TIMED_OUT:
            raise JobTimeoutError(
                f"job {self.name!r} exceeded its {self.timeout:g}s deadline"
            )
        if self.status is JobStatus.FAILED:
            assert self.error is not None
            raise self.error
        assert self.result is not None
        return self.result

    def cancel(self) -> bool:
        """Cancel the job if it has not started; True when it was cancelled."""
        if self._service is None:
            return False
        return self._service.cancel(self)


class PredictionService:
    """Score corpora of cascades concurrently through an async job queue.

    Parameters
    ----------
    model:
        Registry name of the default prediction model
        (:mod:`repro.models`); jobs may override it per story via
        :meth:`submit`.  Stories under different models are never sharded
        together.
    parameters:
        DL-model parameters (only meaningful when the default model is
        ``"dl"``): ``None`` calibrates each story from its training window,
        a single :class:`DLParameters` is shared, a mapping assigns per
        story name.
    model_params:
        Model-specific options for the default model
        (:attr:`~repro.core.config.ModelSpec.params`), e.g.
        ``{"ridge": 1e-3}`` for ``linear-influence``.
    model_overrides:
        Per-model params for *non-default* models submitted via
        ``submit(..., model=...)``, keyed by registry name, e.g.
        ``{"linear-influence": {"ridge": 10.0}}``.  Before this knob
        existed, override models silently ran with registry defaults no
        matter what the caller configured; every model name is validated
        against the registry at construction.
    executor:
        Name of the :mod:`~repro.service.execution` backend shard solves
        run on: ``"thread"`` (default, the in-process pool) or
        ``"process"`` (a ``ProcessPoolExecutor``: picklable shard payloads,
        per-process operator caches, crash respawn -- scales
        calibration-heavy corpora past the GIL).
    executor_options:
        Extra keyword arguments for the backend factory, e.g.
        ``{"start_method": "spawn"}`` or a ``warmup`` payload for the
        process backend.
    solver, calibration:
        Typed configs (:class:`~repro.core.config.SolverConfig` /
        :class:`~repro.core.config.CalibrationConfig`); the legacy knobs
        ``points_per_unit`` / ``max_step`` / ``backend`` / ``operator`` /
        ``calibration_batch`` remain accepted as a thin shim.
    max_workers:
        Number of shard solves in flight at once (thread-pool size).
    queue_depth:
        Backpressure bound: the maximum number of jobs queued or running
        before :meth:`submit` suspends.
    max_shard_size:
        Largest number of stories solved in one batch; bigger shards
        amortize factorizations further but increase per-batch latency.
    job_timeout:
        Default wall-clock deadline (seconds, from submission) applied to
        every job that does not carry its own; ``None`` disables deadlines.
    max_shard_retries:
        How many times one job may be requeued after a shard-wide solve
        failure before it is failed outright; each retry splits the failing
        shard in half, so the default bisects a poisoned story out of any
        default-sized shard.
    autotune:
        When True (or when ``autotuner`` is given), shard sizes follow a
        :class:`~repro.service.sharding.ShardAutotuner` fed with observed
        solve times instead of the fixed ``max_shard_size``;
        ``max_shard_size`` then only caps the autotuner's range.  Each
        model gets its own autotuner (per-story costs differ by orders of
        magnitude between models, so one shared EWMA would miscalibrate
        mixed traffic).
    autotuner:
        An explicitly configured autotuner instance for the *default*
        model (implies ``autotune``); other models autotune with
        default-configured instances.
    metrics:
        A :class:`~repro.service.telemetry.MetricsRegistry` to update; one
        is created when omitted (see :attr:`metrics`).
    tracer:
        A :class:`~repro.service.tracing.Tracer` receiving spans for every
        hot boundary (queue wait, shard solve, fit/evaluate phases);
        defaults to the zero-cost no-op tracer, so an untraced service pays
        only an ``enabled`` attribute check per site.

    Use as an async context manager (``async with PredictionService() as
    service:``) or call :meth:`start` / :meth:`close` explicitly.
    """

    def __init__(
        self,
        parameters: "DLParameters | Mapping[str, DLParameters] | None" = None,
        points_per_unit: "int | None" = None,
        max_step: "float | None" = None,
        backend: "str | None" = None,
        operator: "str | None" = None,
        calibration_batch: "bool | None" = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_shard_size: "int | None" = DEFAULT_MAX_SHARD_SIZE,
        job_timeout: "float | None" = None,
        max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
        autotune: bool = False,
        autotuner: "ShardAutotuner | None" = None,
        metrics: "MetricsRegistry | None" = None,
        *,
        model: str = "dl",
        model_params: "Mapping[str, object] | None" = None,
        model_overrides: "Mapping[str, Mapping[str, object]] | None" = None,
        executor: str = "thread",
        executor_options: "Mapping[str, object] | None" = None,
        solver: "SolverConfig | None" = None,
        calibration: "CalibrationConfig | None" = None,
        tracer: "TracerLike | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0, got {job_timeout}")
        if max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        get_model(model)  # fail fast on unknown default models
        get_executor_factory(executor)  # ... and on unknown executors
        for override_model in model_overrides or {}:
            if override_model == model:
                raise ValueError(
                    f"model_overrides names the default model {model!r}; "
                    f"pass its params via model_params= instead"
                )
            get_model(override_model)
        if parameters is not None and model != "dl":
            raise ValueError(
                f"parameters= carries DL parameters but the default model is "
                f"{model!r}; pass model-specific options via model_params="
            )
        solver_config = merge_solver_config(
            solver, points_per_unit, max_step, backend, operator
        )
        calibration_config = merge_calibration_config(
            calibration, calibration_batch, default_batch=True
        )
        params = dict(model_params or {})
        if parameters is not None:
            params["parameters"] = parameters
        self._spec = ModelSpec(
            name=model,
            params=params,
            solver=solver_config,
            calibration=calibration_config,
        )
        self._sharder = CorpusSharder(
            solver=solver_config,
            model=model,
            max_shard_size=max_shard_size,
        )
        self._model_overrides = {
            name: dict(params) for name, params in (model_overrides or {}).items()
        }
        self._override_specs: "dict[str, ModelSpec]" = {}
        self._executor_name = executor
        self._executor_options = dict(executor_options or {})
        self._max_workers = max_workers
        self._queue_depth = queue_depth
        self._max_shard_size = max_shard_size
        self._job_timeout = job_timeout
        self._max_shard_retries = max_shard_retries
        # One autotuner per model: shards are per-model, and per-story solve
        # costs differ by orders of magnitude between models (a logistic fit
        # vs a DL calibration), so a shared EWMA would miscalibrate every
        # model's shard size in mixed traffic.  An explicitly supplied
        # autotuner serves the default model; other models lazily get their
        # own default-configured instance (_autotuner_for).
        self._autotune = autotune or autotuner is not None
        self._autotuners: "dict[str, ShardAutotuner]" = {}
        if self._autotune:
            self._autotuners[model] = (
                autotuner if autotuner is not None else self._new_autotuner()
            )
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._shard_seconds = self._metrics.histogram("service.shard_solve_seconds")
        self._story_seconds = self._metrics.histogram("service.story_solve_seconds")
        self._queue_gauge = self._metrics.gauge("service.queue_depth")
        self._queue_wait_seconds = self._metrics.histogram("service.queue_wait_seconds")
        # The no-op tracer is the default: every instrumentation site checks
        # ``self._tracer.enabled`` (one attribute read) before building any
        # span or attribute dict, so an untraced service pays ~nothing.
        self._tracer: TracerLike = tracer if tracer is not None else NOOP_TRACER

        self._started = False
        self._closed = False
        self._active_names: "set[str]" = set()
        self._pending: "dict[ShardKey, list[PredictionJob]]" = {}
        self._requeued: "deque[list[PredictionJob]]" = deque()
        self._slots: "asyncio.Semaphore | None" = None
        self._workers: "asyncio.Semaphore | None" = None
        self._kick: "asyncio.Event | None" = None
        self._dispatcher: "asyncio.Task | None" = None
        self._inflight: "set[asyncio.Task]" = set()
        self._backend: "ExecutionBackend | None" = None
        self._counts = {status: 0 for status in JobStatus}
        self._shards_solved = 0
        self._shards_retried = 0
        self._stories_solved = 0

    @property
    def metrics(self) -> MetricsRegistry:
        """The telemetry registry this service updates."""
        return self._metrics

    @property
    def tracer(self) -> TracerLike:
        """The tracer this service records spans into (no-op by default)."""
        return self._tracer

    @property
    def model_spec(self) -> ModelSpec:
        """The default model workload (name, params, solver, calibration)."""
        return self._spec

    def _new_autotuner(self) -> ShardAutotuner:
        return ShardAutotuner(
            max_size=self._max_shard_size if self._max_shard_size is not None else 64
        )

    def _autotuner_for(self, model: str) -> "ShardAutotuner | None":
        """The model's autotuner (lazily created), or None when disabled."""
        if not self._autotune:
            return None
        tuner = self._autotuners.get(model)
        if tuner is None:
            tuner = self._autotuners[model] = self._new_autotuner()
        return tuner

    @property
    def autotuner(self) -> "ShardAutotuner | None":
        """The default model's shard autotuner, when autotuning is enabled."""
        return self._autotuners.get(self._spec.name) if self._autotune else None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionService":
        """Create the queue machinery; must run inside an event loop."""
        if self._started:
            return self
        if self._closed:
            raise RuntimeError("the service has been closed; create a new one")
        self._slots = asyncio.Semaphore(self._queue_depth)
        self._workers = asyncio.Semaphore(self._max_workers)
        self._kick = asyncio.Event()
        self._backend = create_executor(
            self._executor_name, self._max_workers, self._executor_options
        )
        # Bind before start(): backends with their own telemetry (cluster)
        # must register their series in the shared registry so the daemon's
        # stats/metrics commands see them from the first shard on.
        self._backend.bind_metrics(self._metrics)
        self._backend.start()
        self._metrics.gauge(
            "service.worker_pool_size", labels={"executor": self._backend.kind}
        ).set(self._max_workers)
        self._dispatcher = asyncio.get_running_loop().create_task(self._dispatch_loop())
        self._started = True
        return self

    async def drain(self) -> None:
        """Suspend until every currently queued/running job has completed.

        Does not close the service and does not block new submissions -- a
        producer submitting concurrently extends the drain.  ``close()``
        calls this after barring submissions, which is the graceful-shutdown
        path; call it directly for a checkpoint ("everything submitted so
        far is done") in a long-lived daemon.
        """
        while self._has_pending() or self._inflight:
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
            else:
                # Pending but not dispatched yet: yield so the dispatcher runs.
                await asyncio.sleep(0)

    async def close(self, drain: bool = True) -> None:
        """Stop accepting jobs, settle the queue, then tear the pool down.

        With ``drain=True`` (the default) every queued and running job is
        completed first -- the graceful path.  With ``drain=False`` still
        *queued* jobs are cancelled and only shards already solving are
        awaited, for a fast abort.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        # Reject new submissions immediately -- including ones currently
        # parked on the backpressure semaphore, which re-check this flag
        # after acquiring a slot -- so nothing can be enqueued after the
        # drain loop decides the queue is empty.
        self._closed = True
        if not drain:
            for batch in [list(q) for q in self._pending.values()] + [
                list(b) for b in self._requeued
            ]:
                for job in batch:
                    if job.status is JobStatus.PENDING:
                        self._complete(job, JobStatus.CANCELLED)
            self._pending.clear()
            self._requeued.clear()
        await self.drain()
        assert self._dispatcher is not None and self._backend is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._backend.shutdown(wait=True)
        self._closed = True

    async def __aenter__(self) -> "PredictionService":
        return self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _require_open(self) -> None:
        if not self._started:
            raise RuntimeError(
                "the service is not running; use 'async with PredictionService()' "
                "or call start() first"
            )
        if self._closed:
            raise RuntimeError("the service has been closed; create a new one")

    # ------------------------------------------------------------------ #
    # Submission / results
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        name: str,
        surface: DensitySurface,
        training_times: "Sequence[float] | None" = None,
        evaluation_times: "Sequence[float] | None" = None,
        timeout: "float | None" = None,
        model: "str | None" = None,
        trace: "TraceContext | None" = None,
    ) -> PredictionJob:
        """Queue one story; suspends while the service is at ``queue_depth``.

        The returned job completes once its shard has been solved; await
        :meth:`PredictionJob.wait` (or :meth:`stream` several jobs) for the
        :class:`~repro.core.prediction.PredictionResult`.

        ``model`` overrides the service's default model for this story
        (validated against the registry immediately); the model name is part
        of the shard signature, so stories under different models are never
        batched together.

        ``name`` must be unique among the jobs currently queued or running:
        shard solves are keyed by story name, so a duplicate would silently
        receive another surface's result.  A name becomes reusable once its
        job reaches a terminal status.

        ``timeout`` is this job's wall-clock deadline in seconds, measured
        from enqueue (``None`` falls back to the service's ``job_timeout``).
        A job past its deadline completes as ``TIMED_OUT`` the moment the
        deadline fires -- even while its shard is still solving -- so no
        waiter is ever stalled by one slow story.

        ``trace`` is an optional parent :class:`TraceContext` (e.g. the
        daemon's root ``job`` span): when the service carries a live tracer,
        this story's spans attach under it, correlating daemon, service and
        worker timings in one trace.
        """
        self._require_open()
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if model is not None:
            get_model(model)  # unknown names fail the submit, not the shard
        if name in self._active_names:
            raise ValueError(
                f"a job named {name!r} is already queued or running; story "
                f"names must be unique among in-flight jobs"
            )
        # Reserve the name *before* suspending on backpressure, so a second
        # concurrent submit with the same name fails fast instead of both
        # passing the check while parked on a full queue.
        self._active_names.add(name)
        try:
            key = self._sharder.key_for(
                surface, training_times, evaluation_times, model=model
            )
            assert self._slots is not None and self._kick is not None
            await self._slots.acquire()  # backpressure
            if self._closed:
                # close() started while this submit was parked on the
                # semaphore; enqueueing now would leave the job pending
                # forever (the dispatcher is being torn down).
                self._slots.release()
                raise RuntimeError("the service has been closed; job not accepted")
        except BaseException:
            self._active_names.discard(name)
            raise
        job = PredictionJob(
            name=name,
            surface=surface,
            key=key,
            timeout=timeout if timeout is not None else self._job_timeout,
            trace=trace,
            _service=self,
        )
        job._enqueued_at = time.time()
        job._enqueued_pc = time.perf_counter()
        if self._tracer.enabled:
            job._span = self._tracer.span(
                "story",
                parent=trace,
                attributes={"story": name, "model": key.model},
            )
        self._pending.setdefault(key, []).append(job)
        self._counts[JobStatus.PENDING] += 1
        self._metrics.counter("service.jobs_submitted").inc()
        # The model label makes multi-model traffic attributable in the
        # Prometheus export without perturbing the unlabelled totals.
        self._metrics.counter(
            "service.jobs_submitted", labels={"model": key.model}
        ).inc()
        self._queue_gauge.set(
            self._counts[JobStatus.PENDING] + self._counts[JobStatus.RUNNING]
        )
        if job.timeout is not None:
            job._deadline_handle = asyncio.get_running_loop().call_later(
                job.timeout, self._expire, job
            )
        self._kick.set()
        return job

    async def stream(
        self, jobs: Iterable[PredictionJob]
    ) -> AsyncIterator[PredictionJob]:
        """Yield jobs as they finish (any terminal status), earliest first."""
        waiters = {asyncio.ensure_future(job.finished()): job for job in jobs}
        try:
            while waiters:
                done, _ = await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
                for waiter in done:
                    yield waiters.pop(waiter)
        finally:
            for waiter in waiters:
                waiter.cancel()

    async def score_corpus(
        self,
        surfaces: "Mapping[str, DensitySurface]",
        training_times: "Sequence[float] | None" = None,
        evaluation_times: "Sequence[float] | None" = None,
    ) -> "dict[str, PredictionResult]":
        """Submit a whole corpus and await every result, keyed by story name."""
        jobs = [
            await self.submit(name, surface, training_times, evaluation_times)
            for name, surface in surfaces.items()
        ]
        return {job.name: await job.wait() for job in jobs}

    def cancel(self, job: PredictionJob) -> bool:
        """Cancel a queued job; returns False once it is running or done."""
        if job.status is not JobStatus.PENDING:
            return False
        self._remove_from_queues(job)
        self._complete(job, JobStatus.CANCELLED)
        return True

    def stats(self) -> dict:
        """Counters for monitoring and smoke tests."""
        stats = {
            "model": self._spec.name,
            "queued": self._counts[JobStatus.PENDING],
            "running": self._counts[JobStatus.RUNNING],
            "succeeded": self._counts[JobStatus.SUCCEEDED],
            "failed": self._counts[JobStatus.FAILED],
            "cancelled": self._counts[JobStatus.CANCELLED],
            "timed_out": self._counts[JobStatus.TIMED_OUT],
            "shards_solved": self._shards_solved,
            "shards_retried": self._shards_retried,
            "stories_solved": self._stories_solved,
            "queue_depth": self._queue_depth,
            "max_workers": self._max_workers,
            "max_shard_size": self._max_shard_size,
            # Worker-pool identity: what this service is actually running
            # on, for operators reading `stats` / `daemon-stats`.  The
            # backend's describe() adds kind-specific detail (the process
            # backend reports its start method and crash-respawn count).
            "executor": self._executor_name,
            "workers": self._max_workers,
        }
        stats["executor_info"] = (
            self._backend.describe()
            if self._backend is not None
            else {"executor": self._executor_name, "workers": self._max_workers}
        )
        if self._autotune:
            default = self._autotuners.get(self._spec.name)
            if default is not None:
                stats["autotuner"] = default.snapshot()
            if len(self._autotuners) > 1 or default is None:
                stats["autotuner_by_model"] = {
                    name: tuner.snapshot()
                    for name, tuner in sorted(self._autotuners.items())
                }
        return stats

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _has_pending(self) -> bool:
        return bool(self._requeued) or any(self._pending.values())

    def _shard_size_limit(self, model: str) -> "int | None":
        """The batch bound in force: autotuned (per model) when enabled, else fixed."""
        tuner = self._autotuner_for(model)
        if tuner is not None:
            return tuner.recommended_size()
        return self._max_shard_size

    def _next_batch(self) -> "list[PredictionJob]":
        """Pop the next shard batch (requeued halves first, then oldest key)."""
        # Requeued halves jump the queue: their jobs have been waiting since
        # before their first dispatch, and they must not be re-merged with
        # newly submitted same-key jobs (the split is the fault-isolation).
        while self._requeued:
            batch = [
                job for job in self._requeued.popleft()
                if job.status is JobStatus.PENDING
            ]
            if batch:
                return batch
        for key in list(self._pending):
            queued = self._pending[key]
            if not queued:
                del self._pending[key]
                continue
            size = self._shard_size_limit(key.model) or len(queued)
            batch = queued[:size]
            remainder = queued[size:]
            if remainder:
                self._pending[key] = remainder
            else:
                del self._pending[key]
            return batch
        return []

    async def _dispatch_loop(self) -> None:
        assert self._kick is not None and self._workers is not None
        while True:
            await self._kick.wait()
            self._kick.clear()
            while self._has_pending():
                await self._workers.acquire()
                batch = self._next_batch()
                if not batch:
                    self._workers.release()
                    break
                task = asyncio.get_running_loop().create_task(self._run_shard(batch))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    _TERMINAL_STATUSES = (
        JobStatus.SUCCEEDED,
        JobStatus.FAILED,
        JobStatus.CANCELLED,
        JobStatus.TIMED_OUT,
    )

    def _transition(self, job: PredictionJob, status: JobStatus) -> None:
        self._counts[job.status] -= 1
        job.status = status
        self._counts[status] += 1
        if status in self._TERMINAL_STATUSES:
            self._active_names.discard(job.name)

    def _complete(
        self,
        job: PredictionJob,
        status: JobStatus,
        result: "PredictionResult | None" = None,
        error: "BaseException | None" = None,
    ) -> bool:
        """Move a job to a terminal status exactly once.

        Every completion path -- shard solved, shard failed for good,
        cancelled, deadline expired, abort on close -- funnels through here,
        so the queue slot is released exactly once per job, the deadline
        timer is always cancelled, and the per-status counters/metrics stay
        consistent no matter which path fires first.  Returns False (and does
        nothing) when the job already completed through another path.
        """
        if job.done:
            return False
        job.result = result
        job.error = error
        self._transition(job, status)
        if job._span is not None:
            # Finished but left attached: the daemon parents its
            # result-emission span to the story span after completion.
            job._span.set_attribute("status", status.value)
            if job.attempts:
                job._span.set_attribute("attempts", job.attempts)
            job._span.finish()
        if job._deadline_handle is not None:
            job._deadline_handle.cancel()
            job._deadline_handle = None
        job._done.set()
        assert self._slots is not None
        self._slots.release()
        self._metrics.counter(f"service.jobs_{status.value}").inc()
        self._metrics.counter(
            f"service.jobs_{status.value}", labels={"model": job.key.model}
        ).inc()
        self._queue_gauge.set(
            self._counts[JobStatus.PENDING] + self._counts[JobStatus.RUNNING]
        )
        return True

    def _remove_from_queues(self, job: PredictionJob) -> None:
        """Drop a pending job from the key queues and any requeued batch."""
        queued = self._pending.get(job.key, [])
        if job in queued:
            queued.remove(job)
            if not queued:
                self._pending.pop(job.key, None)
            return
        for batch in self._requeued:
            if job in batch:
                batch.remove(job)
                if not batch:
                    # An emptied batch must not keep _has_pending() true --
                    # nothing would ever kick the dispatcher to discard it
                    # and drain() would spin forever.
                    self._requeued.remove(batch)
                return

    def _expire(self, job: PredictionJob) -> None:
        """Deadline callback: complete the job as TIMED_OUT wherever it is.

        A PENDING job is pulled out of the queue; a RUNNING job's shard keeps
        solving on its worker thread (numpy solves cannot be interrupted),
        but the job completes *now* -- its waiter unblocks, its slot frees,
        and whatever the shard later produces for it is discarded.
        """
        if job.done:
            return
        if job.status is JobStatus.PENDING:
            self._remove_from_queues(job)
        error = JobTimeoutError(
            f"job {job.name!r} exceeded its {job.timeout:g}s deadline"
        )
        self._complete(job, JobStatus.TIMED_OUT, error=error)

    def _fail_or_requeue(self, jobs: "list[PredictionJob]", error: Exception) -> None:
        """Handle a shard-wide solve failure: bisect-and-requeue, bounded.

        Jobs with retry budget left are requeued -- as two halves when the
        shard had more than one story, so a deterministically poisoned story
        is bisected away from its shard-mates in O(log n) retries and fails
        alone.  Jobs out of budget fail with the shard's error.
        """
        assert self._kick is not None
        retryable = []
        for job in jobs:
            if job.attempts < self._max_shard_retries:
                job.attempts += 1
                retryable.append(job)
            else:
                self._complete(job, JobStatus.FAILED, error=error)
        if not retryable:
            return
        self._shards_retried += 1
        self._metrics.counter("service.shards_retried").inc()
        requeued_at = time.time()
        requeued_pc = time.perf_counter()
        for job in retryable:
            self._transition(job, JobStatus.PENDING)
            # Queue-wait restarts at requeue; the retry's shard span keeps
            # the link to the failed shard via the job's _shard_trace.
            job._enqueued_at = requeued_at
            job._enqueued_pc = requeued_pc
        half = (len(retryable) + 1) // 2
        for batch in (retryable[:half], retryable[half:]):
            if batch:
                self._requeued.append(batch)
        self._kick.set()

    async def _run_shard(self, jobs: "list[PredictionJob]") -> None:
        assert self._workers is not None and self._slots is not None
        assert self._backend is not None
        # A job can be cancelled or expire between dispatch and this task
        # running; those completion paths already ran, so only still-pending
        # jobs belong to this shard.  No await separates the filter from the
        # RUNNING transition, so neither path can interleave.
        jobs = [job for job in jobs if job.status is JobStatus.PENDING]
        if not jobs:
            self._workers.release()
            return
        for job in jobs:
            self._transition(job, JobStatus.RUNNING)
        dequeued_pc = time.perf_counter()
        for job in jobs:
            self._queue_wait_seconds.observe(max(dequeued_pc - job._enqueued_pc, 0.0))
        shard_span: "Span | None" = None
        if self._tracer.enabled:
            for job in jobs:
                self._tracer.record_span(
                    "queue.wait",
                    parent=job._span,
                    start=job._enqueued_at,
                    duration=max(dequeued_pc - job._enqueued_pc, 0.0),
                    attributes={"story": job.name},
                )
            # A retried half links back to the failed shard: its jobs carry
            # the failed shard span's context in _shard_trace, which becomes
            # the retry span's parent (and its retry_of attribute).
            retry_of = jobs[0]._shard_trace
            key = jobs[0].key
            attributes: "dict[str, object]" = {
                "shard": key.signature(),
                "model": key.model,
                "stories": len(jobs),
                "attempt": jobs[0].attempts,
            }
            if retry_of is not None:
                attributes["retry_of"] = retry_of.span_id
            shard_span = self._tracer.span(
                "shard.solve",
                parent=retry_of if retry_of is not None else jobs[0]._span,
                attributes=attributes,
            )
            shard_ctx = shard_span.context
            for job in jobs:
                job._shard_trace = shard_ctx
        try:
            start = time.perf_counter()
            request = ShardRequest(
                # The thread backend runs the service method (so tests that
                # monkeypatch _solve_shard intercept every solve); the
                # process backend ships the picklable payload instead.
                run_local=lambda: self._solve_shard(jobs),
                make_payload=lambda: self._payload_for(jobs),
            )
            worker, raw = await self._backend.solve(request)
            elapsed = time.perf_counter() - start
            if isinstance(raw, ShardSolveReport):
                report: "ShardSolveReport | None" = raw
                outcomes = raw.outcomes
            else:
                outcomes = raw
                report = jobs[0]._solve_report
                jobs[0]._solve_report = None
            if report is not None:
                self._absorb_report(report, worker, shard_span)
            worker_label = {"worker": worker}
            self._shard_seconds.observe(elapsed)
            self._story_seconds.observe(elapsed / len(jobs))
            # Per-worker duplicates of the solve histogram and counters
            # below make pool utilization visible in the Prometheus export
            # without perturbing the unlabelled totals.
            self._metrics.histogram(
                "service.shard_solve_seconds", labels=worker_label
            ).observe(elapsed)
            tuner = self._autotuner_for(jobs[0].key.model)
            if tuner is not None:
                tuner.observe(len(jobs), elapsed)
            solved = 0
            for job in jobs:
                if job.done:
                    # Expired mid-solve: the TIMED_OUT completion already ran
                    # and unblocked the waiter; the late result is dropped.
                    self._metrics.counter("service.late_results_discarded").inc()
                    continue
                outcome = outcomes[job.name]
                if isinstance(outcome, BaseException):
                    self._complete(job, JobStatus.FAILED, error=outcome)
                else:
                    self._complete(job, JobStatus.SUCCEEDED, result=outcome)
                    solved += 1
            if solved:
                self._shards_solved += 1
                self._stories_solved += solved
                self._metrics.counter("service.shards_solved").inc()
                self._metrics.counter(
                    "service.shards_solved", labels=worker_label
                ).inc()
                self._metrics.counter("service.stories_solved").inc(solved)
                self._metrics.counter(
                    "service.stories_solved", labels={"model": jobs[0].key.model}
                ).inc(solved)
                self._metrics.counter(
                    "service.stories_solved", labels=worker_label
                ).inc(solved)
        except Exception as error:  # noqa: BLE001 - failures surface via job.wait()
            if isinstance(error, WorkerCrashError):
                # The backend already respawned its pool; count the crash so
                # operators can tell worker death from poisoned shards.
                self._metrics.counter("service.worker_crashes").inc()
            if shard_span is not None:
                shard_span.set_attribute("error", type(error).__name__)
            self._fail_or_requeue([job for job in jobs if not job.done], error)
        finally:
            if shard_span is not None:
                shard_span.finish()
            self._workers.release()

    def _absorb_report(
        self,
        report: ShardSolveReport,
        worker: str,
        shard_span: "Span | None",
    ) -> None:
        """Fold a shard's solve report into telemetry and the trace.

        Worker-collected spans (the process path) are ingested into the
        service tracer -- their trace/span ids already point at the shard
        span that rode out in the payload, so they re-parent with no
        rewriting.  Phase wall times feed the per-phase histograms, and the
        operator-cache delta lands as shard-span attributes.
        """
        for phase, seconds in report.phase_seconds.items():
            self._metrics.histogram(
                "service.solve_phase_seconds", labels={"phase": phase}
            ).observe(seconds)
        if self._tracer.enabled and report.spans:
            self._tracer.ingest(
                [dict(record, attributes=dict(record.get("attributes") or {}, worker=worker))
                 for record in report.spans]
            )
        if shard_span is not None:
            shard_span.set_attribute("worker", worker)
            shard_span.set_attribute("cache_hits", report.cache_hits)
            shard_span.set_attribute("cache_misses", report.cache_misses)

    def _spec_for(self, model_name: str) -> ModelSpec:
        """The workload spec of one shard's model.

        The default model keeps the service's full spec (including any
        explicit DL parameters); per-story override models run with the
        shared solver/calibration configs plus their ``model_overrides``
        params -- before that mapping existed, overridden params were
        silently dropped here and override models always ran with registry
        defaults.  Specs are cached per model (they are frozen).
        """
        if model_name == self._spec.name:
            return self._spec
        spec = self._override_specs.get(model_name)
        if spec is None:
            spec = ModelSpec(
                name=model_name,
                params=self._model_overrides.get(model_name, {}),
                solver=self._spec.solver,
                calibration=self._spec.calibration,
            )
            self._override_specs[model_name] = spec
        return spec

    def _payload_for(self, jobs: "list[PredictionJob]") -> ShardPayload:
        """The shard as plain picklable data (the process backend's input)."""
        key = jobs[0].key
        return ShardPayload(
            key=key,
            spec=self._spec_for(key.model),
            surfaces={job.name: job.surface for job in jobs},
            trace=jobs[0]._shard_trace,
        )

    def _solve_shard(
        self, jobs: "list[PredictionJob]"
    ) -> "dict[str, PredictionResult | BaseException]":
        """Synchronous shard solve, run on a worker thread.

        A thin wrapper over the backend-shared
        :func:`~repro.service.execution.solve_shard_payload` (the single
        shard-numerics path): the shard's model is resolved from the
        registry by the shard key's model name; for ``dl`` the fitter wraps
        the synchronous :class:`~repro.core.prediction.BatchPredictor`
        verbatim, so results stay bit-identical to the classic path and
        keep its batched spatial-group solves.  A story whose *fit* fails
        (bad surface, calibration error) is mapped to its own exception
        without poisoning its shard-mates; only a failure of the joint
        evaluate solve is shard-wide (and surfaces through the caller's
        except path).

        Runs through :func:`~repro.service.execution.solve_shard_report` so
        phase timings (and spans, when tracing is on) are captured on the
        thread path too; the report rides back to ``_run_shard`` on the
        batch's first job, keeping this method's classic dict contract for
        the tests that wrap it.
        """
        report = solve_shard_report(self._payload_for(jobs), tracer=self._tracer)
        jobs[0]._solve_report = report
        return report.outcomes


def score_corpus_sync(
    surfaces: "Mapping[str, DensitySurface]",
    training_times: "Sequence[float] | None" = None,
    evaluation_times: "Sequence[float] | None" = None,
    **service_kwargs,
) -> "dict[str, PredictionResult]":
    """Score a corpus through the service from synchronous code.

    Spins up a :class:`PredictionService` (keyword arguments are forwarded to
    its constructor) inside ``asyncio.run``, scores every story and returns
    the per-story results.  The benchmark's ``service`` section and the
    examples use this; the CLI's ``serve-batch`` drives the service directly
    so it can stream each result as it completes.
    """

    async def _run() -> "dict[str, PredictionResult]":
        async with PredictionService(**service_kwargs) as service:
            return await service.score_corpus(surfaces, training_times, evaluation_times)

    return asyncio.run(_run())
