"""The multi-story prediction service layer.

Wraps the batched predictor behind an async job queue so whole corpora of
cascades are scored concurrently:

* :mod:`repro.service.sharding` -- group stories by the spatial signature
  (grid, dt, backend, operator mode) that lets them share one batched solve
  and its cached operator factorizations.
* :mod:`repro.service.service` -- the :class:`PredictionService`: bounded
  async worker pool with submit/await/stream APIs, per-job status,
  cancellation and queue-depth backpressure.
* :mod:`repro.service.manifest` -- the story-manifest format consumed by the
  ``repro serve-batch`` CLI.
"""

from repro.service.manifest import (
    ManifestError,
    ManifestStory,
    ResolvedManifest,
    StoryManifest,
    load_manifest,
    parse_manifest,
    resolve_manifest,
)
from repro.service.service import (
    JobCancelledError,
    JobStatus,
    PredictionJob,
    PredictionService,
    score_corpus_sync,
)
from repro.service.sharding import CorpusSharder, Shard, ShardKey

__all__ = [
    "CorpusSharder",
    "Shard",
    "ShardKey",
    "JobCancelledError",
    "JobStatus",
    "PredictionJob",
    "PredictionService",
    "score_corpus_sync",
    "ManifestError",
    "ManifestStory",
    "ResolvedManifest",
    "StoryManifest",
    "load_manifest",
    "parse_manifest",
    "resolve_manifest",
]
