"""The multi-story prediction service layer.

Wraps any registered prediction model (:mod:`repro.models`) behind an async
job queue so whole corpora of cascades are scored concurrently:

* :mod:`repro.service.sharding` -- group stories by the spatial signature
  (grid, dt, backend, operator mode, model name) that lets them share one
  batched solve and its cached operator factorizations, plus the
  :class:`ShardAutotuner` that sizes shards from observed solve times.
  Stories scored by different models never share a shard.
* :mod:`repro.service.service` -- the :class:`PredictionService`: bounded
  async worker pool with submit/await/stream APIs, per-job status and
  wall-clock timeouts, cancellation, bounded shard retry with bisection,
  queue-depth backpressure and graceful drain.
* :mod:`repro.service.execution` -- pluggable :class:`ExecutionBackend`
  registry deciding *where* shard solves run: the in-process ``thread``
  pool or the ``process`` pool (picklable :class:`ShardPayload` per shard,
  per-process operator caches, crashed-worker respawn).
* :mod:`repro.service.cluster` -- the ``cluster`` backend: a router
  daemon's :class:`WorkerPool` fans shards out to N worker daemons over
  the socket protocol, hash-routed for worker-cache affinity with work
  stealing and dead-worker rerouting into the bisection-retry path.
* :mod:`repro.service.telemetry` -- the in-process
  :class:`MetricsRegistry` (counters, gauges, solve-time histograms) the
  service and daemon report into.
* :mod:`repro.service.transport` -- daemon addresses (``unix:PATH``,
  ``tcp:HOST:PORT``, ``stdio``), :class:`Listener` implementations and the
  transport registry behind ``repro daemon --listen`` and
  :meth:`DaemonClient.connect`.
* :mod:`repro.service.session` -- per-connection protocol sessions:
  JSON-lines framing, request routing and the per-client
  :class:`ClientQuota` (typed quota-rejection error events).
* :mod:`repro.service.journal` -- the optional restart-surviving
  :class:`JobJournal`: accepted jobs are journalled before they are
  acknowledged, and a restarted daemon reports the previous process's
  in-flight jobs as ``interrupted`` instead of forgetting them.
* :mod:`repro.service.daemon` -- the long-lived :class:`PredictionDaemon`
  composing the three layers above with the job lifecycle (``repro
  daemon`` / ``repro submit`` / ``repro daemon-stats``), plus the matching
  :class:`DaemonClient`.
* :mod:`repro.service.manifest` -- the story-manifest format consumed by the
  ``repro serve-batch`` CLI and the daemon's ``submit`` requests, opened
  through the single :func:`open_corpus` facade (inline surfaces, corpus
  refs, or a :mod:`repro.corpus` store).
* :mod:`repro.service.tracing` -- the dependency-free :class:`Tracer` /
  :class:`Span` API behind ``repro daemon --trace-dir`` and ``repro
  trace``: a :class:`TraceContext` propagates from the submit request
  through job records, :class:`ShardPayload` (across the process-executor
  pickle boundary) and the journal, so one job reconstructs as a single
  span tree with critical-path timing and Chrome-trace / speedscope
  exports.  Zero-cost when disabled: the default :data:`NOOP_TRACER`
  makes every instrumentation site a constant attribute check.
* :mod:`repro.service.logs` -- structured JSON-lines logging for the
  daemon's job state changes (the ``repro.service`` logger; one record
  per event with ``job_id`` / ``trace_id`` fields).
"""

from repro.service.cluster import (
    ClusterExecutionBackend,
    ClusterShardError,
    WorkerPool,
    route_hash,
)
from repro.service.daemon import (
    DaemonClient,
    DaemonJob,
    PredictionDaemon,
    story_result_payload,
)
from repro.service.journal import JobJournal, ReplayedJob, replay_records
from repro.service.execution import (
    ExecutionBackend,
    ProcessExecutionBackend,
    ShardPayload,
    ShardRequest,
    ShardSolveReport,
    ThreadExecutionBackend,
    WorkerCrashError,
    available_executors,
    create_executor,
    get_executor_factory,
    register_executor,
    solve_shard_payload,
    solve_shard_report,
    unregister_executor,
)
from repro.service.logs import (
    SERVICE_LOGGER_NAME,
    JsonLineFormatter,
    configure_service_logging,
    log_job_event,
    service_logger,
)
from repro.service.manifest import (
    ManifestError,
    ManifestStory,
    ResolvedManifest,
    StoryManifest,
    load_manifest,
    open_corpus,
    parse_manifest,
    resolve_manifest,
)
from repro.service.service import (
    JobCancelledError,
    JobStatus,
    JobTimeoutError,
    PredictionJob,
    PredictionService,
    score_corpus_sync,
)
from repro.service.session import ClientQuota, ClientSession
from repro.service.sharding import CorpusSharder, Shard, ShardAutotuner, ShardKey
from repro.service.telemetry import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.tracing import (
    NOOP_TRACER,
    NoOpTracer,
    Span,
    SpanNode,
    TraceContext,
    Tracer,
    chrome_trace,
    critical_path,
    load_span_file,
    render_trace,
    span_tree,
    speedscope_profile,
    trace_for_job,
    validate_trace,
    worker_attribution,
)
from repro.service.transport import (
    Address,
    AddressError,
    Connection,
    Listener,
    StdioListener,
    TcpListener,
    TransportSpec,
    UnixListener,
    available_transports,
    create_listener,
    get_transport,
    load_worker_addresses,
    open_client_connection,
    parse_address,
    register_transport,
    transport_descriptions,
    unregister_transport,
)

__all__ = [
    "CorpusSharder",
    "Shard",
    "ShardAutotuner",
    "ShardKey",
    "ClusterExecutionBackend",
    "ClusterShardError",
    "WorkerPool",
    "route_hash",
    "ExecutionBackend",
    "ProcessExecutionBackend",
    "ShardPayload",
    "ShardRequest",
    "ShardSolveReport",
    "ThreadExecutionBackend",
    "WorkerCrashError",
    "available_executors",
    "create_executor",
    "get_executor_factory",
    "register_executor",
    "solve_shard_payload",
    "solve_shard_report",
    "unregister_executor",
    "NOOP_TRACER",
    "NoOpTracer",
    "Span",
    "SpanNode",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "load_span_file",
    "render_trace",
    "span_tree",
    "speedscope_profile",
    "trace_for_job",
    "validate_trace",
    "worker_attribution",
    "SERVICE_LOGGER_NAME",
    "JsonLineFormatter",
    "configure_service_logging",
    "log_job_event",
    "service_logger",
    "JobCancelledError",
    "JobStatus",
    "JobTimeoutError",
    "PredictionJob",
    "PredictionService",
    "score_corpus_sync",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DaemonClient",
    "DaemonJob",
    "PredictionDaemon",
    "story_result_payload",
    "Address",
    "AddressError",
    "Connection",
    "Listener",
    "StdioListener",
    "TcpListener",
    "TransportSpec",
    "UnixListener",
    "available_transports",
    "create_listener",
    "get_transport",
    "load_worker_addresses",
    "open_client_connection",
    "parse_address",
    "register_transport",
    "transport_descriptions",
    "unregister_transport",
    "ClientQuota",
    "ClientSession",
    "JobJournal",
    "ReplayedJob",
    "replay_records",
    "ManifestError",
    "ManifestStory",
    "ResolvedManifest",
    "StoryManifest",
    "load_manifest",
    "open_corpus",
    "parse_manifest",
    "resolve_manifest",
]
