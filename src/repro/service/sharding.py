"""Corpus sharding: group stories that can share one batched solve.

The batched solver engine advances every story of a shard as the columns of
one state matrix, so all members must share the *spatial signature* of the
solve: the distance interval, the initial (calibration-anchor) time, the
grid resolution and time step, and the solver backend / operator mode --
the values that key the operator cache in
:mod:`repro.numerics.operator_cache`.  Stories with different training or
evaluation windows also cannot ride in the same batch, so those windows are
part of the key as well.

:class:`CorpusSharder` computes that signature per story and groups a corpus
into :class:`Shard` objects, optionally splitting oversized groups so one
pathological signature cannot monopolise a worker of the
:class:`~repro.service.service.PredictionService`.  Each shard amortizes one
cached operator factorization per (dt, diffusion rate) across all of its
stories.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cascade.density import DensitySurface
from repro.core.config import SolverConfig, merge_solver_config


@dataclass(frozen=True)
class ShardKey:
    """Hashable spatial signature of one batched solve.

    Attributes
    ----------
    lower, upper:
        Distance interval ``[l, L]`` of the stories' surfaces.
    initial_time:
        The phi anchor time (first training hour).
    points_per_unit, max_step:
        Grid resolution and internal time step of the solve -- together with
        the interval these determine the cached operator's ``(n, dx, dt)``.
    backend, operator:
        Solver backend name and operator factorization mode.
    training_times:
        The shared training window, or ``None`` when every story defaults to
        its own first observed hours.
    evaluation_times:
        The shared evaluation window, or ``None`` for the per-story default
        (hours 2..6 relative to the first observed hour).
    model:
        Registry name of the prediction model scoring the shard.  Part of
        the signature so shards never mix models: stories scored by
        different models cannot share a batched solve (or even a meaningful
        joint fit), no matter how alike their spatial setups are.
    """

    lower: float
    upper: float
    initial_time: float
    points_per_unit: int
    max_step: float
    backend: str
    operator: str
    training_times: "tuple[float, ...] | None" = None
    evaluation_times: "tuple[float, ...] | None" = None
    model: str = "dl"

    def signature(self) -> str:
        """Compact deterministic label for trace attributes and logs.

        Deliberately not ``hash()``-based (string hashing is randomized per
        process), so the same shard labels identically across daemon
        restarts and process workers.
        """
        return (
            f"{self.model}@[{self.lower:g},{self.upper:g}]"
            f":ppu{self.points_per_unit}:{self.backend}:{self.operator}"
        )


@dataclass
class Shard:
    """One group of stories advanced together in a single batched solve."""

    key: ShardKey
    surfaces: "dict[str, DensitySurface]" = field(default_factory=dict)

    @property
    def story_names(self) -> tuple[str, ...]:
        """Names of the shard's stories, in insertion order."""
        return tuple(self.surfaces)

    def __len__(self) -> int:
        return len(self.surfaces)


class ShardAutotuner:
    """Size shards from an EWMA of observed per-story solve times.

    A fixed shard size is wrong in both directions: when stories are cheap
    (parameters supplied, operators cached) large shards amortize best, but
    when each story pays a cold calibration a large shard turns into one
    multi-second batch that starves the queue and inflates per-story latency.
    The autotuner closes that loop: after every shard solve the service calls
    :meth:`observe` with the story count and wall time, an exponentially
    weighted moving average tracks the per-story cost, and
    :meth:`recommended_size` returns the largest shard that stays within the
    target per-shard latency budget.

    Parameters
    ----------
    target_shard_seconds:
        Latency budget one shard solve should stay under; the recommended
        size is ``target / ewma_story_seconds`` clamped to the bounds.
    alpha:
        EWMA smoothing factor in (0, 1]; higher reacts faster, lower
        smooths noisy timings harder.
    min_size, max_size:
        Clamp bounds of the recommendation.  ``min_size`` keeps the pipeline
        moving even when stories look arbitrarily expensive; ``max_size``
        caps batch memory no matter how cheap they look.
    initial_story_seconds:
        Prior for the per-story cost before the first observation, so the
        very first recommendation is already sensible.

    Thread-safety: ``observe`` runs on the event-loop thread after each
    shard completes, but a lock is taken anyway so external monitoring
    threads may read ``ewma_story_seconds`` / call ``recommended_size``
    concurrently.
    """

    def __init__(
        self,
        target_shard_seconds: float = 0.5,
        alpha: float = 0.3,
        min_size: int = 1,
        max_size: int = 64,
        initial_story_seconds: float = 0.05,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if target_shard_seconds <= 0:
            raise ValueError(
                f"target_shard_seconds must be > 0, got {target_shard_seconds}"
            )
        if min_size < 1 or max_size < min_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size, got [{min_size}, {max_size}]"
            )
        if initial_story_seconds <= 0:
            raise ValueError(
                f"initial_story_seconds must be > 0, got {initial_story_seconds}"
            )
        self._target = float(target_shard_seconds)
        self._alpha = float(alpha)
        self._min_size = int(min_size)
        self._max_size = int(max_size)
        self._ewma = float(initial_story_seconds)
        self._observations = 0
        self._lock = threading.Lock()

    @property
    def ewma_story_seconds(self) -> float:
        """Current smoothed estimate of one story's solve time."""
        with self._lock:
            return self._ewma

    @property
    def observations(self) -> int:
        """How many shard solves have been observed."""
        with self._lock:
            return self._observations

    def observe(self, stories: int, seconds: float) -> None:
        """Fold one shard solve (``stories`` stories in ``seconds``) into the EWMA."""
        if stories < 1:
            raise ValueError(f"stories must be >= 1, got {stories}")
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        per_story = seconds / stories
        with self._lock:
            self._ewma += self._alpha * (per_story - self._ewma)
            self._observations += 1

    def recommended_size(self) -> int:
        """Largest shard expected to finish within the latency target."""
        with self._lock:
            # Floor the divisor: observe() accepts seconds == 0 (clock
            # granularity on very fast solves), and with alpha == 1 the EWMA
            # can then be exactly 0 -- which must recommend the max, not
            # raise ZeroDivisionError inside the dispatcher.
            size = int(self._target / max(self._ewma, 1e-9))
        return max(self._min_size, min(self._max_size, size))

    def snapshot(self) -> dict:
        """Plain-dict state for the daemon's ``stats`` command."""
        with self._lock:
            ewma, observations = self._ewma, self._observations
        return {
            "target_shard_seconds": self._target,
            "alpha": self._alpha,
            "min_size": self._min_size,
            "max_size": self._max_size,
            "ewma_story_seconds": ewma,
            "observations": observations,
            "recommended_size": self.recommended_size(),
        }


class CorpusSharder:
    """Group a corpus of story surfaces by batched-solve compatibility.

    Parameters
    ----------
    solver:
        The :class:`~repro.core.config.SolverConfig` the shards will be
        scored with; baked into every :class:`ShardKey` so shards from
        differently configured sharders never mix.  The individual legacy
        knobs below remain accepted as a thin shim.
    points_per_unit, max_step, backend, operator:
        Legacy solver knobs; prefer ``solver=SolverConfig(...)``.
    model:
        Default registry name of the prediction model; joins every
        :class:`ShardKey` so shards never mix models.  Overridable per
        story via :meth:`key_for` / :meth:`shard`.
    max_shard_size:
        Upper bound on stories per shard.  Groups larger than this are split
        into consecutive chunks (each chunk still shares its factorizations);
        ``None`` keeps every group whole.
    """

    def __init__(
        self,
        points_per_unit: "int | None" = None,
        max_step: "float | None" = None,
        backend: "str | None" = None,
        operator: "str | None" = None,
        max_shard_size: "int | None" = None,
        *,
        model: str = "dl",
        solver: "SolverConfig | None" = None,
    ) -> None:
        if max_shard_size is not None and max_shard_size < 1:
            raise ValueError(f"max_shard_size must be >= 1, got {max_shard_size}")
        if not model:
            raise ValueError("the sharder needs a non-empty default model name")
        self._solver = merge_solver_config(
            solver, points_per_unit, max_step, backend, operator
        )
        self._model = model
        self._max_shard_size = max_shard_size

    @property
    def max_shard_size(self) -> "int | None":
        """Largest number of stories one shard may hold (None = unbounded)."""
        return self._max_shard_size

    @property
    def solver_config(self) -> SolverConfig:
        """The solver configuration baked into every shard key."""
        return self._solver

    @property
    def model(self) -> str:
        """The default model name baked into shard keys."""
        return self._model

    def key_for(
        self,
        surface: DensitySurface,
        training_times: "Sequence[float] | None" = None,
        evaluation_times: "Sequence[float] | None" = None,
        model: "str | None" = None,
    ) -> ShardKey:
        """The shard signature of one story surface.

        The initial time mirrors :meth:`repro.core.prediction.BatchPredictor.fit_story`:
        the first training hour when a window is given, else the surface's
        first observed hour.  ``model`` overrides the sharder's default
        model name for this story.
        """
        if training_times is not None:
            window = tuple(sorted(float(t) for t in training_times))
            if not window:
                raise ValueError("training_times must not be empty")
            initial_time = window[0]
        else:
            window = None
            if surface.times.size == 0:
                raise ValueError("the surface has no observed times")
            initial_time = float(surface.times[0])
        evaluation = (
            tuple(sorted(float(t) for t in evaluation_times))
            if evaluation_times is not None
            else None
        )
        return ShardKey(
            lower=float(surface.distances[0]),
            upper=float(surface.distances[-1]),
            initial_time=initial_time,
            points_per_unit=self._solver.points_per_unit,
            max_step=self._solver.max_step,
            backend=self._solver.backend,
            operator=self._solver.operator,
            training_times=window,
            evaluation_times=evaluation,
            model=model if model is not None else self._model,
        )

    def shard(
        self,
        surfaces: "Mapping[str, DensitySurface]",
        training_times: "Sequence[float] | None" = None,
        evaluation_times: "Sequence[float] | None" = None,
        models: "Mapping[str, str] | None" = None,
    ) -> "list[Shard]":
        """Split a corpus into shards, preserving story insertion order.

        Stories with the same signature land in the same shard (until
        ``max_shard_size`` forces a new chunk); the concatenation of all
        shards contains every story exactly once.  ``models`` optionally
        assigns per-story model names (missing stories use the sharder's
        default); stories under different models never share a shard.
        """
        shards: "list[Shard]" = []
        open_shard_by_key: "dict[ShardKey, Shard]" = {}
        for name, surface in surfaces.items():
            key = self.key_for(
                surface,
                training_times,
                evaluation_times,
                model=models.get(name) if models is not None else None,
            )
            shard = open_shard_by_key.get(key)
            if shard is None:
                shard = Shard(key=key)
                shards.append(shard)
                open_shard_by_key[key] = shard
            shard.surfaces[name] = surface
            if self._max_shard_size is not None and len(shard) >= self._max_shard_size:
                # The chunk is full: the next story with this key opens a new one.
                del open_shard_by_key[key]
        return shards
