"""FIG-4 -- Density profiles over distance, one line per hour (story s1).

Regenerates Figure 4: the density of influenced users of the most popular
story as a function of distance, with one profile per hour from 1 to 50.
The figure's purpose in the paper is to show that the hour-over-hour
increments shrink as time passes, which motivates modelling the growth rate
r as a decreasing function of time (Equation 7 / Figure 6).
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import run_fig4_density_profiles
from repro.io.tables import format_table, write_csv


def test_fig4_density_profiles(benchmark, bench_context, results_dir):
    result = run_once(benchmark, run_fig4_density_profiles, bench_context, "s1")
    distances = result["distances"]
    times = result["times"]
    profiles = result["profiles"]

    shown_hours = [1, 2, 3, 4, 6, 10, 20, 50]
    rows = []
    for hour in shown_hours:
        index = int(np.argmin(np.abs(times - hour)))
        row = {"t (h)": float(times[index])}
        row.update({f"x={d:g}": float(v) for d, v in zip(distances, profiles[index])})
        rows.append(row)
    print()
    print(format_table(rows, title="Figure 4 (reproduced) -- density vs distance per hour, s1"))
    write_csv(rows, results_dir / "fig4_density_profiles.csv")

    # Profiles are ordered: each later hour lies on or above each earlier hour.
    assert np.all(np.diff(profiles, axis=0) >= -1e-9)

    # The increments shrink with time at every distance: the mean increment
    # over the first five hours exceeds the mean over the last five hours.
    increments = np.diff(profiles, axis=0)
    early = increments[:5].mean(axis=0)
    late = increments[-5:].mean(axis=0)
    assert np.all(early >= late - 1e-9)
