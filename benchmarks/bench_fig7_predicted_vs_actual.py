"""FIG-7 -- Predicted vs actual density of story s1 (both distance metrics).

Regenerates Figure 7(a) and 7(b): the DL model is anchored to the hour-1
snapshot of story s1 and integrated forward to hours 2-6; the predicted
profiles are compared against the observed ones for

* (a) friendship-hop distance (paper parameters: d = 0.01, K = 25,
  r(t) = 1.4 e^{-1.5 (t-1)} + 0.25), and
* (b) shared-interest distance (d = 0.05, K = 60, r(t) = 1.6 e^{-(t-1)} + 0.1).

As in the paper, the parameters are tuned to the story being predicted (we
calibrate them from the first six observed hours); the figure benchmark
checks that the predicted profiles track the actual ones closely at every
hour.
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import run_fig7_predicted_vs_actual
from repro.analysis.reports import render_prediction_comparison
from repro.io.tables import write_csv


def _export(result, results_dir, name):
    rows = []
    for time in result.accuracy_table.times:
        for distance in result.predicted.distances:
            rows.append(
                {
                    "t": float(time),
                    "distance": float(distance),
                    "actual": result.actual.density(float(distance), float(time)),
                    "predicted": result.predicted.density(float(distance), float(time)),
                }
            )
    write_csv(rows, results_dir / name)


def test_fig7a_predicted_vs_actual_hops(benchmark, bench_context, results_dir):
    result = run_once(
        benchmark, run_fig7_predicted_vs_actual, bench_context, "s1", "hops"
    )
    print()
    print(render_prediction_comparison(result, title="Figure 7(a) -- s1, friendship hops"))
    _export(result, results_dir, "fig7a_predicted_vs_actual_hops.csv")

    assert result.overall_accuracy > 0.80
    assert result.diagnostics["bounds_ok"]
    assert result.diagnostics["monotone_in_time"]
    # Predicted profiles are close to the actual ones in absolute terms too.
    for time in (2.0, 4.0, 6.0):
        predicted = result.predicted.profile(time)
        actual = result.actual.profile(time)
        assert np.all(np.abs(predicted - actual) < 0.35 * max(actual.max(), 1.0))


def test_fig7b_predicted_vs_actual_interests(benchmark, bench_context, results_dir):
    result = run_once(
        benchmark, run_fig7_predicted_vs_actual, bench_context, "s1", "interests"
    )
    print()
    print(render_prediction_comparison(result, title="Figure 7(b) -- s1, shared interests"))
    _export(result, results_dir, "fig7b_predicted_vs_actual_interests.csv")

    assert result.overall_accuracy > 0.75
    assert result.diagnostics["bounds_ok"]
    assert result.diagnostics["monotone_in_time"]
