"""FIG-2 -- Distribution of users over friendship-hop distances.

Regenerates Figure 2 of the paper: for each of the four representative
stories, the fraction of reachable users at hop distance 1..10 from the
story's initiator.  The paper's headline observations are that the majority
of users sit at distances 2-5 and that distance 3 alone accounts for the
largest share (>40% in the original dataset).
"""

from conftest import run_once

from repro.analysis.experiments import run_fig2_distance_distribution
from repro.analysis.reports import render_figure_series
from repro.io.tables import write_csv


def test_fig2_distance_distribution(benchmark, bench_context, results_dir):
    result = run_once(benchmark, run_fig2_distance_distribution, bench_context, 10)

    print()
    print(render_figure_series(result, x_label="hop distance", title="Figure 2 (reproduced)"))

    rows = []
    for distance in sorted({d for line in result.values() for d in line}):
        row = {"distance": distance}
        row.update({story: result[story].get(distance, 0.0) for story in result})
        rows.append(row)
    write_csv(rows, results_dir / "fig2_distance_distribution.csv")

    # Shape assertions mirroring the paper's observations.
    for story, fractions in result.items():
        peak = max(fractions, key=fractions.get)
        assert 2 <= peak <= 5, f"{story}: distance histogram should peak between 2 and 5"
        bulk = sum(fractions.get(d, 0.0) for d in range(2, 6))
        assert bulk > 0.6, f"{story}: the bulk of users should sit at distances 2-5"
        tail = sum(fractions.get(d, 0.0) for d in range(6, 11))
        assert tail < 0.2, f"{story}: distances 6-10 should hold only a small tail"
