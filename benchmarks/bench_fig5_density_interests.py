"""FIG-5 -- Density of influenced users over 50 hours (shared interests).

Regenerates Figure 5(a-d): the density of influenced users per shared-interest
distance group (1-5) over the 50-hour window, for all four representative
stories.  The paper's key observation is that, for every story, the density
decreases as the interest distance grows -- shared interests are a meaningful
spatial coordinate for the DL model.
"""

from conftest import run_once

from repro.analysis.experiments import run_fig5_density_interests
from repro.analysis.reports import render_density_surface
from repro.io.tables import write_csv


def test_fig5_density_over_time_interests(benchmark, bench_context, results_dir):
    surfaces = run_once(benchmark, run_fig5_density_interests, bench_context)

    rows = []
    print()
    for story, surface in surfaces.items():
        print(render_density_surface(
            surface,
            times=[1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0],
            title=f"Figure 5 ({story}) -- density over time, interest distance",
        ))
        print()
        for time in surface.times:
            row = {"story": story, "t": float(time)}
            row.update({f"group={d:g}": v for d, v in zip(surface.distances, surface.profile(float(time)))})
            rows.append(row)
    write_csv(rows, results_dir / "fig5_density_interests.csv")

    for story, surface in surfaces.items():
        assert surface.is_monotone_in_time()
        final = surface.values[-1]
        # The paper's pattern: density decreases with the interest-distance
        # group.  Group 1 must dominate and group 5 must be the smallest
        # non-trivial group for every story.
        assert final[0] == max(final), f"{story}: group 1 should have the highest density"
        assert final[0] > final[-1], f"{story}: group 5 should have lower density than group 1"

    # For the most popular story the decrease is monotone across all groups.
    s1_final = surfaces["s1"].values[-1]
    assert all(s1_final[i] >= s1_final[i + 1] for i in range(len(s1_final) - 1))
