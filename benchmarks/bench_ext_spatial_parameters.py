"""EXT-1 -- Growth rate as a function of both time and distance (future work).

Section V of the paper proposes letting r, d and K depend on distance as well
as time, motivated by the interest-distance-5 group that the uniform model
predicts poorly (Table II).  This benchmark quantifies that extension on the
reproduction corpus:

1. calibrate the standard (spatially uniform) DL model on story s1 with the
   shared-interest distance metric;
2. calibrate the spatially scaled growth rate on top of it
   (:mod:`repro.core.extensions`);
3. compare the two models' Table-II-style accuracy.

Expected shape: the spatially scaled model fits the training window at least
as well as the uniform model and improves the hardest distance group.
"""

import numpy as np
from conftest import run_once

from repro.core.accuracy import build_accuracy_table
from repro.core.calibration import calibrate_dl_model
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.extensions import calibrate_spatial_scaling
from repro.core.initial_density import InitialDensity
from repro.io.tables import format_table, write_csv

TRAINING_HOURS = [float(t) for t in range(1, 7)]
EVALUATION_HOURS = [float(t) for t in range(2, 7)]


def _run_extension_comparison(context):
    observed = context.dataset.interest_density_surface(
        "s1", times=context.observation_times()
    )
    phi = InitialDensity.from_surface(observed.restrict_times(TRAINING_HOURS))

    uniform = calibrate_dl_model(observed, training_times=TRAINING_HOURS)
    spatial = calibrate_spatial_scaling(observed, uniform)

    actual = observed.restrict_times(EVALUATION_HOURS)
    tables = {}
    for name, calibration in (("uniform", uniform), ("spatially_scaled", spatial)):
        model = DiffusiveLogisticModel(calibration.parameters, points_per_unit=20, max_step=0.02)
        predicted = model.predict(phi, EVALUATION_HOURS)
        tables[name] = build_accuracy_table(predicted, actual, times=EVALUATION_HOURS)
    return uniform, spatial, tables


def test_ext1_spatially_varying_growth_rate(benchmark, bench_context, results_dir):
    uniform, spatial, tables = run_once(benchmark, _run_extension_comparison, bench_context)

    rows = []
    for name, table in tables.items():
        row = {"model": name, "overall": table.overall_average}
        row.update({f"group {d:g}": table.row_average(float(d)) for d in table.distances})
        rows.append(row)
    print()
    print(format_table(rows, title="EXT-1 -- uniform vs spatially scaled growth rate (s1, interests)"))
    write_csv(rows, results_dir / "ext1_spatial_parameters.csv")

    # The extension must not fit the training window worse than the base model.
    assert spatial.loss <= uniform.loss + 1e-9

    uniform_table = tables["uniform"]
    spatial_table = tables["spatially_scaled"]
    assert spatial_table.overall_average >= uniform_table.overall_average - 0.02

    # The group the uniform model struggles with most should improve.
    worst_group = float(
        uniform_table.distances[int(np.argmin([uniform_table.row_average(float(d)) for d in uniform_table.distances]))]
    )
    assert spatial_table.row_average(worst_group) >= uniform_table.row_average(worst_group) - 1e-9
