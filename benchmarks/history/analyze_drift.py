"""Trend analysis over the benchmark-history ratio artifacts.

``check_regression.py`` appends one JSON line of dimensionless ratios per
gate run to ``benchmarks/history/ratios.jsonl``, and CI uploads the file as
an artifact.  A single run can only be gated against the 1.3x band; a
*slow monotone drift* -- each run a few percent worse, never tripping the
band -- stays invisible.  This script closes that gap: it concatenates any
number of history files (downloaded CI artifacts, the local file, or both),
rebuilds each ratio's time series, and flags series that have been moving
monotonically in the bad direction (down for speedups/floors, up for
equivalence deltas) across the most recent runs while still inside the
regression band::

    python benchmarks/history/analyze_drift.py benchmarks/history/ratios.jsonl
    python benchmarks/history/analyze_drift.py run1/ratios.jsonl run2/ratios.jsonl

By default the script always exits 0 (it is wired as a *non-gating* CI
step: drift is a heads-up for a human, not a merge blocker); ``--gate``
turns flagged drifts into exit code 1 for local use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: A series is flagged when its last ``--window`` values are strictly
#: monotone in the bad direction AND the total movement across the window
#: exceeds this fraction of the window's starting value.  Both conditions
#: together keep one-off noise (non-monotone) and flat jitter (movement
#: below the threshold) from flagging.
DEFAULT_WINDOW = 4
DEFAULT_THRESHOLD = 0.05


def load_records(paths: "list[str]") -> "list[dict]":
    """Concatenate history files in argument order, skipping invalid lines."""
    records: "list[dict]" = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(f"warning: skipping invalid JSON line in {path}", file=sys.stderr)
                continue
            if isinstance(record, dict):
                records.append(record)
    # Best-effort chronological order: records carry the benchmark's
    # timestamp; lines without one keep their file order (stable sort).
    records.sort(key=lambda r: r.get("timestamp") or 0.0)
    return records


def build_series(records: "list[dict]") -> "dict[tuple[str, str], list[float]]":
    """(kind, metric path) -> chronological values.  Kinds: ratio, delta."""
    series: "dict[tuple[str, str], list[float]]" = {}
    for record in records:
        for kind in ("ratios", "deltas"):
            for path, value in (record.get(kind) or {}).items():
                try:
                    series.setdefault((kind, path), []).append(float(value))
                except (TypeError, ValueError):
                    continue
    return series


def monotone_drift(
    values: "list[float]", window: int, threshold: float, bad_is_down: bool
) -> "dict | None":
    """Flag a strictly monotone bad-direction run over the trailing window.

    Returns a description dict when the last ``window`` values moved
    strictly in the bad direction and the cumulative move exceeds
    ``threshold`` (as a fraction of the window's first value), else None.
    """
    if len(values) < window:
        return None
    tail = values[-window:]
    pairs = list(zip(tail, tail[1:]))
    if bad_is_down:
        monotone = all(later < earlier for earlier, later in pairs)
    else:
        monotone = all(later > earlier for earlier, later in pairs)
    if not monotone:
        return None
    start, end = tail[0], tail[-1]
    reference = abs(start) if start else 1.0
    movement = abs(end - start) / reference
    if movement < threshold:
        return None
    return {
        "window": window,
        "start": start,
        "end": end,
        "movement_fraction": movement,
        "direction": "down" if bad_is_down else "up",
    }


def analyze(
    records: "list[dict]", window: int, threshold: float
) -> "list[tuple[str, str, dict]]":
    """Every flagged (kind, path, drift-description) triple."""
    flagged = []
    for (kind, path), values in sorted(build_series(records).items()):
        # Speedups and floors degrade downward; equivalence deltas upward.
        drift = monotone_drift(
            values, window, threshold, bad_is_down=(kind == "ratios")
        )
        if drift is not None:
            flagged.append((kind, path, drift))
    return flagged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Concatenate ratios.jsonl history artifacts and flag monotone "
            "drifts inside the regression band."
        )
    )
    parser.add_argument(
        "history",
        nargs="+",
        help="one or more ratios.jsonl files (concatenated in order)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"trailing runs that must be strictly monotone (default {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=(
            "minimum cumulative movement across the window, as a fraction "
            f"of its starting value (default {DEFAULT_THRESHOLD})"
        ),
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when drifts are flagged (default: always exit 0, non-gating)",
    )
    args = parser.parse_args(argv)
    if args.window < 2:
        parser.error("--window must be at least 2")

    records = load_records(args.history)
    if not records:
        print("no history records found; nothing to analyze")
        return 0
    series = build_series(records)
    flagged = analyze(records, args.window, args.threshold)

    print(
        f"analyzed {len(records)} runs, {len(series)} metric series "
        f"(window {args.window}, threshold {args.threshold:.0%})"
    )
    for (kind, path), values in sorted(series.items()):
        tail = ", ".join(f"{v:.3g}" for v in values[-args.window:])
        print(f"  {kind[:-1]:>5} {path}: [{tail}]")
    if not flagged:
        print("no monotone drifts detected")
        return 0
    print(f"\nDRIFT: {len(flagged)} series moving monotonically the wrong way:")
    for kind, path, drift in flagged:
        print(
            f"  {path} ({kind[:-1]}): {drift['start']:.3g} -> {drift['end']:.3g} "
            f"({drift['direction']} {drift['movement_fraction']:.1%} over the "
            f"last {drift['window']} runs, still inside the regression band)"
        )
    print(
        "these are inside the 1.3x gate band; investigate before they "
        "accumulate into a gate failure",
        file=sys.stderr,
    )
    return 1 if args.gate else 0


if __name__ == "__main__":
    raise SystemExit(main())
