"""FIG-6 -- The decreasing growth-rate function r(t).

Regenerates Figure 6: the paper's published growth rate for story s1 with
friendship-hop distance, r(t) = 1.4 exp(-1.5 (t-1)) + 0.25 (Equation 7),
alongside the growth rate recovered by calibrating the DL model on the
synthetic corpus's observations.  The reproduction criterion is shape: both
curves must start high (≈1.2-2.0 at t = 1), decay over the first few hours
and level off at a small positive floor.
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import run_fig6_growth_rate
from repro.analysis.reports import render_growth_rate_comparison
from repro.io.tables import write_csv


def test_fig6_growth_rate(benchmark, bench_context, results_dir):
    result = run_once(benchmark, run_fig6_growth_rate, bench_context)

    print()
    print(render_growth_rate_comparison(result))

    times = np.asarray(result["times"])
    paper = np.asarray(result["paper_rate"])
    calibrated = np.asarray(result["calibrated_rate"])
    rows = [
        {"t": float(t), "paper_r": float(p), "calibrated_r": float(c)}
        for t, p, c in zip(times, paper, calibrated)
    ]
    write_csv(rows, results_dir / "fig6_growth_rate.csv")

    # Paper curve sanity (Equation 7).
    assert paper[0] == 1.65
    assert paper[-1] < 0.3

    # Calibrated curve shape: decreasing, starts well above its floor, and
    # stays in the same order of magnitude as the paper's curve.
    assert np.all(np.diff(calibrated) <= 1e-9)
    assert calibrated[0] > calibrated[-1]
    assert 0.3 < calibrated[0] < 5.0
    assert calibrated[-1] < 1.0
