"""ABL-2 -- Solver and resolution ablation for the DL equation.

DESIGN.md calls out two numerical design choices worth quantifying:

* the time integrator (Crank-Nicolson IMEX vs explicit RK4 vs scipy LSODA),
* the spatial resolution (grid points per unit of distance).

This benchmark solves the paper's Figure-7a problem (phi from the hour-1
snapshot of story s1, paper parameters) with each configuration, times the
solve with pytest-benchmark, and checks that all configurations agree on the
hour-6 profile -- i.e. the headline results do not depend on the numerical
scheme.
"""

import numpy as np
import pytest

from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.numerics.integrators import make_integrator

HOURS = [float(t) for t in range(1, 7)]


@pytest.fixture(scope="module")
def phi(bench_context):
    surface = bench_context.dataset.hop_density_surface("s1")
    return InitialDensity.from_surface(surface)


@pytest.fixture(scope="module")
def reference_profile(phi):
    """High-resolution Crank-Nicolson reference solution at hour 6."""
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=60, max_step=0.005
    )
    return model.solve(phi, HOURS).profile(6.0)


@pytest.mark.parametrize("integrator_name", ["crank_nicolson", "rk4", "explicit_euler"])
def test_solver_ablation_integrators(benchmark, phi, reference_profile, integrator_name):
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS,
        points_per_unit=20,
        max_step=0.02,
        integrator=make_integrator(integrator_name),
    )
    solution = benchmark(model.solve, phi, HOURS)
    profile = solution.profile(6.0)
    assert np.allclose(profile, reference_profile, rtol=1e-2, atol=1e-2), (
        f"{integrator_name} diverges from the reference solution"
    )


def test_solver_ablation_scipy_backend(benchmark, phi, reference_profile):
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=20, max_step=0.1, backend="scipy"
    )
    solution = benchmark(model.solve, phi, HOURS)
    assert np.allclose(solution.profile(6.0), reference_profile, rtol=1e-2, atol=1e-2)


@pytest.mark.parametrize("points_per_unit", [5, 10, 20, 40])
def test_solver_ablation_grid_resolution(benchmark, phi, reference_profile, points_per_unit):
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=points_per_unit, max_step=0.02
    )
    solution = benchmark(model.solve, phi, HOURS)
    profile = solution.profile(6.0)
    # Even the coarsest grid should be within a few percent of the reference;
    # finer grids must converge towards it.
    tolerance = 0.05 if points_per_unit <= 5 else 0.02
    assert np.allclose(profile, reference_profile, rtol=tolerance, atol=tolerance)
